//! The adaptive RAMSIS runtime: drift-driven policy hot-swap plus
//! deadline-aware load shedding.
//!
//! Plain [`crate::scheme::RamsisScheme`] trusts the traffic assumptions
//! its policy set was solved under — a Poisson process at a design load.
//! When the real arrival process drifts (the rate ramps past the design
//! load, or dispersion rises past Poisson), those policies become stale
//! and the violation rate climbs with no bound. [`AdaptiveRamsis`]
//! closes the loop online:
//!
//! 1. A [`DriftDetector`] re-fits the recent arrival window and emits a
//!    debounced [`ramsis_workload::RegimeChange`] when the traffic moves
//!    to a different (rate bin, dispersion class) regime.
//! 2. On a regime change the scheme hot-swaps to the
//!    [`PolicyLibrary`]'s pre-solved set for the new regime; a missing
//!    in-grid regime is solved lazily under a bounded budget, and
//!    anything else (out-of-grid loads, budget exhausted) degrades to
//!    the [`FallbackPolicy`] — fastest Pareto model, largest
//!    SLO-fitting batch.
//! 3. A [`ShedPolicy`] optionally sheds queries whose deadline is
//!    already unreachable even on the fastest model at batch 1, so a
//!    burst's backlog cannot poison the deadlines of everything behind
//!    it.
//!
//! With matched traffic (no regime change, `ShedPolicy::Never`) the
//! scheme's decisions are *identical* to a [`crate::RamsisScheme`]
//! carrying the active regime's set — adaptivity costs nothing until
//! drift actually happens.

use ramsis_core::{Decision, FallbackPolicy, PolicyConfig, PolicyLibrary, ShedPolicy};
use ramsis_profiles::WorkerProfile;
use ramsis_telemetry::{Event, ShedCause};
use ramsis_workload::DriftDetector;

use crate::metrics::{AdaptiveStats, RegimeSwapEvent};
use crate::query::nanos_from_secs;
use crate::scheme::{Routing, Selection, SelectionContext, ServingScheme};
use crate::SimError;

/// RAMSIS with online drift adaptation (see module docs).
pub struct AdaptiveRamsis {
    profile: WorkerProfile,
    config: PolicyConfig,
    library: PolicyLibrary,
    fallback: FallbackPolicy,
    detector: DriftDetector,
    shed: ShedPolicy,
    /// Batch-1 latency of the fastest Pareto model: below this much
    /// slack a query cannot meet its SLO under any decision.
    hopeless_threshold_s: f64,
    lazy_solve_budget: u64,
    active_label: String,
    swaps: u64,
    shed_hopeless: u64,
    shed_queue_depth: u64,
    lazy_solves: u64,
    fallback_decisions: u64,
    detection_delays: Vec<f64>,
    events: Vec<RegimeSwapEvent>,
    audit: bool,
    audit_buf: Vec<Event>,
    last_shed: ShedCause,
}

impl AdaptiveRamsis {
    /// Default cap on online policy solves (each one is a full value
    /// iteration — cheap in simulated time, expensive in wall time).
    pub const DEFAULT_LAZY_SOLVE_BUDGET: u64 = 2;

    /// Creates the scheme. `library` holds the pre-solved regimes;
    /// `config` re-solves missing in-grid regimes lazily; `detector`
    /// must run over the same grid and start in a regime the library
    /// has solved (otherwise the very first decision would already be a
    /// fallback, which is drift *handling* without any drift).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the detector's grid
    /// differs from the library's or the initial regime is unsolved,
    /// and propagates fallback construction failures.
    pub fn new(
        profile: &WorkerProfile,
        config: PolicyConfig,
        library: PolicyLibrary,
        detector: DriftDetector,
    ) -> Result<Self, SimError> {
        if detector.grid() != library.grid() {
            return Err(SimError::InvalidConfig(
                "drift detector and policy library must share one regime grid".to_string(),
            ));
        }
        if !library.contains(detector.active()) {
            return Err(SimError::InvalidConfig(format!(
                "initial regime {} has no solved policy set",
                library.grid().label(detector.active())
            )));
        }
        let fallback = FallbackPolicy::fastest(profile)?;
        let hopeless_threshold_s = profile
            .latency(profile.fastest_model(), 1)
            .expect("fastest model profiles batch 1");
        let active_label = library.grid().label(detector.active());
        Ok(Self {
            profile: profile.clone(),
            config,
            library,
            fallback,
            detector,
            shed: ShedPolicy::Never,
            hopeless_threshold_s,
            lazy_solve_budget: Self::DEFAULT_LAZY_SOLVE_BUDGET,
            active_label,
            swaps: 0,
            shed_hopeless: 0,
            shed_queue_depth: 0,
            lazy_solves: 0,
            fallback_decisions: 0,
            detection_delays: Vec::new(),
            events: Vec::new(),
            audit: false,
            audit_buf: Vec::new(),
            last_shed: ShedCause::Policy,
        })
    }

    /// Sets the shed policy (default [`ShedPolicy::Never`]).
    pub fn with_shed_policy(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Caps online policy solves (default
    /// [`Self::DEFAULT_LAZY_SOLVE_BUDGET`]); regimes past the budget
    /// are served by the fallback.
    pub fn with_lazy_solve_budget(mut self, budget: u64) -> Self {
        self.lazy_solve_budget = budget;
        self
    }

    /// Committed policy hot-swaps so far.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The policy library (grows when regimes are solved lazily).
    pub fn library(&self) -> &PolicyLibrary {
        &self.library
    }

    /// The drift detector.
    pub fn detector(&self) -> &DriftDetector {
        &self.detector
    }

    /// Below this much slack a query's SLO is unreachable.
    pub fn hopeless_threshold_s(&self) -> f64 {
        self.hopeless_threshold_s
    }
}

impl ServingScheme for AdaptiveRamsis {
    fn name(&self) -> &str {
        "RAMSIS-adaptive"
    }

    fn routing(&self) -> Routing {
        Routing::PerWorkerRoundRobin
    }

    fn on_arrival(&mut self, now_s: f64) {
        self.detector.record_arrival(now_s);
        let Some(change) = self.detector.observe(now_s) else {
            return;
        };
        self.swaps += 1;
        self.detection_delays.push(change.detection_delay_s);
        let (from_label, to_label, in_grid) = {
            let grid = self.library.grid();
            (
                grid.label(change.from),
                grid.label(change.to),
                change.to.rate_bin < grid.n_bins(),
            )
        };
        self.events.push(RegimeSwapEvent {
            at_s: change.at_s,
            from: from_label.clone(),
            to: to_label.clone(),
            fitted_rate_qps: change.fitted_rate_qps,
            fitted_dispersion: change.fitted_dispersion,
            detection_delay_s: change.detection_delay_s,
        });
        if self.audit {
            self.audit_buf.push(Event::RegimeSwap {
                at: nanos_from_secs(change.at_s),
                from: from_label,
                to: to_label.clone(),
                detection_delay_ns: nanos_from_secs(change.detection_delay_s),
            });
        }
        // A missing in-grid regime is worth a bounded online solve; the
        // fallback serves it in the meantime and permanently if the
        // solve fails or the budget is spent.
        if in_grid
            && !self.library.contains(change.to)
            && self.lazy_solves < self.lazy_solve_budget
            && self
                .library
                .solve(&self.profile, &self.config, change.to)
                .is_ok()
        {
            self.lazy_solves += 1;
            if self.audit {
                self.audit_buf.push(Event::LazySolve {
                    at: nanos_from_secs(change.at_s),
                    regime: to_label.clone(),
                });
            }
        }
        self.active_label = to_label;
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        if self.shed != ShedPolicy::Never {
            // The earliest deadline is unreachable even on the fastest
            // model at batch 1: serving it only delays everyone behind
            // it. Shed one; the engine re-asks for the remainder.
            if ctx.earliest_slack_s < self.hopeless_threshold_s {
                self.shed_hopeless += 1;
                self.last_shed = ShedCause::Hopeless;
                return Selection::Drop { count: 1 };
            }
            if let ShedPolicy::QueueDepth(cap) = self.shed {
                if ctx.queued > cap as usize {
                    let count = (ctx.queued - cap as usize) as u32;
                    self.shed_queue_depth += u64::from(count);
                    self.last_shed = ShedCause::QueueDepth;
                    return Selection::Drop { count };
                }
            }
        }
        let Some(set) = self.library.get(self.detector.active()) else {
            self.fallback_decisions += 1;
            if self.audit {
                self.audit_buf.push(Event::FallbackEngaged {
                    at: nanos_from_secs(ctx.now_s),
                    worker: ctx.worker as u32,
                });
            }
            let (model, batch) = self.fallback.decide(ctx.queued);
            return Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            };
        };
        let policy = set.select(ctx.load_qps);
        match policy.decide(ctx.queued, ctx.earliest_slack_s) {
            Decision::Wait => Selection::Idle,
            Decision::Drop { count } => {
                self.last_shed = ShedCause::Policy;
                Selection::Drop {
                    count: count.min(ctx.queued as u32).max(1),
                }
            }
            Decision::Serve { model, batch } => Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            },
        }
    }

    fn set_audit(&mut self, enabled: bool) {
        self.audit = enabled;
    }

    fn drain_audit(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.audit_buf);
    }

    fn shed_cause(&self) -> ShedCause {
        self.last_shed
    }

    fn regime(&self) -> Option<&str> {
        Some(&self.active_label)
    }

    fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        let (mean, max) = if self.detection_delays.is_empty() {
            (0.0, 0.0)
        } else {
            let sum: f64 = self.detection_delays.iter().sum();
            let max = self.detection_delays.iter().cloned().fold(0.0, f64::max);
            (sum / self.detection_delays.len() as f64, max)
        };
        Some(AdaptiveStats {
            swaps: self.swaps,
            refits: self.detector.refits(),
            shed_hopeless: self.shed_hopeless,
            shed_queue_depth: self.shed_queue_depth,
            lazy_solves: self.lazy_solves,
            fallback_decisions: self.fallback_decisions,
            mean_detection_delay_s: mean,
            max_detection_delay_s: max,
            regime_events: self.events.clone(),
            per_regime: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_core::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_workload::{DispersionClass, DriftDetectorConfig, RegimeGrid, RegimeKey};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn config() -> PolicyConfig {
        PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(8))
            .build()
    }

    fn detector(grid: RegimeGrid) -> DriftDetector {
        DriftDetector::new(
            grid,
            DriftDetectorConfig::default(),
            RegimeKey::new(0, DispersionClass::Poisson),
        )
    }

    fn scheme() -> AdaptiveRamsis {
        let grid = RegimeGrid::new(vec![120.0]);
        let library =
            PolicyLibrary::generate_poisson_bins(profile(), grid.clone(), 4.0, &config()).unwrap();
        AdaptiveRamsis::new(profile(), config(), library, detector(grid)).unwrap()
    }

    #[test]
    fn starts_in_the_initial_regime_without_fallback() {
        let mut s = scheme();
        assert_eq!(s.name(), "RAMSIS-adaptive");
        assert_eq!(s.regime(), Some("le120qps-poisson"));
        let ctx = SelectionContext {
            now_s: 1.0,
            load_qps: 90.0,
            queued: 2,
            earliest_slack_s: 0.14,
            worker: 0,
            live_workers: 4,
        };
        assert!(matches!(s.select(&ctx), Selection::Serve { .. }));
        let stats = s.adaptive_stats().unwrap();
        assert_eq!(stats.swaps, 0);
        assert_eq!(stats.fallback_decisions, 0);
    }

    #[test]
    fn mismatched_grid_or_unsolved_initial_regime_rejected() {
        let grid = RegimeGrid::new(vec![120.0]);
        let library =
            PolicyLibrary::generate_poisson_bins(profile(), grid.clone(), 4.0, &config()).unwrap();
        let other = detector(RegimeGrid::new(vec![200.0]));
        assert!(AdaptiveRamsis::new(profile(), config(), library.clone(), other).is_err());
        let unsolved = DriftDetector::new(
            grid.clone(),
            DriftDetectorConfig::default(),
            RegimeKey::new(0, DispersionClass::Bursty),
        );
        assert!(AdaptiveRamsis::new(profile(), config(), library, unsolved).is_err());
    }

    #[test]
    fn out_of_grid_drift_degrades_to_fallback() {
        let mut s = scheme().with_lazy_solve_budget(0);
        // Feed a steady 500 QPS — far beyond the grid's single
        // 120 QPS bin — until the detector confirms the new regime.
        let mut t = 0.0;
        while s.swaps() == 0 && t < 60.0 {
            s.on_arrival(t);
            t += 1.0 / 500.0;
        }
        assert_eq!(s.swaps(), 1, "drift never confirmed");
        assert_eq!(s.regime(), Some("gt120qps-poisson"));
        let ctx = SelectionContext {
            now_s: t,
            load_qps: 500.0,
            queued: 4,
            earliest_slack_s: 0.14,
            worker: 0,
            live_workers: 4,
        };
        let Selection::Serve { model, batch } = s.select(&ctx) else {
            panic!("fallback must serve");
        };
        assert_eq!(model, profile().fastest_model());
        assert!((1..=4).contains(&batch));
        let stats = s.adaptive_stats().unwrap();
        assert_eq!(stats.fallback_decisions, 1);
        assert_eq!(stats.lazy_solves, 0);
        assert_eq!(stats.regime_events.len(), 1);
        assert!(stats.regime_events[0].detection_delay_s > 0.0);
        assert!(stats.mean_detection_delay_s > 0.0);
    }

    #[test]
    fn shedding_respects_policy() {
        let hopeless = SelectionContext {
            now_s: 1.0,
            load_qps: 90.0,
            queued: 10,
            earliest_slack_s: 0.001,
            worker: 0,
            live_workers: 4,
        };
        let deep = SelectionContext {
            earliest_slack_s: 0.14,
            ..hopeless
        };

        // Never: serves even a hopeless head-of-line query.
        let mut never = scheme();
        assert!(matches!(never.select(&hopeless), Selection::Serve { .. }));

        // Hopeless: sheds the unreachable query, one at a time.
        let mut shed = scheme().with_shed_policy(ShedPolicy::Hopeless);
        assert!(hopeless.earliest_slack_s < shed.hopeless_threshold_s());
        assert_eq!(shed.select(&hopeless), Selection::Drop { count: 1 });
        assert!(matches!(shed.select(&deep), Selection::Serve { .. }));
        assert_eq!(shed.adaptive_stats().unwrap().shed_hopeless, 1);

        // QueueDepth: additionally trims the queue to the cap.
        let mut capped = scheme().with_shed_policy(ShedPolicy::QueueDepth(3));
        assert_eq!(capped.select(&deep), Selection::Drop { count: 7 });
        let stats = capped.adaptive_stats().unwrap();
        assert_eq!(stats.shed_queue_depth, 7);
        assert_eq!(stats.shed_hopeless, 0);
    }
}
