//! Discrete-event simulator for the assumed ISS architecture (paper
//! Fig. 1 and §6).
//!
//! The simulator stands in for the paper's GCP + TorchServe testbed (see
//! DESIGN.md §2). It models the architecture's five components: a
//! central queue, trained models (via [`ramsis_profiles::WorkerProfile`]),
//! workers, and a model selector & scheduler plugged in through the
//! [`scheme::ServingScheme`] trait. Two dispatch structures cover every
//! evaluated system:
//!
//! - **Per-worker routing** (RAMSIS, §3.2): arrivals are routed to
//!   worker queues immediately (round-robin or shortest-queue-first);
//!   each worker's model selector serves its own queue in deadline
//!   order.
//! - **Central-queue pulling** (Jellyfish+, ModelSwitching, §7):
//!   "workers eagerly grab and service queries from the central queue in
//!   batches up to a maximum batch size".
//!
//! Inference latency is either *deterministic* at the profiled 95th
//! percentile — exactly the paper's simulation framework (§7.3.1: "the
//! simulation assumes inference latency is deterministically the 95th
//! percentile of the model profile") — or *stochastic*, redrawing each
//! invocation from the latency model like the prototype implementation.
//!
//! Time is integer nanoseconds; every run is reproducible from its
//! seeds. No queries are ever dropped (§7: evaluated systems "do not
//! drop queries when facing latency SLO violations").

pub mod adaptive;
pub mod autoscale;
pub mod chaos;
pub mod checkpoint;
pub mod counterfactual;
pub mod engine;
pub mod faults;
pub mod health;
pub mod latency;
pub mod metrics;
pub mod multi_slo;
pub mod query;
pub mod resilience;
pub mod scheme;

/// Simulator-level error type (shared with the core crate so callers
/// handle one error family across the stack).
pub use ramsis_core::CoreError as SimError;

/// Profiling support (DESIGN.md §10): callers pass a [`Profiler`] to the
/// `*_profiled` engine entry points and snapshot a [`ProfileReport`]
/// afterwards. Re-exported so downstream crates need not depend on
/// `ramsis-telemetry` directly just to profile a run.
pub use ramsis_telemetry::{ProfileReport, Profiler};

pub use adaptive::AdaptiveRamsis;
pub use autoscale::{
    AutoscalePolicy, AutoscaleStats, Autoscaler, BrownoutPolicy, HysteresisController, ScaleSignal,
    WorkerState,
};
pub use chaos::{ChaosConfig, ChaosFailure, ChaosReport, ChaosRunSummary, FastestFixed};
pub use checkpoint::{
    CheckpointPolicy, CheckpointRecorder, EngineSnapshot, FileRecorder, MemoryRecorder,
};
pub use counterfactual::{regret_study, RegretBucket, RegretEntry, RegretStudy, RegretStudyConfig};
pub use engine::{ForcedDecision, Simulation, SimulationConfig};
pub use faults::{CrashPolicy, FaultEvent, FaultPlan};
pub use health::{BreakerState, HealthMonitor, HealthPolicy, HealthState, WorkerHealth};
pub use latency::LatencyMode;
pub use metrics::{
    AdaptiveStats, DivergenceStats, FaultStats, HealthStats, RegimeBreakdown, RegimeSwapEvent,
    ResilienceStats, SimulationReport, TimelineBucket,
};
pub use multi_slo::{run_multi_slo, SloClass};
pub use query::Query;
pub use resilience::{
    AdmissionPolicy, HedgePolicy, ResiliencePolicy, RetryBudget, RetryPolicy, TimeoutPolicy,
};
pub use scheme::{
    DegradingRamsis, OnDemandRamsis, PerWorkerRamsis, RamsisScheme, Routing, Selection,
    ServingScheme,
};
