//! Elastic capacity: a fault-aware autoscaler with a worker lifecycle
//! and an overload brownout ladder.
//!
//! The paper evaluates fixed worker pools; this module makes membership
//! dynamic while keeping the simulator's core contract — bit-identical
//! seeded runs — intact:
//!
//! - A [`HysteresisController`] (the default [`Autoscaler`]) watches the
//!   load estimate the engine already maintains and computes a desired
//!   pool size from a per-worker capacity target, *anticipating* the
//!   warm-up lag by extrapolating the load trend over the configured
//!   warm-up latency. Direction changes are debounced by consecutive-
//!   tick confirmation and a cooldown, so estimation noise cannot flap
//!   the pool.
//! - Workers move through a lifecycle state machine
//!   (`Down → Warming → Live → Draining → Down`, [`WorkerState`]).
//!   Scale-up pays a configurable warm-up latency before the worker
//!   serves; scale-in *drains*: the worker's queued work is handed off
//!   to survivors immediately and its in-flight batch runs to
//!   completion — no query is ever abandoned by a scaling action.
//! - A [`BrownoutLadder`] sits above the shed path: under sustained
//!   overload (load persistently above the live pool's capacity) the
//!   engine remaps `Serve` selections rung by rung toward the fastest
//!   model — the paper's own action space used as graceful degradation —
//!   and only the existing shed mechanisms fire once the cheapest rung
//!   still cannot keep up. Enter and exit use a Schmitt trigger with
//!   separate thresholds plus consecutive-tick confirmation, so the
//!   ladder is deterministic and cannot oscillate within a tick.
//!
//! Everything here is pure arithmetic over the engine's deterministic
//! signals (simulated time, the seeded load estimate, integer pool
//! counts) — no RNG, no wall clock — so seeded runs stay byte-identical,
//! and with [`AutoscalePolicy::enabled`] false the engine schedules no
//! controller events at all and takes exactly its pre-autoscale paths.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Lifecycle state of one worker slot under autoscaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerState {
    /// Not part of the pool (never started, scaled in, or crashed).
    Down,
    /// Scale-up issued; serving begins after the warm-up latency.
    Warming,
    /// Serving: routable and dispatchable.
    Live,
    /// Scale-in issued: queued work handed off, the in-flight batch
    /// finishes, then the worker goes [`WorkerState::Down`].
    Draining,
}

impl WorkerState {
    /// Short lowercase label for logs and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Down => "down",
            Self::Warming => "warming",
            Self::Live => "live",
            Self::Draining => "draining",
        }
    }
}

/// Overload brownout-ladder configuration (a sub-policy of
/// [`AutoscalePolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutPolicy {
    /// Master switch; `false` never degrades model selection.
    pub enabled: bool,
    /// Load-to-capacity ratio at or above which a sustained overload
    /// escalates the ladder one rung.
    pub enter_ratio: f64,
    /// Load-to-capacity ratio at or below which a sustained recovery
    /// de-escalates one rung. Must be `< enter_ratio` (Schmitt trigger).
    pub exit_ratio: f64,
    /// Consecutive controller ticks the ratio must hold beyond a
    /// threshold before the ladder moves (debounce).
    pub confirm: u32,
    /// Upper bound on the rung; `0` means "as many rungs as the profile
    /// has slower-than-fastest models" (the engine clamps).
    pub max_rung: u32,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            enter_ratio: 1.25,
            exit_ratio: 0.85,
            confirm: 4,
            max_rung: 0,
        }
    }
}

/// Autoscaler configuration, hanging off
/// [`crate::SimulationConfig::autoscale`]. The default disables the
/// whole subsystem and reproduces the fixed-pool engine bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePolicy {
    /// Master switch; `false` (default) schedules no controller ticks
    /// and leaves membership entirely to fault injection.
    pub enabled: bool,
    /// Floor on the pool: scale-in never drains below this many Live
    /// workers (crashes can still go lower; the controller then scales
    /// back up — that is the fault-aware part).
    pub min_workers: usize,
    /// Ceiling on the pool: the worker vectors are sized to this.
    pub max_workers: usize,
    /// Capacity target: the sustained QPS one Live worker is expected
    /// to absorb. Desired pool size is `ceil(anticipated / target)`.
    pub target_qps_per_worker: f64,
    /// Warm-up latency: seconds between a scale-up decision and the
    /// worker going Live. Zero means instant capacity.
    pub warmup_s: f64,
    /// Controller tick period, seconds.
    pub eval_interval_s: f64,
    /// Consecutive ticks the desired size must exceed the current one
    /// before a scale-up commits.
    pub up_confirm: u32,
    /// Consecutive ticks the desired size must fall below the current
    /// one before a scale-in commits (keep larger than `up_confirm`:
    /// adding capacity late costs SLOs, removing it late costs money).
    pub down_confirm: u32,
    /// Minimum seconds between two committed scaling actions.
    pub cooldown_s: f64,
    /// Most workers one committed action may add or drain.
    pub max_step: usize,
    /// The overload brownout ladder.
    pub brownout: BrownoutPolicy,
}

impl Default for AutoscalePolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            min_workers: 1,
            max_workers: 8,
            target_qps_per_worker: 100.0,
            warmup_s: 1.0,
            eval_interval_s: 0.25,
            up_confirm: 2,
            down_confirm: 8,
            cooldown_s: 1.0,
            max_step: 4,
            brownout: BrownoutPolicy::default(),
        }
    }
}

impl AutoscalePolicy {
    /// An enabled policy with the default knobs over the given pool
    /// bounds — the one-liner used by benches, the CLI, and chaos.
    pub fn elastic(min_workers: usize, max_workers: usize, target_qps_per_worker: f64) -> Self {
        Self {
            enabled: true,
            min_workers,
            max_workers,
            target_qps_per_worker,
            ..Self::default()
        }
    }

    /// Checks the knobs of an *enabled* policy: pool bounds
    /// (`1 ≤ min ≤ max`), a positive capacity target and tick period, a
    /// non-negative finite warm-up and cooldown, non-zero confirmation
    /// counts and step, and a well-ordered brownout Schmitt trigger.
    /// A disabled policy is always valid (its knobs are never read).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.enabled {
            return Ok(());
        }
        let bad = |msg: String| Err(SimError::InvalidConfig(msg));
        if self.min_workers < 1 {
            return bad("autoscale: min_workers must be at least 1".to_string());
        }
        if self.min_workers > self.max_workers {
            return bad(format!(
                "autoscale: min_workers {} exceeds max_workers {}",
                self.min_workers, self.max_workers
            ));
        }
        let pos = |what: &str, v: f64| -> Result<(), SimError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "autoscale: {what} must be positive and finite, got {v}"
                )));
            }
            Ok(())
        };
        pos("target_qps_per_worker", self.target_qps_per_worker)?;
        pos("eval_interval_s", self.eval_interval_s)?;
        if !self.warmup_s.is_finite() || self.warmup_s < 0.0 {
            return bad(format!(
                "autoscale: warmup_s must be non-negative and finite, got {}",
                self.warmup_s
            ));
        }
        if !self.cooldown_s.is_finite() || self.cooldown_s < 0.0 {
            return bad(format!(
                "autoscale: cooldown_s must be non-negative and finite, got {}",
                self.cooldown_s
            ));
        }
        if self.up_confirm == 0 || self.down_confirm == 0 {
            return bad("autoscale: confirmation counts must be at least 1".to_string());
        }
        if self.max_step == 0 {
            return bad("autoscale: max_step must be at least 1".to_string());
        }
        if self.brownout.enabled {
            pos("brownout enter_ratio", self.brownout.enter_ratio)?;
            pos("brownout exit_ratio", self.brownout.exit_ratio)?;
            if self.brownout.exit_ratio >= self.brownout.enter_ratio {
                return bad(format!(
                    "autoscale: brownout needs exit_ratio < enter_ratio, got {} >= {}",
                    self.brownout.exit_ratio, self.brownout.enter_ratio
                ));
            }
            if self.brownout.confirm == 0 {
                return bad("autoscale: brownout confirm must be at least 1".to_string());
            }
        }
        Ok(())
    }
}

/// The deterministic signals one controller tick sees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSignal {
    /// Simulated time of the tick, seconds.
    pub now_s: f64,
    /// The load estimate (QPS) the engine's estimator reports.
    pub load_qps: f64,
    /// Load trend (QPS per second), `0.0` when the estimator has none —
    /// used to anticipate the warm-up lag.
    pub trend_qps_per_s: f64,
    /// Workers currently Live.
    pub live: usize,
    /// Workers currently Warming (capacity already on the way).
    pub warming: usize,
    /// Workers currently Draining.
    pub draining: usize,
    /// Total queries queued across all visible queues.
    pub queued: usize,
}

/// A pool-sizing controller: maps a tick's [`ScaleSignal`] to a desired
/// worker count. Implementations must be deterministic — a pure
/// function of the signal sequence — or seeded runs lose reproducibility.
pub trait Autoscaler {
    /// The desired pool size after this tick, always within the
    /// policy's `[min_workers, max_workers]`.
    fn desired_workers(&mut self, sig: &ScaleSignal) -> usize;

    /// Human-readable controller name.
    fn name(&self) -> &'static str {
        "autoscaler"
    }
}

/// The default [`Autoscaler`]: proportional sizing from the capacity
/// target with trend anticipation, debounced by consecutive-tick
/// confirmation in each direction and a cooldown between actions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HysteresisController {
    policy: AutoscalePolicy,
    /// +1 while a scale-up is pending confirmation, -1 for scale-in,
    /// 0 when the desired size matches the current one.
    pending_dir: i8,
    pending_ticks: u32,
    /// Time of the last committed action; `None` before the first.
    last_action_s: Option<f64>,
}

impl HysteresisController {
    /// Creates the controller. The policy should already be validated.
    pub fn new(policy: AutoscalePolicy) -> Self {
        Self {
            policy,
            pending_dir: 0,
            pending_ticks: 0,
            last_action_s: None,
        }
    }

    /// The policy driving this controller.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// The raw (unconfirmed) target for a signal: load anticipated over
    /// the warm-up horizon divided by the per-worker capacity target,
    /// clamped to the pool bounds.
    pub fn raw_target(&self, sig: &ScaleSignal) -> usize {
        let anticipated = sig.load_qps + sig.trend_qps_per_s.max(0.0) * self.policy.warmup_s;
        let raw = (anticipated / self.policy.target_qps_per_worker).ceil();
        let raw = if raw.is_finite() && raw >= 0.0 {
            raw as usize
        } else {
            self.policy.max_workers
        };
        raw.clamp(self.policy.min_workers, self.policy.max_workers)
    }
}

impl Autoscaler for HysteresisController {
    fn desired_workers(&mut self, sig: &ScaleSignal) -> usize {
        let current = (sig.live + sig.warming).clamp(0, self.policy.max_workers);
        let target = self.raw_target(sig);
        let dir: i8 = match target.cmp(&current) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
        };
        if dir == 0 {
            self.pending_dir = 0;
            self.pending_ticks = 0;
            return current.clamp(self.policy.min_workers, self.policy.max_workers);
        }
        if dir == self.pending_dir {
            self.pending_ticks += 1;
        } else {
            self.pending_dir = dir;
            self.pending_ticks = 1;
        }
        let confirm = if dir > 0 {
            self.policy.up_confirm
        } else {
            self.policy.down_confirm
        };
        let cooled = self
            .last_action_s
            .is_none_or(|t| sig.now_s - t >= self.policy.cooldown_s);
        if self.pending_ticks < confirm || !cooled {
            return current.clamp(self.policy.min_workers, self.policy.max_workers);
        }
        let step = target.abs_diff(current).min(self.policy.max_step);
        let next = if dir > 0 {
            current + step
        } else {
            current.saturating_sub(step)
        };
        self.last_action_s = Some(sig.now_s);
        self.pending_dir = 0;
        self.pending_ticks = 0;
        next.clamp(self.policy.min_workers, self.policy.max_workers)
    }

    fn name(&self) -> &'static str {
        "hysteresis"
    }
}

/// A committed brownout transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutTransition {
    /// The ladder escalated to this rung.
    Enter {
        /// The rung now active (1-based; 0 is "no brownout").
        rung: u32,
    },
    /// The ladder de-escalated, leaving this rung.
    Exit {
        /// The rung that was just left.
        rung: u32,
    },
}

/// The overload brownout ladder: a Schmitt trigger over the
/// load-to-capacity ratio with per-direction confirmation. Rung `r > 0`
/// bans the `r` slowest (most accurate) models; the engine remaps any
/// banned `Serve` selection to the slowest still-allowed model, so
/// degradation sacrifices accuracy before any query is shed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrownoutLadder {
    policy: BrownoutPolicy,
    max_rung: u32,
    rung: u32,
    above_ticks: u32,
    below_ticks: u32,
}

impl BrownoutLadder {
    /// Creates the ladder; `profile_rungs` is the number of useful rungs
    /// the model set supports (`n_models - 1`). A `max_rung` of 0 in the
    /// policy means "all of them".
    pub fn new(policy: BrownoutPolicy, profile_rungs: u32) -> Self {
        let max_rung = if policy.max_rung == 0 {
            profile_rungs
        } else {
            policy.max_rung.min(profile_rungs)
        };
        Self {
            policy,
            max_rung,
            rung: 0,
            above_ticks: 0,
            below_ticks: 0,
        }
    }

    /// The active rung (0 = no degradation).
    pub fn rung(&self) -> u32 {
        self.rung
    }

    /// The highest rung this ladder can reach.
    pub fn max_rung(&self) -> u32 {
        self.max_rung
    }

    /// Feeds one controller tick: the current load estimate against the
    /// live pool's capacity. Returns a committed transition, if any
    /// (at most one rung per tick).
    pub fn observe(&mut self, load_qps: f64, capacity_qps: f64) -> Option<BrownoutTransition> {
        if !self.policy.enabled || self.max_rung == 0 {
            return None;
        }
        let ratio = if capacity_qps > 0.0 {
            load_qps / capacity_qps
        } else if load_qps > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        if ratio >= self.policy.enter_ratio {
            self.below_ticks = 0;
            if self.rung >= self.max_rung {
                self.above_ticks = 0;
                return None;
            }
            self.above_ticks += 1;
            if self.above_ticks >= self.policy.confirm {
                self.above_ticks = 0;
                self.rung += 1;
                return Some(BrownoutTransition::Enter { rung: self.rung });
            }
        } else if ratio <= self.policy.exit_ratio {
            self.above_ticks = 0;
            if self.rung == 0 {
                self.below_ticks = 0;
                return None;
            }
            self.below_ticks += 1;
            if self.below_ticks >= self.policy.confirm {
                self.below_ticks = 0;
                let left = self.rung;
                self.rung -= 1;
                return Some(BrownoutTransition::Exit { rung: left });
            }
        } else {
            // The dead band between exit and enter holds the rung.
            self.above_ticks = 0;
            self.below_ticks = 0;
        }
        None
    }
}

/// Autoscaler outcome statistics, reported as
/// [`crate::SimulationReport::autoscale`] when the subsystem is enabled.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AutoscaleStats {
    /// Controller ticks evaluated.
    pub ticks: u64,
    /// Workers sent Warming by scale-up actions.
    pub scale_ups: u64,
    /// Workers sent Draining by scale-in actions.
    pub scale_downs: u64,
    /// Warm-ups that reached Live (a crash can cancel one mid-warm-up).
    pub warmups_completed: u64,
    /// Drains that reached Down cleanly (in-flight batch finished).
    pub drains_completed: u64,
    /// Queued queries handed off to survivors at drain start.
    pub drain_handoffs: u64,
    /// Integral of Live workers over the horizon — the cost metric the
    /// elastic-frontier bench compares against fixed pools.
    pub worker_seconds: f64,
    /// `worker_seconds / horizon`.
    pub mean_live_workers: f64,
    /// Smallest Live count observed.
    pub min_live_workers: usize,
    /// Largest Live count observed.
    pub max_live_workers: usize,
    /// Brownout rung escalations committed.
    pub brownout_enters: u64,
    /// Brownout rung de-escalations committed.
    pub brownout_exits: u64,
    /// Simulated seconds spent at rung ≥ 1.
    pub brownout_time_s: f64,
    /// Highest rung reached.
    pub max_brownout_rung: u32,
    /// `Serve` selections remapped to a faster model by the ladder.
    pub degraded_selections: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(now_s: f64, load: f64, live: usize) -> ScaleSignal {
        ScaleSignal {
            now_s,
            load_qps: load,
            trend_qps_per_s: 0.0,
            live,
            warming: 0,
            draining: 0,
            queued: 0,
        }
    }

    #[test]
    fn default_policy_is_disabled_and_valid() {
        let p = AutoscalePolicy::default();
        assert!(!p.enabled);
        assert!(p.validate().is_ok());
        assert!(AutoscalePolicy::elastic(1, 4, 50.0).validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_bounds() {
        let mut p = AutoscalePolicy::elastic(0, 4, 50.0);
        assert!(p.validate().is_err(), "min_workers 0");
        p.min_workers = 5;
        assert!(p.validate().is_err(), "min > max");
        p = AutoscalePolicy::elastic(1, 4, 50.0);
        p.warmup_s = -0.5;
        assert!(p.validate().is_err(), "negative warm-up");
        p = AutoscalePolicy::elastic(1, 4, 50.0);
        p.target_qps_per_worker = 0.0;
        assert!(p.validate().is_err(), "zero capacity target");
        p = AutoscalePolicy::elastic(1, 4, 50.0);
        p.eval_interval_s = f64::NAN;
        assert!(p.validate().is_err(), "NaN tick period");
        p = AutoscalePolicy::elastic(1, 4, 50.0);
        p.up_confirm = 0;
        assert!(p.validate().is_err(), "zero confirm");
        p = AutoscalePolicy::elastic(1, 4, 50.0);
        p.max_step = 0;
        assert!(p.validate().is_err(), "zero step");
        p = AutoscalePolicy::elastic(1, 4, 50.0);
        p.brownout.exit_ratio = p.brownout.enter_ratio;
        assert!(p.validate().is_err(), "Schmitt trigger inverted");
        // Garbage behind the off switch never fails a run.
        p = AutoscalePolicy {
            enabled: false,
            min_workers: 0,
            warmup_s: f64::NAN,
            ..AutoscalePolicy::default()
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn controller_confirms_before_scaling_up() {
        let policy = AutoscalePolicy {
            up_confirm: 3,
            cooldown_s: 0.0,
            ..AutoscalePolicy::elastic(1, 8, 100.0)
        };
        let mut c = HysteresisController::new(policy);
        // 350 QPS over 100 QPS/worker wants 4 workers; two ticks are not
        // enough confirmation, the third commits.
        assert_eq!(c.desired_workers(&sig(0.0, 350.0, 2)), 2);
        assert_eq!(c.desired_workers(&sig(0.25, 350.0, 2)), 2);
        assert_eq!(c.desired_workers(&sig(0.5, 350.0, 2)), 4);
    }

    #[test]
    fn controller_respects_cooldown_and_step() {
        let policy = AutoscalePolicy {
            up_confirm: 1,
            cooldown_s: 10.0,
            max_step: 1,
            ..AutoscalePolicy::elastic(1, 8, 100.0)
        };
        let mut c = HysteresisController::new(policy);
        assert_eq!(c.desired_workers(&sig(0.0, 800.0, 1)), 2, "one step only");
        // Inside the cooldown nothing commits, however long the demand.
        assert_eq!(c.desired_workers(&sig(5.0, 800.0, 2)), 2);
        assert_eq!(c.desired_workers(&sig(9.9, 800.0, 2)), 2);
        assert_eq!(c.desired_workers(&sig(10.1, 800.0, 2)), 3);
    }

    #[test]
    fn controller_anticipates_with_the_trend() {
        let policy = AutoscalePolicy {
            warmup_s: 2.0,
            ..AutoscalePolicy::elastic(1, 8, 100.0)
        };
        let c = HysteresisController::new(policy);
        let mut s = sig(0.0, 100.0, 1);
        assert_eq!(c.raw_target(&s), 1);
        // Load climbing 100 QPS/s with a 2 s warm-up: plan for +200 QPS.
        s.trend_qps_per_s = 100.0;
        assert_eq!(c.raw_target(&s), 3);
        // A falling trend never shrinks the target below current load.
        s.trend_qps_per_s = -500.0;
        assert_eq!(c.raw_target(&s), 1);
    }

    #[test]
    fn controller_output_is_always_bounded() {
        let mut c = HysteresisController::new(AutoscalePolicy {
            up_confirm: 1,
            down_confirm: 1,
            cooldown_s: 0.0,
            max_step: 100,
            ..AutoscalePolicy::elastic(2, 5, 10.0)
        });
        assert_eq!(c.desired_workers(&sig(0.0, 1e9, 3)), 5, "clamped to max");
        assert_eq!(c.desired_workers(&sig(1.0, 0.0, 5)), 2, "clamped to min");
        assert_eq!(c.desired_workers(&sig(2.0, f64::NAN, 3)), 5, "NaN -> max");
    }

    #[test]
    fn direction_reversal_resets_confirmation() {
        let policy = AutoscalePolicy {
            up_confirm: 2,
            down_confirm: 2,
            cooldown_s: 0.0,
            ..AutoscalePolicy::elastic(1, 8, 100.0)
        };
        let mut c = HysteresisController::new(policy);
        assert_eq!(c.desired_workers(&sig(0.0, 400.0, 2)), 2);
        // Demand flips low before confirming: the up streak dies.
        assert_eq!(c.desired_workers(&sig(0.25, 100.0, 2)), 2);
        assert_eq!(c.desired_workers(&sig(0.5, 400.0, 2)), 2);
        assert_eq!(c.desired_workers(&sig(0.75, 400.0, 2)), 4);
    }

    #[test]
    fn ladder_escalates_and_deescalates_with_hysteresis() {
        let policy = BrownoutPolicy {
            enabled: true,
            enter_ratio: 1.2,
            exit_ratio: 0.8,
            confirm: 2,
            max_rung: 0,
        };
        let mut ladder = BrownoutLadder::new(policy, 3);
        assert_eq!(ladder.max_rung(), 3);
        assert_eq!(ladder.observe(130.0, 100.0), None, "first sighting");
        assert_eq!(
            ladder.observe(130.0, 100.0),
            Some(BrownoutTransition::Enter { rung: 1 })
        );
        // The dead band holds the rung and resets the streaks.
        assert_eq!(ladder.observe(100.0, 100.0), None);
        assert_eq!(ladder.observe(130.0, 100.0), None);
        assert_eq!(
            ladder.observe(130.0, 100.0),
            Some(BrownoutTransition::Enter { rung: 2 })
        );
        // Recovery: two sub-exit ticks per rung.
        assert_eq!(ladder.observe(50.0, 100.0), None);
        assert_eq!(
            ladder.observe(50.0, 100.0),
            Some(BrownoutTransition::Exit { rung: 2 })
        );
        assert_eq!(ladder.observe(50.0, 100.0), None);
        assert_eq!(
            ladder.observe(50.0, 100.0),
            Some(BrownoutTransition::Exit { rung: 1 })
        );
        assert_eq!(ladder.rung(), 0);
        assert_eq!(ladder.observe(50.0, 100.0), None, "floor at rung 0");
    }

    #[test]
    fn ladder_saturates_at_max_rung_and_handles_zero_capacity() {
        let policy = BrownoutPolicy {
            enabled: true,
            enter_ratio: 1.2,
            exit_ratio: 0.8,
            confirm: 1,
            max_rung: 2,
        };
        let mut ladder = BrownoutLadder::new(policy, 5);
        assert_eq!(ladder.max_rung(), 2);
        // Zero capacity with load reads as infinite overload.
        assert!(ladder.observe(10.0, 0.0).is_some());
        assert!(ladder.observe(10.0, 0.0).is_some());
        assert_eq!(ladder.rung(), 2);
        assert_eq!(ladder.observe(10.0, 0.0), None, "saturated");
        // Zero load, zero capacity is idle, not overload.
        let mut idle = BrownoutLadder::new(policy, 5);
        assert_eq!(idle.observe(0.0, 0.0), None);
        assert_eq!(idle.rung(), 0);
    }

    #[test]
    fn disabled_ladder_never_moves() {
        let mut ladder = BrownoutLadder::new(
            BrownoutPolicy {
                enabled: false,
                ..BrownoutPolicy::default()
            },
            4,
        );
        for _ in 0..100 {
            assert_eq!(ladder.observe(1e9, 1.0), None);
        }
        assert_eq!(ladder.rung(), 0);
    }

    #[test]
    fn controller_is_deterministic() {
        let policy = AutoscalePolicy::elastic(1, 8, 100.0);
        let run = || {
            let mut c = HysteresisController::new(policy);
            (0..200)
                .map(|i| {
                    let t = i as f64 * 0.25;
                    let load = 100.0 + 300.0 * (t / 10.0).sin().abs();
                    c.desired_workers(&sig(t, load, 2))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
