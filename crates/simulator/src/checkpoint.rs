//! Crash-consistent checkpoint/resume for the simulation engine
//! (DESIGN.md §12).
//!
//! A [`CheckpointPolicy`] on [`crate::SimulationConfig`] asks the engine
//! to capture its complete mid-run state — event heap, per-worker queues
//! and lifecycle, in-flight dispatches and hedge epochs, retry budgets,
//! RNG streams, metrics, autoscaler controller state, and the telemetry
//! sequence counter — at a configurable event-count or sim-time cadence.
//! Each [`EngineSnapshot`] is handed to a [`CheckpointRecorder`]:
//! [`FileRecorder`] persists it crash-consistently (temp file + atomic
//! rename), [`MemoryRecorder`] keeps snapshots in memory for tests and
//! the chaos harness's kill–resume dimension.
//!
//! The durability invariant: [`crate::Simulation::resume`] from *any*
//! snapshot continues to a final report and telemetry event stream
//! byte-identical to the uninterrupted run's suffix. With the policy
//! disabled (the default) the engine takes one predictable branch per
//! event and is bit-identical to the pre-checkpoint engine.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use ramsis_stats::LogHistogram;

use crate::autoscale::{AutoscaleStats, BrownoutLadder, HysteresisController, WorkerState};
use crate::health::HealthState;
use crate::metrics::MetricsCollector;
use crate::query::{Nanos, Query};
use crate::resilience::{splitmix64, CoDelAdmission, RetryBudget};
use crate::SimError;

/// Snapshot format version; bumped on any incompatible layout change.
/// v2 added the optional failure-detector state.
pub const SNAPSHOT_VERSION: u32 = 2;

/// When (if ever) the engine takes checkpoints. Off by default: the
/// zero-value policy reproduces the pre-checkpoint engine bit-for-bit
/// and costs one branch per processed event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Master switch; when false the engine never snapshots.
    pub enabled: bool,
    /// Snapshot after every `n` processed events (0 disables the
    /// event-count cadence).
    pub every_events: u64,
    /// Snapshot when simulated time crosses each multiple of this many
    /// seconds (0 disables the sim-time cadence).
    pub every_sim_s: f64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            every_events: 100_000,
            every_sim_s: 0.0,
        }
    }
}

impl CheckpointPolicy {
    /// An enabled policy snapshotting every `n` processed events.
    pub fn every_events(n: u64) -> Self {
        Self {
            enabled: true,
            every_events: n,
            every_sim_s: 0.0,
        }
    }

    /// An enabled policy snapshotting every `s` seconds of simulated
    /// time.
    pub fn every_sim_s(s: f64) -> Self {
        Self {
            enabled: true,
            every_events: 0,
            every_sim_s: s,
        }
    }

    /// Checks the policy is runnable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when enabled with no cadence,
    /// or the sim-time cadence is negative or non-finite.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.every_sim_s.is_finite() || self.every_sim_s < 0.0 {
            return Err(SimError::InvalidConfig(format!(
                "checkpoint sim-time cadence must be finite and non-negative, got {}",
                self.every_sim_s
            )));
        }
        if self.enabled && self.every_events == 0 && self.every_sim_s == 0.0 {
            return Err(SimError::InvalidConfig(
                "checkpoint policy enabled with no cadence: set every_events or every_sim_s"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// Identity and position of a snapshot: enough to refuse a resume
/// against the wrong run and to heal a telemetry log's torn tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Configured (initial) worker-pool size.
    pub workers: usize,
    /// Response-latency SLO the run was configured with (seconds).
    pub slo_s: f64,
    /// Arrival-sampling seed.
    pub arrival_seed: u64,
    /// Service-time sampling seed.
    pub latency_seed: u64,
    /// Name of the serving scheme driving the run.
    pub scheme: String,
    /// Heap events processed so far.
    pub events_done: u64,
    /// Simulated time of the last processed event (nanoseconds).
    pub sim_time_ns: Nanos,
    /// Telemetry events emitted so far; a resumed run's JSONL log is
    /// truncated to exactly this many lines before appending.
    pub events_emitted: u64,
    /// Length of the pre-sampled arrival array.
    pub arrivals_len: usize,
    /// Order-sensitive fingerprint of the arrival times
    /// ([`arrivals_fingerprint`]); a resume against different arrivals
    /// is refused.
    pub arrivals_hash: u64,
}

/// One pending event, heap-externalized: `(time, sequence)` plus the
/// engine's private event kind flattened to `(tag, a, b)`. Entries are
/// stored sorted by `(t, seq)` so equal snapshots serialize to equal
/// bytes regardless of the heap's internal arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapEntry {
    /// Scheduled simulation time.
    pub t: Nanos,
    /// Tie-breaking sequence number (unique per run).
    pub seq: u64,
    /// Event-kind discriminant (engine-internal encoding).
    pub tag: u8,
    /// First payload word (worker/index).
    pub a: u64,
    /// Second payload word (epoch; 0 when unused).
    pub b: u64,
}

/// An in-flight dispatch, externalized from the engine's private
/// representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InFlightState {
    /// Catalog index of the model being run.
    pub model: usize,
    /// The batch, in queue order.
    pub queries: Vec<Query>,
    /// Dispatch time of this side.
    pub started: Nanos,
    /// The other side of a hedged pair, while both run.
    pub twin: Option<usize>,
    /// True for the duplicate side of a hedged pair.
    pub is_hedge: bool,
}

/// Per-worker cluster state at the checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    /// Serving an in-flight batch right now.
    pub busy: Vec<bool>,
    /// Routable (live) workers.
    pub alive: Vec<bool>,
    /// Service-time slowdown multiplier per worker.
    pub slow: Vec<f64>,
    /// Dispatch epoch per worker (stale-event discipline).
    pub epochs: Vec<u64>,
    /// In-flight dispatch per worker.
    pub in_flight: Vec<Option<InFlightState>>,
    /// Crash time of each currently-dead worker.
    pub down_since: Vec<Option<Nanos>>,
    /// Live worker count.
    pub live: usize,
    /// Autoscale lifecycle per worker slot.
    pub lifecycle: Vec<WorkerState>,
}

/// Resilience-layer state at the checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceState {
    /// Retry token bucket.
    pub budget: RetryBudget,
    /// CoDel admission state per queue (workers, then central).
    pub admission: Vec<CoDelAdmission>,
    /// Observed service-time histogram feeding the hedge quantile.
    pub service_hist: LogHistogram,
    /// Append-only backoff buffer `EventKind::Retry` indexes into.
    pub retry_buf: Vec<Query>,
}

/// Autoscaler and brownout state at the checkpoint; absent when the
/// subsystem is disabled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleState {
    /// Hysteresis controller (pending direction/ticks, cooldown clock).
    pub controller: HysteresisController,
    /// Brownout ladder (active rung, dwell counters).
    pub ladder: BrownoutLadder,
    /// Accumulated autoscale statistics.
    pub stats: AutoscaleStats,
    /// Live-count integral bookkeeping: time of the last change.
    pub last_live_change: Nanos,
    /// Live-count integral bookkeeping: value at the last change.
    pub live_at_change: usize,
    /// When rung 0 was last left (open brownout episode).
    pub brownout_since: Option<Nanos>,
    /// Active brownout rung mirrored onto the dispatch hot path.
    pub brown_rung: u32,
    /// `Serve` selections degraded by the ladder so far.
    pub brown_degraded: u64,
}

/// Complete mid-run engine state: everything needed to continue the run
/// to a byte-identical report and telemetry suffix. Serializes to
/// canonical JSON (fixed field order, sorted heap), so equal states
/// give equal bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Identity and position of the snapshot.
    pub meta: SnapshotMeta,
    /// Pending events, sorted by `(t, seq)`.
    pub heap: Vec<HeapEntry>,
    /// Next event sequence number.
    pub next_seq: u64,
    /// Latest simulated time observed so far.
    pub horizon: Nanos,
    /// Per-worker queues (per-worker routing).
    pub worker_queues: Vec<VecDeque<Query>>,
    /// The central queue (central routing).
    pub central_queue: VecDeque<Query>,
    /// Queries stranded with no live worker.
    pub limbo: VecDeque<Query>,
    /// Round-robin routing cursor.
    pub rr_next: usize,
    /// Per-worker cluster state.
    pub cluster: ClusterState,
    /// Resilience-layer state.
    pub resilience: ResilienceState,
    /// The full metrics accumulator.
    pub metrics: MetricsCollector,
    /// Service-time RNG position as `(block counter, word index)`.
    pub latency_rng: (u64, usize),
    /// Autoscaler state; `None` when the subsystem is disabled.
    pub autoscale: Option<AutoscaleState>,
    /// Failure-detector state (phi estimators, breakers, health
    /// accounting); `None` when the subsystem is disabled.
    pub health: Option<HealthState>,
    /// Scheme-private state ([`crate::ServingScheme::checkpoint_state`]);
    /// `Null` for stateless schemes.
    pub scheme_state: serde::Value,
    /// Estimator-private state
    /// ([`ramsis_workload::LoadEstimator::checkpoint_state`]).
    pub estimator_state: serde::Value,
}

impl EngineSnapshot {
    /// Canonical JSON encoding; equal snapshots give equal bytes.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses a snapshot from its JSON encoding.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on malformed JSON, a layout
    /// mismatch, or a version newer than this build understands.
    pub fn from_json(json: &str) -> Result<Self, SimError> {
        let snap: Self = serde_json::from_str(json)
            .map_err(|e| SimError::InvalidConfig(format!("malformed snapshot: {e}")))?;
        if snap.meta.version > SNAPSHOT_VERSION {
            return Err(SimError::InvalidConfig(format!(
                "snapshot version {} is newer than supported {}",
                snap.meta.version, SNAPSHOT_VERSION
            )));
        }
        Ok(snap)
    }

    /// Writes the snapshot crash-consistently: serialize to
    /// `<path>.tmp`, fsync, then atomically rename over `path`. A crash
    /// at any point leaves either the previous snapshot or the new one,
    /// never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the write, sync, or rename.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let tmp = tmp_path(path);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads a snapshot previously written with
    /// [`Self::write_atomic`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the file is unreadable
    /// or malformed.
    pub fn read(path: &Path) -> Result<Self, SimError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            SimError::InvalidConfig(format!("cannot read snapshot {}: {e}", path.display()))
        })?;
        Self::from_json(text.trim_end())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("snapshot"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Order-sensitive fingerprint of an arrival array: a splitmix64 fold
/// over the raw bit patterns. Used to refuse resuming a snapshot
/// against different arrivals (wrong trace, seed, or surge plan).
pub fn arrivals_fingerprint(arrivals: &[f64]) -> u64 {
    let mut h = 0xA5A5_5A5A_0C1A_0505u64;
    for &t in arrivals {
        h = splitmix64(h ^ t.to_bits());
    }
    h
}

/// Where checkpoints go. The engine calls [`Self::record`] at each
/// cadence point; returning `false` stops the run on the spot (the
/// chaos harness's simulated kill — the engine returns `Ok(None)`).
pub trait CheckpointRecorder {
    /// Persists one snapshot; `false` asks the engine to halt the run
    /// immediately after this checkpoint.
    fn record(&mut self, snapshot: &EngineSnapshot) -> bool;
}

/// Keeps every snapshot in memory; optionally stops the run after the
/// n-th one (the kill–resume harness's crash point).
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    /// Recorded snapshots, in cadence order.
    pub snapshots: Vec<EngineSnapshot>,
    /// Stop the run once this many snapshots are recorded.
    pub stop_after: Option<usize>,
}

impl MemoryRecorder {
    /// A recorder that never stops the run.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that halts the run right after snapshot `n` (1-based)
    /// is recorded — a deterministic simulated kill.
    pub fn stop_after(n: usize) -> Self {
        Self {
            snapshots: Vec::new(),
            stop_after: Some(n),
        }
    }
}

impl CheckpointRecorder for MemoryRecorder {
    fn record(&mut self, snapshot: &EngineSnapshot) -> bool {
        self.snapshots.push(snapshot.clone());
        match self.stop_after {
            Some(n) => self.snapshots.len() < n,
            None => true,
        }
    }
}

/// Persists the latest snapshot to one path, crash-consistently
/// ([`EngineSnapshot::write_atomic`]). A failed write stops the run;
/// the error is surfaced through [`Self::take_error`].
#[derive(Debug)]
pub struct FileRecorder {
    path: PathBuf,
    written: u64,
    error: Option<String>,
}

impl FileRecorder {
    /// A recorder writing the latest snapshot to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            written: 0,
            error: None,
        }
    }

    /// Snapshots successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any (taking it resets the slot).
    pub fn take_error(&mut self) -> Option<String> {
        self.error.take()
    }
}

impl CheckpointRecorder for FileRecorder {
    fn record(&mut self, snapshot: &EngineSnapshot) -> bool {
        match snapshot.write_atomic(&self.path) {
            Ok(()) => {
                self.written += 1;
                true
            }
            Err(e) => {
                self.error = Some(format!(
                    "checkpoint write to {} failed: {e}",
                    self.path.display()
                ));
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_default_is_off_and_valid() {
        let p = CheckpointPolicy::default();
        assert!(!p.enabled);
        p.validate().unwrap();
    }

    #[test]
    fn policy_rejects_enabled_without_cadence() {
        let p = CheckpointPolicy {
            enabled: true,
            every_events: 0,
            every_sim_s: 0.0,
        };
        assert!(p.validate().is_err());
        assert!(CheckpointPolicy::every_events(1_000).validate().is_ok());
        assert!(CheckpointPolicy::every_sim_s(0.5).validate().is_ok());
        let neg = CheckpointPolicy {
            every_sim_s: -1.0,
            ..CheckpointPolicy::default()
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = arrivals_fingerprint(&[0.1, 0.2, 0.3]);
        let b = arrivals_fingerprint(&[0.2, 0.1, 0.3]);
        let c = arrivals_fingerprint(&[0.1, 0.2, 0.3]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(arrivals_fingerprint(&[]), arrivals_fingerprint(&[0.0]));
    }

    #[test]
    fn tmp_path_appends_suffix() {
        assert_eq!(
            tmp_path(Path::new("/x/y/snap.json")),
            PathBuf::from("/x/y/snap.json.tmp")
        );
    }

    #[test]
    fn memory_recorder_stop_after_halts() {
        let snap_json = |r: &MemoryRecorder| r.snapshots.len();
        let mut r = MemoryRecorder::stop_after(2);
        let s = dummy_snapshot();
        assert!(r.record(&s));
        assert!(!r.record(&s));
        assert_eq!(snap_json(&r), 2);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let s = dummy_snapshot();
        let json = s.to_json();
        let back = EngineSnapshot::from_json(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn snapshot_rejects_future_version() {
        let mut s = dummy_snapshot();
        s.meta.version = SNAPSHOT_VERSION + 1;
        assert!(EngineSnapshot::from_json(&s.to_json()).is_err());
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("ramsis-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let s = dummy_snapshot();
        s.write_atomic(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp file must be renamed away");
        let back = EngineSnapshot::read(&path).unwrap();
        assert_eq!(s, back);
        std::fs::remove_file(&path).ok();
    }

    fn dummy_snapshot() -> EngineSnapshot {
        EngineSnapshot {
            meta: SnapshotMeta {
                version: SNAPSHOT_VERSION,
                workers: 2,
                slo_s: 0.15,
                arrival_seed: 1,
                latency_seed: 2,
                scheme: "test".to_string(),
                events_done: 10,
                sim_time_ns: 1_000,
                events_emitted: 0,
                arrivals_len: 3,
                arrivals_hash: arrivals_fingerprint(&[0.1, 0.2, 0.3]),
            },
            heap: vec![HeapEntry {
                t: 2_000,
                seq: 11,
                tag: 0,
                a: 1,
                b: 0,
            }],
            next_seq: 12,
            horizon: 1_000,
            worker_queues: vec![VecDeque::new(), VecDeque::from([Query::new(7, 900, 100)])],
            central_queue: VecDeque::new(),
            limbo: VecDeque::new(),
            rr_next: 1,
            cluster: ClusterState {
                busy: vec![true, false],
                alive: vec![true, true],
                slow: vec![1.0, 1.0],
                epochs: vec![3, 0],
                in_flight: vec![
                    Some(InFlightState {
                        model: 0,
                        queries: vec![Query::new(6, 800, 100)],
                        started: 950,
                        twin: None,
                        is_hedge: false,
                    }),
                    None,
                ],
                down_since: vec![None, None],
                live: 2,
                lifecycle: vec![WorkerState::Live, WorkerState::Live],
            },
            resilience: ResilienceState {
                budget: RetryBudget::new(0.0, 1.0),
                admission: vec![CoDelAdmission::default(); 3],
                service_hist: LogHistogram::new(),
                retry_buf: Vec::new(),
            },
            metrics: MetricsCollector::new(),
            latency_rng: (4, 9),
            autoscale: None,
            health: None,
            scheme_state: serde::Value::Null,
            estimator_state: serde::Value::Null,
        }
    }
}
