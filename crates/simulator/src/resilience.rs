//! Request-level resilience: dispatch timeouts, retry with backoff,
//! hedged dispatch, and admission control.
//!
//! The MS&S policies assume every dispatched query completes on its
//! worker; fault injection (DESIGN.md §6) models crashes, but a
//! straggling or overloaded worker otherwise burns the query's whole
//! deadline with no recourse. This module adds the reactive substrate
//! under the policy layer:
//!
//! - **Timeouts** ([`TimeoutPolicy`]): each dispatch is granted a
//!   fraction of the batch's remaining SLO slack; a batch that would
//!   run past it is cancelled and its worker freed.
//! - **Retry** ([`RetryPolicy`]): timed-out queries are re-dispatched
//!   after exponential backoff with *deterministic jitter* (a hash of
//!   seed, query id, and attempt — no RNG state, so runs stay
//!   reproducible), capped attempts, and a [`RetryBudget`] token bucket
//!   that prevents retry storms under overload.
//! - **Hedging** ([`HedgePolicy`]): once a batch has been in service
//!   longer than an observed latency quantile, a duplicate is issued to
//!   an idle worker; the first completion wins and the loser is
//!   cancelled, with first-wins accounting so every query counts once.
//! - **Admission control** ([`AdmissionPolicy`]): per-queue hard caps
//!   plus a CoDel-style sojourn threshold ([`CoDelAdmission`]) that
//!   sheds on *enqueue* — before any work is wasted — when the queue
//!   head has been waiting above target for a full interval.
//!
//! [`ResiliencePolicy::default`] disables every mechanism; the engine
//! then takes exactly its pre-resilience paths and seeded reports are
//! bit-identical to runs without the layer (pinned by
//! `tests/resilience.rs`).

use serde::{Deserialize, Serialize};

use crate::query::{nanos_from_secs, Nanos};
use crate::SimError;

/// Per-dispatch timeout derived from the batch's remaining SLO budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeoutPolicy {
    /// Master switch; `false` (default) schedules no timeout events.
    pub enabled: bool,
    /// Fraction of the earliest queued deadline's remaining slack
    /// granted to one dispatch attempt (the rest is kept for retries).
    pub slack_fraction: f64,
    /// Floor on the granted timeout, seconds — queries whose slack is
    /// already blown still get one bounded service attempt.
    pub min_timeout_s: f64,
}

impl Default for TimeoutPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            slack_fraction: 0.5,
            min_timeout_s: 0.01,
        }
    }
}

/// Exponential backoff with deterministic jitter for timed-out queries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-dispatches allowed per query after its first attempt
    /// (0 = timed-out queries are shed immediately).
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per attempt.
    pub backoff_base_s: f64,
    /// Upper bound on the backoff delay, seconds.
    pub backoff_cap_s: f64,
    /// Fraction of each delay that is jittered (0 = fixed delays,
    /// 1 = fully randomized within `[0, delay)`).
    pub jitter_frac: f64,
    /// Seed of the deterministic jitter hash; same seed, same delays.
    pub jitter_seed: u64,
    /// Retry tokens replenished per second of simulated time.
    pub budget_rate_per_s: f64,
    /// Token-bucket capacity (burst of retries allowed at once).
    pub budget_burst: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 0,
            backoff_base_s: 0.005,
            backoff_cap_s: 0.05,
            jitter_frac: 0.3,
            jitter_seed: 0x5EED_F00D,
            budget_rate_per_s: 20.0,
            budget_burst: 10.0,
        }
    }
}

/// Hedged dispatch after an observed service-latency quantile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Master switch; `false` (default) never issues duplicates.
    pub enabled: bool,
    /// Service-time percentile (0–100, exclusive) after which an
    /// in-flight batch is hedged to a second worker.
    pub quantile: f64,
    /// Completed dispatches observed before hedging arms (the quantile
    /// estimate is noise until then).
    pub min_samples: u64,
    /// Floor on the hedge delay, seconds (guards against a degenerate
    /// quantile estimate hedging everything instantly).
    pub min_delay_s: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            quantile: 95.0,
            min_samples: 32,
            min_delay_s: 0.002,
        }
    }
}

/// Bounded per-queue admission with a CoDel-style sojourn threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Master switch; `false` (default) admits everything.
    pub enabled: bool,
    /// Hard cap on queue depth; an arrival finding the queue at the cap
    /// is shed on enqueue.
    pub queue_cap: usize,
    /// Target sojourn of the queue head, seconds; sustained excess
    /// signals standing overload (CoDel's `TARGET`).
    pub target_sojourn_s: f64,
    /// How long the head must stay above target before arrivals are
    /// shed (CoDel's `INTERVAL`).
    pub interval_s: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            queue_cap: 64,
            target_sojourn_s: 0.02,
            interval_s: 0.1,
        }
    }
}

/// The full request-level resilience configuration, hanging off
/// [`crate::SimulationConfig`]. The default disables every mechanism
/// and reproduces pre-resilience behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// Dispatch timeouts from remaining SLO budget.
    pub timeout: TimeoutPolicy,
    /// Retry with backoff for timed-out queries (needs `timeout`).
    pub retry: RetryPolicy,
    /// Hedged dispatch past a latency quantile.
    pub hedge: HedgePolicy,
    /// Bounded queues + CoDel shed-on-enqueue.
    pub admission: AdmissionPolicy,
}

impl ResiliencePolicy {
    /// A policy with every mechanism switched on at its default knobs —
    /// the one-liner used by benches and the chaos harness.
    pub fn all_on() -> Self {
        Self {
            timeout: TimeoutPolicy {
                enabled: true,
                ..TimeoutPolicy::default()
            },
            retry: RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
            hedge: HedgePolicy {
                enabled: true,
                ..HedgePolicy::default()
            },
            admission: AdmissionPolicy {
                enabled: true,
                ..AdmissionPolicy::default()
            },
        }
    }

    /// True when no mechanism is active (the engine skips the layer).
    pub fn is_noop(&self) -> bool {
        !self.timeout.enabled && !self.hedge.enabled && !self.admission.enabled
    }

    /// Checks every *enabled* mechanism's knobs: rejects NaN and
    /// non-finite values, zero or negative durations, fractions outside
    /// their range, and degenerate caps.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |msg: String| Err(SimError::InvalidConfig(msg));
        let pos = |what: &str, v: f64| -> Result<(), SimError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "resilience: {what} must be positive and finite, got {v}"
                )));
            }
            Ok(())
        };
        if self.timeout.enabled {
            pos("timeout slack fraction", self.timeout.slack_fraction)?;
            if self.timeout.slack_fraction > 1.0 {
                return bad(format!(
                    "resilience: timeout slack fraction must be <= 1, got {}",
                    self.timeout.slack_fraction
                ));
            }
            pos("minimum timeout", self.timeout.min_timeout_s)?;
            if self.retry.max_retries > 0 {
                pos("retry backoff base", self.retry.backoff_base_s)?;
                pos("retry backoff cap", self.retry.backoff_cap_s)?;
                if self.retry.backoff_cap_s < self.retry.backoff_base_s {
                    return bad(format!(
                        "resilience: backoff cap {} below base {}",
                        self.retry.backoff_cap_s, self.retry.backoff_base_s
                    ));
                }
                if !self.retry.jitter_frac.is_finite()
                    || !(0.0..=1.0).contains(&self.retry.jitter_frac)
                {
                    return bad(format!(
                        "resilience: jitter fraction must be in [0, 1], got {}",
                        self.retry.jitter_frac
                    ));
                }
                if !self.retry.budget_rate_per_s.is_finite() || self.retry.budget_rate_per_s < 0.0 {
                    return bad(format!(
                        "resilience: retry budget rate must be non-negative and finite, got {}",
                        self.retry.budget_rate_per_s
                    ));
                }
                pos("retry budget burst", self.retry.budget_burst)?;
                // A burst below one token can never grant a retry
                // ([`RetryBudget::try_take`] needs a whole token), so
                // retries would be configured on yet silently never
                // fire — a zero-capacity budget is a config bug.
                if self.retry.budget_burst < 1.0 {
                    return bad(format!(
                        "resilience: retry budget burst {} can never hold a whole \
                         token; use at least 1 (or set max_retries to 0)",
                        self.retry.budget_burst
                    ));
                }
            }
        }
        if self.hedge.enabled {
            if !self.hedge.quantile.is_finite()
                || self.hedge.quantile <= 0.0
                || self.hedge.quantile >= 100.0
            {
                return bad(format!(
                    "resilience: hedge quantile must be in (0, 100), got {}",
                    self.hedge.quantile
                ));
            }
            // Quantiles are percent (90.0 = p90). A value below 1 is
            // almost certainly a fraction (0.9) slipping through, which
            // would hedge virtually every dispatch; reject it loudly
            // instead of silently doubling the load.
            if self.hedge.quantile < 1.0 {
                return bad(format!(
                    "resilience: hedge quantile is a percent (e.g. 90.0), got {} — \
                     fractions in (0, 1) are rejected to catch unit confusion",
                    self.hedge.quantile
                ));
            }
            if self.hedge.min_samples == 0 {
                return bad("resilience: hedge min_samples must be at least 1".to_string());
            }
            pos("hedge minimum delay", self.hedge.min_delay_s)?;
        }
        if self.admission.enabled {
            if self.admission.queue_cap == 0 {
                return bad("resilience: admission queue cap must be at least 1".to_string());
            }
            pos("admission target sojourn", self.admission.target_sojourn_s)?;
            pos("admission interval", self.admission.interval_s)?;
        }
        Ok(())
    }
}

/// SplitMix64 — the jitter hash. Pure function of its input, so retry
/// delays are reproducible without threading RNG state through the
/// engine.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The backoff delay before retry number `attempt` (1-based) of
/// `query`: exponential in the attempt, capped, with the policy's
/// jitter fraction filled by a deterministic hash — same `(seed, query,
/// attempt)` always gives the same delay, different queries decorrelate
/// so a timed-out batch does not retry in lockstep.
pub fn backoff_delay_s(policy: &RetryPolicy, attempt: u32, query: u64) -> f64 {
    let exp = attempt.saturating_sub(1).min(30);
    let base = (policy.backoff_base_s * f64::from(1u32 << exp)).min(policy.backoff_cap_s);
    let h = splitmix64(
        policy
            .jitter_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(query)
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(u64::from(attempt)),
    );
    // 53 high bits -> uniform in [0, 1).
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    base * (1.0 - policy.jitter_frac) + base * policy.jitter_frac * u
}

/// A token bucket limiting retry volume: `burst` tokens capacity,
/// refilled at `rate` per second of *simulated* time. Deterministic —
/// its state is a pure function of the take-attempt times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryBudget {
    tokens: f64,
    burst: f64,
    rate_per_s: f64,
    last_s: f64,
}

impl RetryBudget {
    /// A full bucket.
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        Self {
            tokens: burst,
            burst,
            rate_per_s,
            last_s: 0.0,
        }
    }

    /// Takes one token at simulated time `now_s`, refilling first;
    /// `false` means the retry is denied. Calls must use monotone
    /// non-decreasing times (event order guarantees this).
    pub fn try_take(&mut self, now_s: f64) -> bool {
        let elapsed = (now_s - self.last_s).max(0.0);
        self.tokens = (self.tokens + elapsed * self.rate_per_s).min(self.burst);
        self.last_s = self.last_s.max(now_s);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (diagnostics/tests).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Why admission control refused a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The queue is at its hard cap.
    QueueFull,
    /// The queue head's sojourn stayed above target for a full
    /// interval — standing overload.
    Sojourn,
}

/// Per-queue CoDel-style admission state. One instance per worker queue
/// (plus one for the central queue); the engine consults it on every
/// enqueue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoDelAdmission {
    /// When the queue head's sojourn first exceeded target, if it has
    /// stayed above since.
    first_above: Option<Nanos>,
}

impl CoDelAdmission {
    /// Decides whether an arrival at `now` may join a queue of `depth`
    /// whose head was enqueued at `front_enqueued_at` (`None` = empty
    /// queue, which resets the sojourn clock). Returns `None` to admit.
    pub fn offer(
        &mut self,
        policy: &AdmissionPolicy,
        now: Nanos,
        depth: usize,
        front_enqueued_at: Option<Nanos>,
    ) -> Option<AdmissionVerdict> {
        if !policy.enabled {
            return None;
        }
        let Some(front_at) = front_enqueued_at else {
            // Empty queue: no standing backlog, clock resets.
            self.first_above = None;
            return None;
        };
        if depth >= policy.queue_cap {
            return Some(AdmissionVerdict::QueueFull);
        }
        let target = nanos_from_secs(policy.target_sojourn_s);
        let sojourn = now.saturating_sub(front_at);
        if sojourn > target {
            match self.first_above {
                None => {
                    self.first_above = Some(now);
                    None
                }
                Some(since) if now.saturating_sub(since) >= nanos_from_secs(policy.interval_s) => {
                    Some(AdmissionVerdict::Sojourn)
                }
                Some(_) => None,
            }
        } else {
            self.first_above = None;
            None
        }
    }

    /// The sojourn of the queue head at `now` (0 for an empty queue) —
    /// recorded in [`ramsis_telemetry::Event::Admission`].
    pub fn sojourn_ns(now: Nanos, front_enqueued_at: Option<Nanos>) -> Nanos {
        front_enqueued_at.map_or(0, |at| now.saturating_sub(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_noop_and_valid() {
        let p = ResiliencePolicy::default();
        assert!(p.is_noop());
        assert!(p.validate().is_ok());
        assert!(!ResiliencePolicy::all_on().is_noop());
        assert!(ResiliencePolicy::all_on().validate().is_ok());
    }

    #[test]
    fn validate_rejects_nan_and_degenerate_knobs() {
        let mut p = ResiliencePolicy::all_on();
        p.timeout.slack_fraction = f64::NAN;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.timeout.min_timeout_s = 0.0;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.retry.backoff_cap_s = p.retry.backoff_base_s / 2.0;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.retry.jitter_frac = 1.5;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.retry.budget_rate_per_s = f64::INFINITY;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.hedge.quantile = 100.0;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.admission.queue_cap = 0;
        assert!(p.validate().is_err());

        let mut p = ResiliencePolicy::all_on();
        p.admission.target_sojourn_s = -0.5;
        assert!(p.validate().is_err());

        // Disabled mechanisms are not validated: garbage knobs behind an
        // off switch cannot fail a run that never reads them.
        let mut p = ResiliencePolicy::default();
        p.hedge.quantile = f64::NAN;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_catches_fraction_quantile_and_starved_retry_budget() {
        // 0.95 "meaning" p95 is unit confusion — quantiles are percent.
        // It used to slip through the (0, 100) range check and hedge
        // nearly every dispatch.
        let mut p = ResiliencePolicy::all_on();
        p.hedge.quantile = 0.95;
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("percent"), "{err}");

        // A retry budget whose burst can never hold one whole token is
        // retries-in-name-only: enabled, yet structurally unable to
        // ever grant one.
        let mut p = ResiliencePolicy::all_on();
        p.retry.max_retries = 3;
        p.retry.budget_burst = 0.5;
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("token"), "{err}");

        // With retries off the same burst is dormant and acceptable.
        let mut p = ResiliencePolicy::all_on();
        p.retry.max_retries = 0;
        p.retry.budget_burst = 0.5;
        assert!(p.validate().is_ok());

        // Boundary values stay legal: exactly one token, exactly p1.
        let mut p = ResiliencePolicy::all_on();
        p.retry.max_retries = 1;
        p.retry.budget_burst = 1.0;
        p.hedge.quantile = 1.0;
        assert!(p.validate().is_ok());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 5,
            ..RetryPolicy::default()
        };
        for attempt in 1..=5 {
            for q in 0..50u64 {
                let d1 = backoff_delay_s(&policy, attempt, q);
                let d2 = backoff_delay_s(&policy, attempt, q);
                assert_eq!(d1, d2, "same inputs, same delay");
                let cap = policy
                    .backoff_cap_s
                    .min(policy.backoff_base_s * f64::from(1u32 << (attempt - 1)));
                assert!(d1 >= cap * (1.0 - policy.jitter_frac) - 1e-12);
                assert!(d1 <= cap + 1e-12);
            }
        }
        // Different queries decorrelate.
        let a = backoff_delay_s(&policy, 1, 1);
        let b = backoff_delay_s(&policy, 1, 2);
        assert_ne!(a, b);
        // Exponential growth until the cap.
        let unjittered = RetryPolicy {
            jitter_frac: 0.0,
            ..policy
        };
        let d1 = backoff_delay_s(&unjittered, 1, 0);
        let d2 = backoff_delay_s(&unjittered, 2, 0);
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
        let d9 = backoff_delay_s(&unjittered, 9, 0);
        assert_eq!(d9, unjittered.backoff_cap_s);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let policy = RetryPolicy::default();
        let d = backoff_delay_s(&policy, u32::MAX, 7);
        assert!(d.is_finite() && d <= policy.backoff_cap_s + 1e-12);
    }

    #[test]
    fn retry_budget_caps_bursts_and_refills() {
        let mut b = RetryBudget::new(10.0, 3.0);
        // The initial burst is exactly the bucket capacity.
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(b.try_take(0.0));
        assert!(!b.try_take(0.0), "burst exhausted");
        // 0.1 s at 10 tokens/s refills one token.
        assert!(b.try_take(0.1));
        assert!(!b.try_take(0.1));
        // Refill never exceeds the burst cap.
        assert!(b.try_take(100.0));
        assert!(b.tokens() <= 3.0);
    }

    #[test]
    fn retry_budget_is_deterministic() {
        let times = [0.0, 0.01, 0.02, 0.5, 0.5, 0.9, 2.0];
        let run = || {
            let mut b = RetryBudget::new(5.0, 2.0);
            times.map(|t| b.try_take(t))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn codel_admits_below_target_and_caps_depth() {
        let policy = AdmissionPolicy {
            enabled: true,
            queue_cap: 4,
            target_sojourn_s: 0.02,
            interval_s: 0.1,
        };
        let mut c = CoDelAdmission::default();
        // Empty queue always admits.
        assert_eq!(c.offer(&policy, 0, 0, None), None);
        // Below-target sojourn admits.
        assert_eq!(c.offer(&policy, 10_000_000, 2, Some(0)), None);
        // At the cap: rejected regardless of sojourn.
        assert_eq!(
            c.offer(&policy, 10_000_000, 4, Some(0)),
            Some(AdmissionVerdict::QueueFull)
        );
    }

    #[test]
    fn codel_sheds_after_sustained_sojourn_and_resets_on_empty() {
        let policy = AdmissionPolicy {
            enabled: true,
            queue_cap: 100,
            target_sojourn_s: 0.02,
            interval_s: 0.1,
        };
        let mut c = CoDelAdmission::default();
        // Head above target: first sighting starts the interval clock.
        assert_eq!(c.offer(&policy, 30_000_000, 1, Some(0)), None);
        // Still above, but interval not elapsed: admitted.
        assert_eq!(c.offer(&policy, 60_000_000, 2, Some(0)), None);
        // A full interval above target: shed.
        assert_eq!(
            c.offer(&policy, 130_000_000, 3, Some(0)),
            Some(AdmissionVerdict::Sojourn)
        );
        // The queue drains: the empty offer resets the clock, and the
        // next above-target sighting starts a fresh interval.
        assert_eq!(c.offer(&policy, 200_000_000, 0, None), None);
        assert_eq!(c.offer(&policy, 230_000_000, 1, Some(200_000_000)), None);
        // Below-target head also resets.
        assert_eq!(c.offer(&policy, 232_000_000, 2, Some(231_000_000)), None);
        assert_eq!(c.offer(&policy, 340_000_000, 2, Some(231_000_000)), None);
    }

    #[test]
    fn disabled_admission_admits_everything() {
        let policy = AdmissionPolicy::default();
        let mut c = CoDelAdmission::default();
        assert_eq!(c.offer(&policy, u64::MAX, usize::MAX, Some(0)), None);
    }

    #[test]
    fn serde_round_trip() {
        let p = ResiliencePolicy::all_on();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<ResiliencePolicy>(&json).unwrap(), p);
    }
}
