//! Per-query metrics collection and the end-of-run report.
//!
//! The paper's performance metrics (§7): *Latency SLO Violation Rate*
//! (fraction of serviced queries whose deadline is missed) and *Accuracy
//! Per Satisfied Query* (average profiled accuracy over satisfied
//! queries, given each query's model-selection decision).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use ramsis_profiles::WorkerProfile;
use ramsis_stats::summary::OnlineStats;
use ramsis_stats::LogHistogram;

use crate::query::{secs_from_nanos, Nanos, Query};

/// One fixed-length window of a run's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineBucket {
    /// Window start, seconds from simulation start.
    pub start_s: f64,
    /// Queries completed in the window.
    pub served: u64,
    /// Of those, deadline misses.
    pub violations: u64,
    /// Mean profiled accuracy of the window's *satisfied* completions,
    /// percent; `None` when nothing was satisfied in the window
    /// (serialized as JSON `null`, distinguishing "no data" from a
    /// genuine 0% model).
    pub accuracy: Option<f64>,
}

/// Accumulates per-query outcomes during a run.
///
/// Serializable so a checkpoint can freeze the collector mid-run and a
/// resumed run continues the exact same aggregates (`busy_nanos` rides
/// through JSON as a decimal string — 128 bits exceed the number model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsCollector {
    served: u64,
    violations: u64,
    dropped: u64,
    accuracy_sum_satisfied: f64,
    /// Exact running mean of response times, seconds.
    response_s: OnlineStats,
    /// Log-bucketed response-time histogram in nanoseconds: constant
    /// memory on the hot path (the retain-everything `Percentiles` it
    /// replaced grew by 8 bytes per query), percentiles within 1/128
    /// relative error, min/max exact.
    response_hist_ns: LogHistogram,
    batch_stats: OnlineStats,
    queue_wait: OnlineStats,
    /// Optional timeline: window length and raw per-window sums
    /// `(served, violations, accuracy_sum_satisfied)`.
    timeline_window_s: Option<f64>,
    timeline: Vec<(u64, u64, f64)>,
    /// Total busy time across workers, nanoseconds.
    busy_nanos: u128,
    /// Served query count per model *name* — name-keyed so workers with
    /// different model catalogs (heterogeneous clusters, §7) aggregate
    /// correctly.
    per_model: BTreeMap<String, u64>,
    /// Merged fault windows `(from_s, to_s)` for inside/outside-window
    /// violation accounting (empty without a fault plan).
    fault_windows: Vec<(f64, f64)>,
    /// Completions whose finish time fell inside a fault window.
    served_in_fault: u64,
    /// Of those, deadline misses.
    violations_in_fault: u64,
    /// Queries displaced by crashes and requeued to survivors.
    crash_requeued: u64,
    /// Queries displaced by crashes and dropped.
    crash_dropped: u64,
    /// Accumulated dead worker-seconds.
    downtime_s: f64,
    /// Load-monitor divergence samples (only populated when the run's
    /// estimator reports divergence, i.e. a `DivergenceMonitor`).
    divergence: OnlineStats,
    /// Regime the scheme currently reports, if any (adaptive schemes).
    current_regime: Option<String>,
    /// Per-regime `(served, violations)`, keyed by regime label.
    regime_counts: BTreeMap<String, (u64, u64)>,
    /// Request-level resilience accounting (all zeros when the
    /// resilience layer is disabled).
    resilience: ResilienceStats,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            served: 0,
            violations: 0,
            dropped: 0,
            accuracy_sum_satisfied: 0.0,
            response_s: OnlineStats::new(),
            response_hist_ns: LogHistogram::new(),
            batch_stats: OnlineStats::new(),
            queue_wait: OnlineStats::new(),
            timeline_window_s: None,
            timeline: Vec::new(),
            busy_nanos: 0,
            per_model: BTreeMap::new(),
            fault_windows: Vec::new(),
            served_in_fault: 0,
            violations_in_fault: 0,
            crash_requeued: 0,
            crash_dropped: 0,
            downtime_s: 0.0,
            divergence: OnlineStats::new(),
            current_regime: None,
            regime_counts: BTreeMap::new(),
            resilience: ResilienceStats::default(),
        }
    }

    /// Records dispatch timeouts: `queries` of worker `w`'s abandoned
    /// batch. The wasted service time still counts toward utilization
    /// (`started..now` held the worker).
    pub fn record_timeout(&mut self, queries: &[Query], started: Nanos, now: Nanos) {
        self.resilience.timeouts += queries.len() as u64;
        self.busy_nanos += now.saturating_sub(started) as u128;
    }

    /// Records one scheduled retry.
    pub fn record_retry(&mut self) {
        self.resilience.retries += 1;
    }

    /// Records queries shed because their retries were exhausted (or
    /// denied by the retry budget); they count as dropped.
    /// `budget_denied` is how many of them were refused by the token
    /// bucket rather than the attempt cap.
    pub fn record_retry_dropped(&mut self, queries: &[Query], budget_denied: u64) {
        self.resilience.retry_dropped += queries.len() as u64;
        self.resilience.retry_budget_denied += budget_denied;
        self.dropped += queries.len() as u64;
    }

    /// Records one issued hedge duplicate.
    pub fn record_hedge_issued(&mut self) {
        self.resilience.hedges_issued += 1;
    }

    /// Records the cancelled side of a hedged pair; its partial service
    /// time (`started..now`) counts toward utilization.
    pub fn record_hedge_cancelled(&mut self, started: Nanos, now: Nanos) {
        self.resilience.hedges_cancelled += 1;
        self.busy_nanos += now.saturating_sub(started) as u128;
    }

    /// Records a hedged pair won by the duplicate, not the primary.
    pub fn record_hedge_win(&mut self) {
        self.resilience.hedge_wins += 1;
    }

    /// Records queries refused at enqueue by admission control; they
    /// count as dropped.
    pub fn record_admission_shed(&mut self, queries: &[Query]) {
        self.resilience.admission_shed += queries.len() as u64;
        self.dropped += queries.len() as u64;
    }

    /// Enables inside/outside-fault-window violation accounting over
    /// the given merged windows (seconds, half-open).
    pub fn with_fault_windows(mut self, windows: Vec<(f64, f64)>) -> Self {
        self.fault_windows = windows;
        self
    }

    /// True when `t_s` falls inside a configured fault window.
    fn in_fault_window(&self, t_s: f64) -> bool {
        self.fault_windows
            .iter()
            .any(|&(from, to)| t_s >= from && t_s < to)
    }

    /// Records queries displaced by a worker crash and requeued to
    /// surviving workers (they remain in flight toward service).
    pub fn record_crash_requeued(&mut self, count: u64) {
        self.crash_requeued += count;
    }

    /// Records queries displaced by a worker crash and lost
    /// (`CrashPolicy::Drop`); they count as dropped.
    pub fn record_crash_dropped(&mut self, queries: &[Query]) {
        self.crash_dropped += queries.len() as u64;
        self.dropped += queries.len() as u64;
    }

    /// Accumulates dead worker-time (one crashed worker for ten seconds
    /// adds ten).
    pub fn record_downtime_s(&mut self, seconds: f64) {
        self.downtime_s += seconds;
    }

    /// Enables timeline collection with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not strictly positive and finite.
    pub fn with_timeline(mut self, window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "timeline window must be positive, got {window_s}"
        );
        self.timeline_window_s = Some(window_s);
        self
    }

    fn timeline_bucket(&mut self, done: Nanos) -> Option<&mut (u64, u64, f64)> {
        let window = self.timeline_window_s?;
        let i = (secs_from_nanos(done) / window) as usize;
        if self.timeline.len() <= i {
            self.timeline.resize(i + 1, (0, 0, 0.0));
        }
        Some(&mut self.timeline[i])
    }

    /// Records the completion of one batch at time `done`.
    pub fn record_batch(
        &mut self,
        profile: &WorkerProfile,
        model: usize,
        queries: &[Query],
        started: Nanos,
        done: Nanos,
    ) {
        let accuracy = profile.accuracy(model);
        self.batch_stats.push(queries.len() as f64);
        self.busy_nanos += done.saturating_sub(started) as u128;
        *self
            .per_model
            .entry(profile.models[model].name.clone())
            .or_insert(0) += queries.len() as u64;
        if let Some(regime) = &self.current_regime {
            let entry = self.regime_counts.entry(regime.clone()).or_insert((0, 0));
            entry.0 += queries.len() as u64;
            entry.1 += queries.iter().filter(|q| done > q.deadline).count() as u64;
        }
        for q in queries {
            self.served += 1;
            let response_ns = done.saturating_sub(q.arrival);
            self.response_s.push(secs_from_nanos(response_ns));
            self.response_hist_ns.record(response_ns);
            self.queue_wait
                .push(secs_from_nanos(started.saturating_sub(q.arrival)));
            let violated = done > q.deadline;
            if violated {
                self.violations += 1;
            } else {
                self.accuracy_sum_satisfied += accuracy;
            }
            if self.in_fault_window(secs_from_nanos(done)) {
                self.served_in_fault += 1;
                if violated {
                    self.violations_in_fault += 1;
                }
            }
            if let Some(bucket) = self.timeline_bucket(done) {
                bucket.0 += 1;
                if violated {
                    bucket.1 += 1;
                } else {
                    bucket.2 += accuracy;
                }
            }
        }
    }

    /// Records queries shed without service at time `now`.
    pub fn record_dropped(&mut self, queries: &[Query]) {
        self.dropped += queries.len() as u64;
    }

    /// Completions recorded so far. Mid-run introspection for the
    /// checkpoint replay validator, which cross-checks a snapshot's
    /// counters against the telemetry-log prefix it claims to cover.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Deadline violations recorded so far (see [`Self::served`]).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Queries dropped so far (see [`Self::served`]).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one load-monitor divergence sample (relative error of
    /// the online estimate against the planned load).
    pub fn record_divergence(&mut self, divergence: f64) {
        self.divergence.push(divergence);
    }

    /// Notes the regime the scheme currently reports; subsequent
    /// completions are attributed to it. `None` (non-adaptive schemes)
    /// leaves attribution off.
    pub fn note_regime(&mut self, regime: Option<&str>) {
        match (regime, &self.current_regime) {
            (None, None) => {}
            (Some(r), Some(cur)) if cur == r => {}
            (r, _) => self.current_regime = r.map(str::to_owned),
        }
    }

    /// Per-regime served/violation counts accumulated so far (empty for
    /// non-adaptive schemes). Capture before [`Self::report`], which
    /// consumes the collector.
    pub fn regime_breakdown(&self) -> Vec<RegimeBreakdown> {
        self.regime_counts
            .iter()
            .map(|(regime, &(served, violations))| RegimeBreakdown {
                regime: regime.clone(),
                served,
                violations,
            })
            .collect()
    }

    /// Finalizes the report. `workers` scales the utilization.
    pub fn report(
        self,
        scheme: String,
        total_arrivals: u64,
        horizon: Nanos,
        workers: usize,
    ) -> SimulationReport {
        let satisfied = self.served - self.violations;
        let timeline = match self.timeline_window_s {
            Some(window) => self
                .timeline
                .iter()
                .enumerate()
                .map(|(i, &(served, violations, acc_sum))| {
                    let sat = served - violations;
                    TimelineBucket {
                        start_s: i as f64 * window,
                        served,
                        violations,
                        accuracy: (sat > 0).then(|| acc_sum / sat as f64),
                    }
                })
                .collect(),
            None => Vec::new(),
        };
        let pctl = |p: f64| {
            self.response_hist_ns
                .percentile(p)
                .map_or(0.0, |ns| ns as f64 / 1e9)
        };
        let per_model = self.per_model.into_iter().collect();
        SimulationReport {
            scheme,
            total_arrivals,
            served: self.served,
            dropped: self.dropped,
            violations: self.violations,
            violation_rate: if self.served > 0 {
                self.violations as f64 / self.served as f64
            } else {
                0.0
            },
            accuracy_per_satisfied_query: if satisfied > 0 {
                self.accuracy_sum_satisfied / satisfied as f64
            } else {
                0.0
            },
            mean_response_s: self.response_s.mean(),
            p50_response_s: pctl(50.0),
            p95_response_s: pctl(95.0),
            p99_response_s: pctl(99.0),
            mean_queue_wait_s: self.queue_wait.mean(),
            mean_batch: self.batch_stats.mean(),
            max_batch: self.batch_stats.max().unwrap_or(0.0) as u32,
            per_model,
            timeline,
            mean_utilization: if horizon > 0 && workers > 0 {
                (self.busy_nanos as f64 / 1e9) / (workers as f64 * secs_from_nanos(horizon))
            } else {
                0.0
            },
            horizon_s: secs_from_nanos(horizon),
            divergence: if self.divergence.count() > 0 {
                Some(DivergenceStats {
                    mean: self.divergence.mean(),
                    max: self.divergence.max().unwrap_or(0.0),
                    samples: self.divergence.count(),
                })
            } else {
                None
            },
            adaptive: None,
            faults: FaultStats {
                downtime_s: self.downtime_s,
                crash_requeued: self.crash_requeued,
                crash_dropped: self.crash_dropped,
                served_in_fault: self.served_in_fault,
                violations_in_fault: self.violations_in_fault,
                served_outside_fault: self.served - self.served_in_fault,
                violations_outside_fault: self.violations - self.violations_in_fault,
            },
            resilience: self.resilience,
            autoscale: None,
            health: None,
        }
    }
}

/// Request-level resilience accounting (all zeros for a run with the
/// default, fully disabled [`crate::ResiliencePolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Dispatch timeouts fired, counted per query per timed-out
    /// attempt.
    pub timeouts: u64,
    /// Retries scheduled after timeouts.
    pub retries: u64,
    /// Queries shed after exhausting their retry allowance; also
    /// included in [`SimulationReport::dropped`].
    pub retry_dropped: u64,
    /// Of [`Self::retry_dropped`], queries refused by the retry-budget
    /// token bucket rather than the attempt cap.
    pub retry_budget_denied: u64,
    /// Hedge duplicates issued.
    pub hedges_issued: u64,
    /// Hedged dispatches cancelled (the losing side of each pair).
    pub hedges_cancelled: u64,
    /// Hedged pairs won by the duplicate rather than the primary — the
    /// hedges that actually paid off.
    pub hedge_wins: u64,
    /// Queries refused at enqueue by admission control; also included
    /// in [`SimulationReport::dropped`].
    pub admission_shed: u64,
}

/// Summary of load-monitor divergence over a run (`None` in the report
/// unless the estimator reports divergence — a
/// [`ramsis_workload::DivergenceMonitor`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DivergenceStats {
    /// Mean relative error of the online estimate vs the planned load.
    pub mean: f64,
    /// Worst sampled relative error.
    pub max: f64,
    /// Number of samples (one per batch completion).
    pub samples: u64,
}

/// One committed regime swap, as seen by the adaptive scheme.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeSwapEvent {
    /// Commit time, seconds from simulation start.
    pub at_s: f64,
    /// Label of the regime swapped away from.
    pub from: String,
    /// Label of the regime swapped to.
    pub to: String,
    /// Fitted arrival rate at commit, QPS.
    pub fitted_rate_qps: f64,
    /// Fitted count dispersion at commit.
    pub fitted_dispersion: f64,
    /// Seconds between first sighting of the regime and the commit
    /// (confirmation + cooldown latency of the drift detector).
    pub detection_delay_s: f64,
}

/// Served/violation counts attributed to one regime (by the regime the
/// scheme reported when the batch completed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeBreakdown {
    /// Regime label (e.g. `"le120qps-poisson"`).
    pub regime: String,
    /// Completions attributed to the regime.
    pub served: u64,
    /// Of those, deadline misses.
    pub violations: u64,
}

impl RegimeBreakdown {
    /// Violation rate within the regime (0 when nothing completed).
    pub fn violation_rate(&self) -> f64 {
        if self.served > 0 {
            self.violations as f64 / self.served as f64
        } else {
            0.0
        }
    }
}

/// Accounting for an adaptive scheme's runtime behavior (`None` in the
/// report for non-adaptive schemes).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AdaptiveStats {
    /// Committed policy hot-swaps.
    pub swaps: u64,
    /// Drift-detector re-fits over the run.
    pub refits: u64,
    /// Queries shed because their deadline was already unreachable.
    pub shed_hopeless: u64,
    /// Queries shed to cap the queue depth.
    pub shed_queue_depth: u64,
    /// Regimes solved lazily online (not pre-solved in the library).
    pub lazy_solves: u64,
    /// Decisions answered by the fallback policy (regime without a
    /// solved set).
    pub fallback_decisions: u64,
    /// Mean detection delay over committed swaps, seconds (0 when no
    /// swap committed).
    pub mean_detection_delay_s: f64,
    /// Worst detection delay, seconds.
    pub max_detection_delay_s: f64,
    /// Every committed swap, in order.
    pub regime_events: Vec<RegimeSwapEvent>,
    /// Served/violation counts per regime label.
    pub per_regime: Vec<RegimeBreakdown>,
}

/// Degradation accounting for a run with fault injection (all zeros for
/// a fault-free run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Dead worker-seconds accumulated over the run (two workers down
    /// for 5 s each is 10).
    pub downtime_s: f64,
    /// Queries displaced by crashes and requeued to surviving workers.
    pub crash_requeued: u64,
    /// Queries displaced by crashes and lost (`CrashPolicy::Drop`);
    /// also included in [`SimulationReport::dropped`].
    pub crash_dropped: u64,
    /// Completions inside a fault window.
    pub served_in_fault: u64,
    /// Of those, deadline misses.
    pub violations_in_fault: u64,
    /// Completions outside every fault window.
    pub served_outside_fault: u64,
    /// Of those, deadline misses.
    pub violations_outside_fault: u64,
}

impl FaultStats {
    /// Violation rate over completions inside fault windows (0 when
    /// none completed there).
    pub fn violation_rate_in_fault(&self) -> f64 {
        if self.served_in_fault > 0 {
            self.violations_in_fault as f64 / self.served_in_fault as f64
        } else {
            0.0
        }
    }

    /// Violation rate over completions outside fault windows (0 when
    /// none completed there).
    pub fn violation_rate_outside_fault(&self) -> f64 {
        if self.served_outside_fault > 0 {
            self.violations_outside_fault as f64 / self.served_outside_fault as f64
        } else {
            0.0
        }
    }
}

/// Perceived-health accounting, reported as
/// [`SimulationReport::health`] when the failure detector is enabled
/// (DESIGN.md §14). Suspicions are scored against ground truth —
/// genuine vs. false, and how far detection lagged the actual failure —
/// so detection quality is measurable even though nothing here ever
/// informs the detector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HealthStats {
    /// Probes sent (one per candidate worker per probe tick).
    pub probes_sent: u64,
    /// Probes that went unanswered.
    pub probes_failed: u64,
    /// Workers ejected from perceived membership.
    pub suspects: u64,
    /// Of those, ejections of a worker that really was down.
    pub suspects_genuine: u64,
    /// Of those, false positives (partitions, outlier ejections).
    pub suspects_false: u64,
    /// Suspected workers reinstated after probe-gated breaker close.
    pub reinstates: u64,
    /// Breaker Closed→Open trips plus HalfOpen→Open re-trips.
    pub breaker_opens: u64,
    /// Breaker Open→HalfOpen moves (trial admissions).
    pub breaker_half_opens: u64,
    /// Breaker HalfOpen→Closed moves (paired with reinstatements).
    pub breaker_closes: u64,
    /// Batches that failed with a retriable error (`WorkerErrorRate`).
    pub batch_errors: u64,
    /// Completions flagged as service-time outliers.
    pub outlier_strikes: u64,
    /// Queries displaced off a newly suspected worker's queue.
    pub requeued_on_suspect: u64,
    /// Sum of detection lags over genuine suspicions, seconds.
    pub detection_lag_total_s: f64,
    /// Mean detection lag over genuine suspicions, seconds (0 when
    /// none).
    pub mean_detection_lag_s: f64,
    /// Worst detection lag, seconds.
    pub max_detection_lag_s: f64,
    /// Integral of suspected workers over the horizon,
    /// worker-seconds.
    pub suspected_time_s: f64,
    /// Of that, worker-seconds a *healthy* worker spent wrongly
    /// ejected — the cost of over-eager suspicion.
    pub false_suspected_time_s: f64,
    /// Workers still suspected when the run ended.
    pub suspected_at_end: u64,
}

/// The outcome of one simulated run.
///
/// Serialization is hand-written (not derived) for one reason: the
/// `autoscale` field must be *omitted* — not `null` — when autoscaling
/// is disabled, so a fixed-pool run's report stays byte-identical to
/// the pre-elasticity engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// Name of the MS&S scheme that produced the run.
    pub scheme: String,
    /// Queries that arrived at the central queue.
    pub total_arrivals: u64,
    /// Queries served to completion (= arrivals unless the scheme
    /// sheds, `MissPolicy::Drop`).
    pub served: u64,
    /// Queries shed without service.
    pub dropped: u64,
    /// Queries whose deadline was missed.
    pub violations: u64,
    /// `violations / served` — the paper's Latency SLO Violation Rate
    /// over *serviced* queries. Shed queries are reported separately in
    /// [`Self::dropped`] / [`Self::loss_rate`].
    pub violation_rate: f64,
    /// The paper's Accuracy Per Satisfied Query, percent.
    pub accuracy_per_satisfied_query: f64,
    /// Mean end-to-end response time, seconds.
    pub mean_response_s: f64,
    /// Median response time, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile response time, seconds — the paper's headline
    /// tail-latency metric for SLO attainment.
    pub p95_response_s: f64,
    /// 99th-percentile response time, seconds.
    pub p99_response_s: f64,
    /// Mean time spent queued before service, seconds.
    pub mean_queue_wait_s: f64,
    /// Mean served batch size.
    pub mean_batch: f64,
    /// Largest served batch.
    pub max_batch: u32,
    /// Served query count per model (models never selected omitted).
    pub per_model: Vec<(String, u64)>,
    /// Per-window timeline (empty unless timeline collection was
    /// enabled via [`crate::SimulationConfig`]).
    pub timeline: Vec<TimelineBucket>,
    /// Mean fraction of worker-time spent serving (busy time divided by
    /// `workers · horizon`) — for an M/D/1-style fixed-model run this is
    /// exactly the offered utilization ρ.
    pub mean_utilization: f64,
    /// Simulated time horizon, seconds.
    pub horizon_s: f64,
    /// Load-monitor divergence summary (`None` unless the run's
    /// estimator reports divergence).
    pub divergence: Option<DivergenceStats>,
    /// Adaptive-runtime accounting (`None` for non-adaptive schemes).
    pub adaptive: Option<AdaptiveStats>,
    /// Fault-injection accounting (all zeros for a fault-free run).
    pub faults: FaultStats,
    /// Request-level resilience accounting (all zeros with the default
    /// disabled [`crate::ResiliencePolicy`]).
    pub resilience: ResilienceStats,
    /// Elastic-capacity accounting (`None` when autoscaling is
    /// disabled, keeping the report byte-identical to a fixed pool).
    pub autoscale: Option<crate::autoscale::AutoscaleStats>,
    /// Perceived-health accounting (`None` when the failure detector is
    /// disabled, keeping the report byte-identical to the oracle
    /// engine).
    pub health: Option<HealthStats>,
}

impl Serialize for SimulationReport {
    fn to_value(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("scheme".into(), self.scheme.to_value()),
            ("total_arrivals".into(), self.total_arrivals.to_value()),
            ("served".into(), self.served.to_value()),
            ("dropped".into(), self.dropped.to_value()),
            ("violations".into(), self.violations.to_value()),
            ("violation_rate".into(), self.violation_rate.to_value()),
            (
                "accuracy_per_satisfied_query".into(),
                self.accuracy_per_satisfied_query.to_value(),
            ),
            ("mean_response_s".into(), self.mean_response_s.to_value()),
            ("p50_response_s".into(), self.p50_response_s.to_value()),
            ("p95_response_s".into(), self.p95_response_s.to_value()),
            ("p99_response_s".into(), self.p99_response_s.to_value()),
            (
                "mean_queue_wait_s".into(),
                self.mean_queue_wait_s.to_value(),
            ),
            ("mean_batch".into(), self.mean_batch.to_value()),
            ("max_batch".into(), self.max_batch.to_value()),
            ("per_model".into(), self.per_model.to_value()),
            ("timeline".into(), self.timeline.to_value()),
            ("mean_utilization".into(), self.mean_utilization.to_value()),
            ("horizon_s".into(), self.horizon_s.to_value()),
            ("divergence".into(), self.divergence.to_value()),
            ("adaptive".into(), self.adaptive.to_value()),
            ("faults".into(), self.faults.to_value()),
            ("resilience".into(), self.resilience.to_value()),
        ];
        if self.autoscale.is_some() {
            fields.push(("autoscale".into(), self.autoscale.to_value()));
        }
        if self.health.is_some() {
            fields.push(("health".into(), self.health.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for SimulationReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if !matches!(v, serde::Value::Object(_)) {
            return Err(serde::DeError::expected("struct SimulationReport", v));
        }
        fn req<'a>(v: &'a serde::Value, name: &str) -> Result<&'a serde::Value, serde::DeError> {
            v.field(name)
                .ok_or_else(|| serde::DeError::missing_field("SimulationReport", name))
        }
        Ok(Self {
            scheme: Deserialize::from_value(req(v, "scheme")?)?,
            total_arrivals: Deserialize::from_value(req(v, "total_arrivals")?)?,
            served: Deserialize::from_value(req(v, "served")?)?,
            dropped: Deserialize::from_value(req(v, "dropped")?)?,
            violations: Deserialize::from_value(req(v, "violations")?)?,
            violation_rate: Deserialize::from_value(req(v, "violation_rate")?)?,
            accuracy_per_satisfied_query: Deserialize::from_value(req(
                v,
                "accuracy_per_satisfied_query",
            )?)?,
            mean_response_s: Deserialize::from_value(req(v, "mean_response_s")?)?,
            p50_response_s: Deserialize::from_value(req(v, "p50_response_s")?)?,
            p95_response_s: Deserialize::from_value(req(v, "p95_response_s")?)?,
            p99_response_s: Deserialize::from_value(req(v, "p99_response_s")?)?,
            mean_queue_wait_s: Deserialize::from_value(req(v, "mean_queue_wait_s")?)?,
            mean_batch: Deserialize::from_value(req(v, "mean_batch")?)?,
            max_batch: Deserialize::from_value(req(v, "max_batch")?)?,
            per_model: Deserialize::from_value(req(v, "per_model")?)?,
            timeline: Deserialize::from_value(req(v, "timeline")?)?,
            mean_utilization: Deserialize::from_value(req(v, "mean_utilization")?)?,
            horizon_s: Deserialize::from_value(req(v, "horizon_s")?)?,
            divergence: Deserialize::from_value(req(v, "divergence")?)?,
            adaptive: Deserialize::from_value(req(v, "adaptive")?)?,
            faults: Deserialize::from_value(req(v, "faults")?)?,
            resilience: Deserialize::from_value(req(v, "resilience")?)?,
            // Absent on every pre-elasticity report: default to None.
            autoscale: match v.field("autoscale") {
                Some(val) => Deserialize::from_value(val)?,
                None => None,
            },
            // Absent on every oracle-membership report: default to None.
            health: match v.field("health") {
                Some(val) => Deserialize::from_value(val)?,
                None => None,
            },
        })
    }
}

impl SimulationReport {
    /// Fraction of all arrivals that were shed without service.
    pub fn loss_rate(&self) -> f64 {
        if self.total_arrivals > 0 {
            self.dropped as f64 / self.total_arrivals as f64
        } else {
            0.0
        }
    }

    /// Fraction of all arrivals that either missed their deadline or
    /// were shed — the strictest quality-of-service measure.
    pub fn miss_or_loss_rate(&self) -> f64 {
        if self.total_arrivals > 0 {
            (self.dropped + self.violations) as f64 / self.total_arrivals as f64
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn batch_recording_splits_satisfied_and_violated() {
        let p = profile();
        let mut c = MetricsCollector::new();
        let m = p.fastest_model();
        let slo = 150_000_000;
        // Two queries: one meets its deadline, one missed it.
        let q_ok = Query::new(0, 0, slo);
        let q_late = Query::new(1, 0, slo);
        c.record_batch(&p, m, &[q_ok], 10_000_000, 100_000_000);
        c.record_batch(&p, m, &[q_late], 10_000_000, 200_000_000);
        let r = c.report("test".into(), 2, 200_000_000, 1);
        assert_eq!(r.served, 2);
        assert_eq!(r.violations, 1);
        assert!((r.violation_rate - 0.5).abs() < 1e-12);
        assert!((r.accuracy_per_satisfied_query - p.accuracy(m)).abs() < 1e-12);
        assert_eq!(r.per_model.len(), 1);
        assert_eq!(r.per_model[0].1, 2);
        assert!((r.mean_batch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_reports_zeros() {
        let _p = profile();
        let c = MetricsCollector::new();
        let r = c.report("idle".into(), 0, 1_000, 1);
        assert_eq!(r.served, 0);
        assert_eq!(r.violation_rate, 0.0);
        assert_eq!(r.accuracy_per_satisfied_query, 0.0);
        assert!(r.per_model.is_empty());
    }

    #[test]
    fn response_percentiles_ordered() {
        let p = profile();
        let mut c = MetricsCollector::new();
        let m = p.fastest_model();
        for i in 0..100u64 {
            let q = Query::new(i, 0, 1_000_000_000);
            c.record_batch(&p, m, &[q], 0, (i + 1) * 1_000_000);
        }
        let r = c.report("test".into(), 100, 100_000_000, 1);
        assert!(r.p50_response_s <= r.p95_response_s);
        assert!(r.p95_response_s <= r.p99_response_s);
        assert!(r.mean_response_s > 0.0);
    }

    #[test]
    fn timeline_buckets_aggregate_by_completion_window() {
        let p = profile();
        let mut c = MetricsCollector::new().with_timeline(1.0);
        let m = p.fastest_model();
        let slo = 150_000_000;
        // Completions at 0.5 s (on time) and 2.5 s (late).
        c.record_batch(
            &p,
            m,
            &[Query::new(0, 400_000_000, slo)],
            450_000_000,
            500_000_000,
        );
        c.record_batch(&p, m, &[Query::new(1, 0, slo)], 0, 2_500_000_000);
        let r = c.report("test".into(), 2, 2_500_000_000, 1);
        assert_eq!(r.timeline.len(), 3);
        assert_eq!(r.timeline[0].served, 1);
        assert_eq!(r.timeline[0].violations, 0);
        assert!((r.timeline[0].accuracy.unwrap() - p.accuracy(m)).abs() < 1e-9);
        assert_eq!(r.timeline[1].served, 0);
        assert_eq!(r.timeline[2].served, 1);
        assert_eq!(r.timeline[2].violations, 1);
        assert_eq!(r.timeline[2].accuracy, None);
        // Totals agree with the timeline sums.
        let tl_served: u64 = r.timeline.iter().map(|b| b.served).sum();
        assert_eq!(tl_served, r.served);
    }

    #[test]
    fn timeline_disabled_by_default() {
        let p = profile();
        let mut c = MetricsCollector::new();
        let m = p.fastest_model();
        c.record_batch(&p, m, &[Query::new(0, 0, 1_000_000)], 0, 1_000);
        let r = c.report("test".into(), 1, 1_000, 1);
        assert!(r.timeline.is_empty());
    }

    #[test]
    #[should_panic(expected = "timeline window must be positive")]
    fn timeline_rejects_bad_window() {
        let _ = MetricsCollector::new().with_timeline(0.0);
    }

    #[test]
    fn zero_arrival_run_reports_zero_rates() {
        // A fault plan can crash every worker at t = 0 so that nothing
        // arrives or completes; every rate must be defined as 0, never
        // NaN from a 0/0.
        let c = MetricsCollector::new();
        let r = c.report("all-crashed".into(), 0, 0, 4);
        assert_eq!(r.loss_rate(), 0.0);
        assert_eq!(r.miss_or_loss_rate(), 0.0);
        assert_eq!(r.violation_rate, 0.0);
        assert_eq!(r.faults, FaultStats::default());
        assert_eq!(r.faults.violation_rate_in_fault(), 0.0);
        assert_eq!(r.faults.violation_rate_outside_fault(), 0.0);
        assert!(!r.loss_rate().is_nan() && !r.miss_or_loss_rate().is_nan());
    }

    #[test]
    fn fault_window_accounting_splits_completions() {
        let p = profile();
        let mut c = MetricsCollector::new().with_fault_windows(vec![(1.0, 2.0)]);
        let m = p.fastest_model();
        let slo = 150_000_000;
        // One on-time completion inside the window, one late outside.
        c.record_batch(
            &p,
            m,
            &[Query::new(0, 1_400_000_000, slo)],
            1_450_000_000,
            1_500_000_000,
        );
        c.record_batch(
            &p,
            m,
            &[Query::new(1, 2_500_000_000, slo)],
            2_500_000_000,
            3_000_000_000,
        );
        c.record_crash_requeued(3);
        c.record_downtime_s(7.25);
        let r = c.report("test".into(), 2, 3_000_000_000, 1);
        assert_eq!(r.faults.served_in_fault, 1);
        assert_eq!(r.faults.violations_in_fault, 0);
        assert_eq!(r.faults.served_outside_fault, 1);
        assert_eq!(r.faults.violations_outside_fault, 1);
        assert_eq!(r.faults.crash_requeued, 3);
        assert_eq!(r.faults.crash_dropped, 0);
        assert!((r.faults.downtime_s - 7.25).abs() < 1e-12);
        assert_eq!(r.faults.violation_rate_in_fault(), 0.0);
        assert_eq!(r.faults.violation_rate_outside_fault(), 1.0);
    }

    #[test]
    fn crash_dropped_counts_into_dropped() {
        let mut c = MetricsCollector::new();
        let qs = [Query::new(0, 0, 1_000), Query::new(1, 0, 1_000)];
        c.record_crash_dropped(&qs);
        let r = c.report("test".into(), 2, 1_000, 1);
        assert_eq!(r.dropped, 2);
        assert_eq!(r.faults.crash_dropped, 2);
        assert_eq!(r.loss_rate(), 1.0);
        assert_eq!(r.miss_or_loss_rate(), 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let _p = profile();
        let c = MetricsCollector::new();
        let r = c.report("test".into(), 0, 0, 1);
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<SimulationReport>(&json).unwrap(), r);
    }

    #[test]
    fn resilience_recording_folds_into_dropped_and_utilization() {
        let mut c = MetricsCollector::new();
        let q = Query::new(0, 0, 1_000_000);
        // A timed-out batch holds its worker for the elapsed span.
        c.record_timeout(&[q, Query::new(1, 0, 1_000_000)], 0, 500);
        c.record_retry();
        c.record_retry_dropped(&[q], 1);
        c.record_hedge_issued();
        c.record_hedge_cancelled(100, 400);
        c.record_hedge_win();
        c.record_admission_shed(&[Query::new(2, 0, 1_000_000)]);
        let r = c.report("test".into(), 3, 1_000, 1);
        assert_eq!(
            r.resilience,
            ResilienceStats {
                timeouts: 2,
                retries: 1,
                retry_dropped: 1,
                retry_budget_denied: 1,
                hedges_issued: 1,
                hedges_cancelled: 1,
                hedge_wins: 1,
                admission_shed: 1,
            }
        );
        // retry_dropped + admission_shed both land in `dropped`.
        assert_eq!(r.dropped, 2);
        // Wasted spans (500 + 300 ns) count toward utilization.
        assert!((r.mean_utilization - 800.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn default_resilience_stats_are_zero() {
        let c = MetricsCollector::new();
        let r = c.report("test".into(), 0, 0, 1);
        assert_eq!(r.resilience, ResilienceStats::default());
    }
}
