//! Perceived health: failure detection without oracle knowledge
//! (DESIGN.md §14).
//!
//! Every earlier layer reacts to faults with oracle knowledge — the
//! engine tells the scheme about a crash at the exact crash instant.
//! Real serving systems only see health through delayed, noisy
//! signals. This module models that gap deterministically:
//!
//! - A **heartbeat/probe model**: the engine probes every candidate
//!   worker on a fixed interval ([`HealthPolicy::probe_interval_s`]);
//!   a probe to a dead (or heartbeat-partitioned) worker goes
//!   unanswered after [`HealthPolicy::probe_timeout_s`].
//! - A **phi-accrual-style failure detector**: suspicion level
//!   `phi = (elapsed_since_last_ack / mean_ack_gap) · log10(e)` grows
//!   with silence; crossing [`HealthPolicy::phi_threshold`] ejects the
//!   worker from *perceived* membership. Acks come from both answered
//!   probes and observed batch completions, and the mean gap is an
//!   EWMA clamped into `[interval/4, interval]` so the detection bound
//!   stays provable.
//! - A **per-worker circuit breaker**
//!   (`Closed → Open → HalfOpen → Closed`): a suspected worker's
//!   breaker opens; after [`HealthPolicy::open_backoff_s`] it half-opens
//!   and admits trial probes; [`HealthPolicy::close_probes`] consecutive
//!   successes close it (reinstating the worker), one failure re-opens
//!   it. Closing is *probe-gated*: completions never close a breaker.
//! - **EWMA service-time outlier ejection** for gray failures: each
//!   completion's service time is normalized by the profile's expected
//!   latency for that model and batch; a worker whose normalized ratio
//!   exceeds [`HealthPolicy::outlier_factor`] × the fleet EWMA for
//!   [`HealthPolicy::outlier_strikes`] consecutive batches is ejected
//!   even though it still answers probes. Batch errors count as
//!   strikes too.
//!
//! The monitor is *blind*: nothing the engine tells it about ground
//! truth influences a decision. Ground truth (`down_since`) is passed
//! in purely for scoring — stamping each suspicion as genuine or false
//! and measuring detection lag — so detection quality is measurable
//! without ever informing it.
//!
//! Everything is pure arithmetic over deterministic inputs (simulated
//! time, seeded service times) — no RNG, no wall clock — and with
//! [`HealthPolicy::enabled`] false the engine schedules no probe ticks
//! at all and takes exactly its oracle paths.

use serde::{Deserialize, Serialize};

use crate::metrics::HealthStats;
use crate::SimError;

/// Simulation time in integer nanoseconds (mirrors the engine clock).
pub type Nanos = u64;

const NANOS_PER_SEC: f64 = 1e9;

/// Circuit-breaker state of one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: traffic flows, failures accumulate suspicion.
    Closed,
    /// Tripped: no traffic; waits out the backoff.
    Open,
    /// Trial: no traffic yet, but probe successes count toward close.
    HalfOpen,
}

impl BreakerState {
    /// Short lowercase label for logs and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Closed => "closed",
            Self::Open => "open",
            Self::HalfOpen => "half-open",
        }
    }
}

/// Perceived-health configuration, hanging off
/// [`crate::SimulationConfig::health`]. The default disables the whole
/// subsystem and reproduces the oracle engine bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Master switch; `false` (default) schedules no probe ticks and
    /// leaves membership knowledge oracular.
    pub enabled: bool,
    /// Heartbeat/probe period, seconds. Every candidate worker is
    /// probed once per tick.
    pub probe_interval_s: f64,
    /// Grace before silence can raise suspicion: a worker is never
    /// suspected less than this long after its last ack.
    pub probe_timeout_s: f64,
    /// Phi-accrual suspicion threshold. Suspicion fires when
    /// `(elapsed / mean_gap) · log10(e)` reaches it; 1.0 roughly means
    /// "a healthy worker would be this silent one time in ten".
    pub phi_threshold: f64,
    /// EWMA weight for both the ack-gap mean and the fleet service-time
    /// ratio, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Outlier ejection: a completion whose profile-normalized service
    /// ratio exceeds this multiple of the fleet EWMA is a strike.
    pub outlier_factor: f64,
    /// Consecutive strikes (outlier completions or batch errors) that
    /// eject a worker.
    pub outlier_strikes: u32,
    /// Consecutive half-open probe successes required to close the
    /// breaker and reinstate the worker.
    pub close_probes: u32,
    /// Seconds an open breaker waits before admitting trial probes.
    pub open_backoff_s: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            enabled: false,
            probe_interval_s: 0.02,
            probe_timeout_s: 0.01,
            phi_threshold: 1.0,
            ewma_alpha: 0.1,
            outlier_factor: 3.0,
            outlier_strikes: 3,
            close_probes: 2,
            open_backoff_s: 0.1,
        }
    }
}

impl HealthPolicy {
    /// An enabled policy probing at `probe_interval_s` with the default
    /// detector knobs — the one-liner used by benches, the CLI, and
    /// chaos.
    pub fn probing(probe_interval_s: f64) -> Self {
        Self {
            enabled: true,
            probe_interval_s,
            probe_timeout_s: probe_interval_s / 2.0,
            ..Self::default()
        }
    }

    /// Checks the knobs of an *enabled* policy: positive finite probe
    /// interval, timeout, threshold and outlier factor, an EWMA weight
    /// in `(0, 1]`, non-zero strike and close-probe counts, and a
    /// non-negative finite backoff. A disabled policy is always valid
    /// (its knobs are never read).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.enabled {
            return Ok(());
        }
        let bad = |msg: String| Err(SimError::InvalidConfig(msg));
        let pos = |what: &str, v: f64| -> Result<(), SimError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "health: {what} must be positive and finite, got {v}"
                )));
            }
            Ok(())
        };
        pos("probe_interval_s", self.probe_interval_s)?;
        pos("probe_timeout_s", self.probe_timeout_s)?;
        pos("phi_threshold", self.phi_threshold)?;
        pos("outlier_factor", self.outlier_factor)?;
        if !self.ewma_alpha.is_finite() || self.ewma_alpha <= 0.0 || self.ewma_alpha > 1.0 {
            return bad(format!(
                "health: ewma_alpha must be in (0, 1], got {}",
                self.ewma_alpha
            ));
        }
        if self.outlier_strikes == 0 {
            return bad("health: outlier_strikes must be at least 1".to_string());
        }
        if self.close_probes == 0 {
            return bad("health: close_probes must be at least 1".to_string());
        }
        if !self.open_backoff_s.is_finite() || self.open_backoff_s < 0.0 {
            return bad(format!(
                "health: open_backoff_s must be non-negative and finite, got {}",
                self.open_backoff_s
            ));
        }
        Ok(())
    }

    /// The provable detection bound: a worker that stops answering is
    /// suspected within this many seconds of its failure instant
    /// (while probe ticks keep firing).
    ///
    /// Proof sketch: the last ack is at or before the failure, the mean
    /// gap is clamped to at most one probe interval, so phi reaches the
    /// threshold once silence spans
    /// `max(probe_timeout, threshold · ln 10 · interval)`; the next
    /// probe tick lands within one more interval. The bound adds the
    /// two maxima plus two intervals of tick-alignment slack.
    pub fn detection_bound_s(&self) -> f64 {
        self.probe_timeout_s
            + self.phi_threshold * core::f64::consts::LN_10 * self.probe_interval_s
            + 2.0 * self.probe_interval_s
    }

    /// The provable reinstatement bound: a suspected worker that
    /// answers every probe is reinstated within this many seconds of
    /// its suspicion (while probe ticks keep firing): the breaker
    /// half-opens within `open_backoff + interval`, then
    /// `close_probes` consecutive successes close it, plus two
    /// intervals of tick-alignment slack.
    pub fn reinstate_bound_s(&self) -> f64 {
        self.open_backoff_s + (f64::from(self.close_probes) + 3.0) * self.probe_interval_s
    }
}

/// Detector state of one worker (serializable for checkpoints).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerHealth {
    /// Time of the last liveness ack (answered probe, completion, or
    /// error reply).
    pub last_ack: Nanos,
    /// EWMA of ack gaps, nanoseconds, clamped into
    /// `[interval/4, interval]`.
    pub mean_gap_ns: f64,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
    /// When the breaker last opened (meaningful while not Closed).
    pub opened_at: Nanos,
    /// Consecutive half-open probe successes so far.
    pub half_open_successes: u32,
    /// Consecutive outlier/error strikes.
    pub strikes: u32,
    /// Whether the worker is ejected from perceived membership.
    pub suspected: bool,
    /// When the current suspicion started (meaningful while suspected).
    pub suspected_since: Nanos,
    /// Whether the current suspicion was genuine (scoring only).
    pub suspect_was_genuine: bool,
}

/// Checkpointable snapshot of a [`HealthMonitor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthState {
    /// Per-worker detector state.
    pub workers: Vec<WorkerHealth>,
    /// Fleet EWMA of profile-normalized service ratios.
    pub fleet_ratio: f64,
    /// Accumulated outcome statistics.
    pub stats: HealthStats,
}

/// Scoring metadata of one suspicion, stamped from ground truth by the
/// engine at the suspicion instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspectInfo {
    /// True when the worker really was down at the suspicion instant.
    pub genuine: bool,
    /// Detection lag behind the actual failure (0 for false
    /// suspicions).
    pub lag_ns: Nanos,
}

/// What one probe did to the detector (beyond a possible
/// Open → HalfOpen move, reported separately in
/// [`ProbeOutcome::half_opened`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStep {
    /// Answered; nothing changed.
    Ok,
    /// Unanswered; suspicion below threshold (or breaker already
    /// Open inside its backoff).
    Failed,
    /// Unanswered and phi crossed: the worker is newly suspected
    /// (breaker Closed → Open).
    Suspected(SuspectInfo),
    /// Unanswered while HalfOpen: the breaker re-opened.
    ReOpened,
    /// Answered while HalfOpen, but more successes are needed.
    TrialProgress,
    /// Answered enough half-open probes: breaker Closed, worker
    /// reinstated after being suspected this long.
    Reinstated {
        /// How long the worker spent suspected.
        suspected_ns: Nanos,
    },
}

/// The outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The breaker moved Open → HalfOpen on this probe (emit
    /// `BreakerHalfOpen` before the step's own events).
    pub half_opened: bool,
    /// What the probe's answer (or silence) did.
    pub step: ProbeStep,
}

/// The failure detector: per-worker phi-accrual state, circuit
/// breakers, and fleet-normalized outlier ejection. Driven by the
/// engine's probe ticks and completion observations.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    workers: Vec<WorkerHealth>,
    fleet_ratio: f64,
    /// Outcome statistics, accumulated here and finalized into the
    /// report. The engine adds its own attribution (requeues).
    pub stats: HealthStats,
}

impl HealthMonitor {
    /// A monitor over `workers` slots, all healthy, with acks anchored
    /// at `start`.
    pub fn new(policy: HealthPolicy, workers: usize, start: Nanos) -> Self {
        let interval = policy.probe_interval_s * NANOS_PER_SEC;
        Self {
            policy,
            workers: vec![
                WorkerHealth {
                    last_ack: start,
                    mean_gap_ns: interval,
                    breaker: BreakerState::Closed,
                    opened_at: 0,
                    half_open_successes: 0,
                    strikes: 0,
                    suspected: false,
                    suspected_since: 0,
                    suspect_was_genuine: false,
                };
                workers
            ],
            fleet_ratio: 1.0,
            stats: HealthStats::default(),
        }
    }

    /// The policy driving this monitor.
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Whether worker `w` is currently ejected from perceived
    /// membership.
    pub fn suspected(&self, w: usize) -> bool {
        self.workers[w].suspected
    }

    /// Worker `w`'s breaker state.
    pub fn breaker(&self, w: usize) -> BreakerState {
        self.workers[w].breaker
    }

    /// Records a liveness ack and folds the gap into the clamped EWMA.
    fn ack(&mut self, w: usize, now: Nanos) {
        let interval = self.policy.probe_interval_s * NANOS_PER_SEC;
        let wh = &mut self.workers[w];
        let gap = now.saturating_sub(wh.last_ack) as f64;
        if gap > 0.0 {
            let mean = wh.mean_gap_ns + self.policy.ewma_alpha * (gap - wh.mean_gap_ns);
            wh.mean_gap_ns = mean.clamp(interval / 4.0, interval);
        }
        wh.last_ack = now;
    }

    /// Ejects worker `w`, opening its breaker. `down_since` is ground
    /// truth, used only to score the suspicion.
    fn suspect(&mut self, w: usize, now: Nanos, down_since: Option<Nanos>) -> SuspectInfo {
        let info = SuspectInfo {
            genuine: down_since.is_some(),
            lag_ns: down_since.map_or(0, |d| now.saturating_sub(d)),
        };
        let wh = &mut self.workers[w];
        wh.suspected = true;
        wh.suspected_since = now;
        wh.suspect_was_genuine = info.genuine;
        wh.breaker = BreakerState::Open;
        wh.opened_at = now;
        wh.half_open_successes = 0;
        wh.strikes = 0;
        self.stats.suspects += 1;
        self.stats.breaker_opens += 1;
        if info.genuine {
            self.stats.suspects_genuine += 1;
            let lag_s = info.lag_ns as f64 / NANOS_PER_SEC;
            self.stats.detection_lag_total_s += lag_s;
            if lag_s > self.stats.max_detection_lag_s {
                self.stats.max_detection_lag_s = lag_s;
            }
        } else {
            self.stats.suspects_false += 1;
        }
        info
    }

    /// Credits the time worker `w` spent suspected, ending `now`.
    fn credit_suspected_time(&mut self, w: usize, now: Nanos) {
        let wh = &self.workers[w];
        let spent = now.saturating_sub(wh.suspected_since) as f64 / NANOS_PER_SEC;
        self.stats.suspected_time_s += spent;
        if !wh.suspect_was_genuine {
            self.stats.false_suspected_time_s += spent;
        }
    }

    /// Feeds one probe of worker `w` at `now`. `responsive` is whether
    /// the probe is answered (the worker is up and not
    /// heartbeat-partitioned); `down_since` is ground truth for
    /// scoring only.
    pub fn probe(
        &mut self,
        w: usize,
        now: Nanos,
        responsive: bool,
        down_since: Option<Nanos>,
    ) -> ProbeOutcome {
        self.stats.probes_sent += 1;
        let backoff = (self.policy.open_backoff_s * NANOS_PER_SEC) as Nanos;
        let mut half_opened = false;
        if self.workers[w].suspected {
            // Open → HalfOpen once the backoff elapses; the probe's own
            // outcome then applies in the half-open state.
            let wh = &mut self.workers[w];
            if wh.breaker == BreakerState::Open && now >= wh.opened_at.saturating_add(backoff) {
                wh.breaker = BreakerState::HalfOpen;
                wh.half_open_successes = 0;
                half_opened = true;
                self.stats.breaker_half_opens += 1;
            }
            let step = if responsive {
                self.ack(w, now);
                let wh = &mut self.workers[w];
                if wh.breaker == BreakerState::HalfOpen {
                    wh.half_open_successes += 1;
                    if wh.half_open_successes >= self.policy.close_probes {
                        let suspected_ns = now.saturating_sub(wh.suspected_since);
                        wh.breaker = BreakerState::Closed;
                        wh.suspected = false;
                        wh.half_open_successes = 0;
                        self.stats.breaker_closes += 1;
                        self.stats.reinstates += 1;
                        self.credit_suspected_time(w, now);
                        ProbeStep::Reinstated { suspected_ns }
                    } else {
                        ProbeStep::TrialProgress
                    }
                } else {
                    // Answered inside the backoff: noted, no transition.
                    ProbeStep::Ok
                }
            } else {
                self.stats.probes_failed += 1;
                let wh = &mut self.workers[w];
                if wh.breaker == BreakerState::HalfOpen {
                    wh.breaker = BreakerState::Open;
                    wh.opened_at = now;
                    wh.half_open_successes = 0;
                    self.stats.breaker_opens += 1;
                    ProbeStep::ReOpened
                } else {
                    ProbeStep::Failed
                }
            };
            return ProbeOutcome { half_opened, step };
        }
        if responsive {
            self.ack(w, now);
            return ProbeOutcome {
                half_opened,
                step: ProbeStep::Ok,
            };
        }
        self.stats.probes_failed += 1;
        let timeout = (self.policy.probe_timeout_s * NANOS_PER_SEC) as Nanos;
        let wh = &self.workers[w];
        let elapsed = now.saturating_sub(wh.last_ack);
        let phi = elapsed as f64 / wh.mean_gap_ns * core::f64::consts::LOG10_E;
        if elapsed >= timeout && phi >= self.policy.phi_threshold {
            let info = self.suspect(w, now, down_since);
            return ProbeOutcome {
                half_opened,
                step: ProbeStep::Suspected(info),
            };
        }
        ProbeOutcome {
            half_opened,
            step: ProbeStep::Failed,
        }
    }

    /// Feeds one observed batch completion: `actual_ns` service time
    /// against the profile's `expected_ns` for that model and batch.
    /// Acts as a liveness ack, then runs outlier ejection; returns the
    /// suspicion it triggered, if any. Completions on a suspected
    /// worker ack but never count toward closing (probe-gated close).
    pub fn observe_completion(
        &mut self,
        w: usize,
        now: Nanos,
        actual_ns: Nanos,
        expected_ns: Nanos,
        down_since: Option<Nanos>,
    ) -> Option<SuspectInfo> {
        self.ack(w, now);
        if self.workers[w].suspected || expected_ns == 0 {
            return None;
        }
        let ratio = actual_ns as f64 / expected_ns as f64;
        let outlier = ratio > self.policy.outlier_factor * self.fleet_ratio;
        self.fleet_ratio += self.policy.ewma_alpha * (ratio - self.fleet_ratio);
        if outlier {
            self.stats.outlier_strikes += 1;
            self.workers[w].strikes += 1;
            if self.workers[w].strikes >= self.policy.outlier_strikes {
                return Some(self.suspect(w, now, down_since));
            }
        } else {
            self.workers[w].strikes = 0;
        }
        None
    }

    /// Feeds one observed batch error (the worker replied, but with a
    /// failure): a liveness ack and a strike. Returns the suspicion it
    /// triggered, if any.
    pub fn observe_error(
        &mut self,
        w: usize,
        now: Nanos,
        down_since: Option<Nanos>,
    ) -> Option<SuspectInfo> {
        self.ack(w, now);
        self.stats.batch_errors += 1;
        if self.workers[w].suspected {
            return None;
        }
        self.workers[w].strikes += 1;
        if self.workers[w].strikes >= self.policy.outlier_strikes {
            return Some(self.suspect(w, now, down_since));
        }
        None
    }

    /// Closes the books at the horizon: open suspicions are credited up
    /// to `horizon` and counted, means are computed.
    pub fn finalize(&mut self, horizon: Nanos) -> HealthStats {
        for w in 0..self.workers.len() {
            if self.workers[w].suspected {
                self.credit_suspected_time(w, horizon);
                self.stats.suspected_at_end += 1;
            }
        }
        let mut stats = self.stats;
        if stats.suspects_genuine > 0 {
            stats.mean_detection_lag_s =
                stats.detection_lag_total_s / stats.suspects_genuine as f64;
        }
        stats
    }

    /// Snapshot for checkpointing.
    pub fn snapshot(&self) -> HealthState {
        HealthState {
            workers: self.workers.clone(),
            fleet_ratio: self.fleet_ratio,
            stats: self.stats,
        }
    }

    /// Restores a snapshot taken with the same policy and worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on a worker-count mismatch.
    pub fn restore(&mut self, state: &HealthState) -> Result<(), SimError> {
        if state.workers.len() != self.workers.len() {
            return Err(SimError::InvalidConfig(format!(
                "health snapshot covers {} workers, engine has {}",
                state.workers.len(),
                self.workers.len()
            )));
        }
        self.workers = state.workers.clone();
        self.fleet_ratio = state.fleet_ratio;
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Nanos = 1_000_000;

    fn policy() -> HealthPolicy {
        HealthPolicy::probing(0.02)
    }

    /// Drives probe ticks from `from` while `alive(t)` decides
    /// responsiveness, returning every (time, outcome).
    fn drive(
        mon: &mut HealthMonitor,
        w: usize,
        from: Nanos,
        ticks: u32,
        alive: impl Fn(Nanos) -> bool,
        down_since: impl Fn(Nanos) -> Option<Nanos>,
    ) -> Vec<(Nanos, ProbeOutcome)> {
        let interval = 20 * MS;
        (0..u64::from(ticks))
            .map(|k| {
                let t = from + k * interval;
                (t, mon.probe(w, t, alive(t), down_since(t)))
            })
            .collect()
    }

    #[test]
    fn default_policy_is_disabled_and_valid() {
        let p = HealthPolicy::default();
        assert!(!p.enabled);
        assert!(p.validate().is_ok());
        assert!(HealthPolicy::probing(0.05).validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let mut p = policy();
        p.probe_interval_s = 0.0;
        assert!(p.validate().is_err(), "zero interval");
        p = policy();
        p.probe_timeout_s = f64::NAN;
        assert!(p.validate().is_err(), "NaN timeout");
        p = policy();
        p.phi_threshold = -1.0;
        assert!(p.validate().is_err(), "negative threshold");
        p = policy();
        p.ewma_alpha = 1.5;
        assert!(p.validate().is_err(), "alpha past 1");
        p = policy();
        p.outlier_strikes = 0;
        assert!(p.validate().is_err(), "zero strikes");
        p = policy();
        p.close_probes = 0;
        assert!(p.validate().is_err(), "zero close probes");
        p = policy();
        p.open_backoff_s = -0.1;
        assert!(p.validate().is_err(), "negative backoff");
        // Garbage behind the off switch never fails a run.
        p = HealthPolicy {
            enabled: false,
            probe_interval_s: f64::NAN,
            outlier_strikes: 0,
            ..HealthPolicy::default()
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn silence_is_suspected_within_the_provable_bound() {
        let p = policy();
        let mut mon = HealthMonitor::new(p, 1, 0);
        // Healthy for 10 ticks, then the worker dies at t = 200 ms.
        let dead_at = 200 * MS;
        let outcomes = drive(
            &mut mon,
            0,
            20 * MS,
            40,
            |t| t < dead_at,
            |t| (t >= dead_at).then_some(dead_at),
        );
        let suspected_at = outcomes
            .iter()
            .find_map(|(t, o)| matches!(o.step, ProbeStep::Suspected(_)).then_some(*t))
            .expect("a dead worker must be suspected");
        let bound_ns = (p.detection_bound_s() * 1e9) as Nanos;
        assert!(
            suspected_at - dead_at <= bound_ns,
            "detected {} ns after death, bound {} ns",
            suspected_at - dead_at,
            bound_ns
        );
        // The stamped lag agrees with the clock.
        let info = outcomes
            .iter()
            .find_map(|(_, o)| match o.step {
                ProbeStep::Suspected(i) => Some(i),
                _ => None,
            })
            .unwrap();
        assert!(info.genuine);
        assert_eq!(info.lag_ns, suspected_at - dead_at);
        assert!(mon.suspected(0));
        assert_eq!(mon.breaker(0), BreakerState::Open);
        assert_eq!(mon.stats.suspects_genuine, 1);
    }

    #[test]
    fn false_suspicion_reinstates_within_the_provable_bound() {
        // A heartbeat partition: probes drop while the worker is
        // actually fine. Suspicion must be stamped false, and once
        // probes flow again the breaker walks Open → HalfOpen →
        // Closed within the reinstatement bound.
        let p = policy();
        let mut mon = HealthMonitor::new(p, 1, 0);
        let heal_at = 300 * MS;
        let outcomes = drive(
            &mut mon,
            0,
            20 * MS,
            60,
            |t| t >= heal_at,
            |_| None, // ground truth: never down
        );
        let suspected = outcomes
            .iter()
            .find_map(|(t, o)| match o.step {
                ProbeStep::Suspected(i) => Some((*t, i)),
                _ => None,
            })
            .expect("partition must be suspected");
        assert!(!suspected.1.genuine);
        assert_eq!(suspected.1.lag_ns, 0);
        let reinstated_at = outcomes
            .iter()
            .find_map(|(t, o)| matches!(o.step, ProbeStep::Reinstated { .. }).then_some(*t))
            .expect("a healthy worker must be reinstated");
        // Reinstatement happens within the bound of the first
        // answered probe after healing.
        let first_ok = heal_at.max(suspected.0);
        let bound_ns = (p.reinstate_bound_s() * 1e9) as Nanos;
        assert!(
            reinstated_at - first_ok <= bound_ns,
            "reinstated {} ns after healing, bound {} ns",
            reinstated_at - first_ok,
            bound_ns
        );
        assert!(!mon.suspected(0));
        assert_eq!(mon.breaker(0), BreakerState::Closed);
        // The breaker walked through HalfOpen on the way back.
        assert!(outcomes.iter().any(|(_, o)| o.half_opened));
        assert_eq!(mon.stats.suspects_false, 1);
        assert_eq!(mon.stats.reinstates, 1);
        assert!(mon.stats.false_suspected_time_s > 0.0);
    }

    #[test]
    fn failed_trial_probe_reopens_the_breaker() {
        let p = policy();
        let mut mon = HealthMonitor::new(p, 1, 0);
        // Die, get suspected, stay dead through the first trial.
        let outcomes = drive(&mut mon, 0, 20 * MS, 40, |_| false, |_| Some(0));
        assert!(outcomes
            .iter()
            .any(|(_, o)| matches!(o.step, ProbeStep::Suspected(_))));
        let reopened = outcomes
            .iter()
            .filter(|(_, o)| matches!(o.step, ProbeStep::ReOpened))
            .count();
        assert!(reopened >= 1, "dead trials must re-open the breaker");
        // Every half-open was answered by a re-open; nothing closed.
        assert_eq!(mon.stats.breaker_half_opens as usize, reopened);
        assert_eq!(mon.stats.breaker_closes, 0);
        assert!(mon.suspected(0));
        // Pairing: opens = initial suspicion + one per re-open.
        assert_eq!(mon.stats.breaker_opens as usize, 1 + reopened);
    }

    #[test]
    fn outlier_completions_eject_after_strikes() {
        let p = policy();
        let mut mon = HealthMonitor::new(p, 2, 0);
        // Worker 1 keeps the fleet EWMA honest at ratio 1.0.
        for k in 0..20u64 {
            assert!(mon
                .observe_completion(1, k * MS, 10 * MS, 10 * MS, None)
                .is_none());
        }
        // Worker 0 serves 10× slower than profile: three consecutive
        // outliers eject it — stamped false (it is not down).
        assert!(mon
            .observe_completion(0, 30 * MS, 100 * MS, 10 * MS, None)
            .is_none());
        assert!(mon
            .observe_completion(0, 40 * MS, 100 * MS, 10 * MS, None)
            .is_none());
        let info = mon
            .observe_completion(0, 50 * MS, 100 * MS, 10 * MS, None)
            .expect("third strike ejects");
        assert!(!info.genuine);
        assert!(mon.suspected(0));
        assert!(!mon.suspected(1));
        assert_eq!(mon.stats.outlier_strikes, 3);
        // A normal completion resets the streak.
        let mut fresh = HealthMonitor::new(p, 1, 0);
        assert!(fresh
            .observe_completion(0, MS, 100 * MS, 10 * MS, None)
            .is_none());
        assert!(fresh
            .observe_completion(0, 2 * MS, 10 * MS, 10 * MS, None)
            .is_none());
        assert!(fresh
            .observe_completion(0, 3 * MS, 100 * MS, 10 * MS, None)
            .is_none());
        assert!(
            fresh
                .observe_completion(0, 4 * MS, 100 * MS, 10 * MS, None)
                .is_none(),
            "streak was reset, two strikes are not enough"
        );
    }

    #[test]
    fn batch_errors_strike_toward_ejection() {
        let mut mon = HealthMonitor::new(policy(), 1, 0);
        assert!(mon.observe_error(0, 10 * MS, None).is_none());
        assert!(mon.observe_error(0, 20 * MS, None).is_none());
        assert!(mon.observe_error(0, 30 * MS, None).is_some());
        assert_eq!(mon.stats.batch_errors, 3);
        assert!(mon.suspected(0));
    }

    #[test]
    fn completions_never_close_a_breaker() {
        let mut mon = HealthMonitor::new(policy(), 1, 0);
        drive(&mut mon, 0, 20 * MS, 20, |_| false, |_| Some(0));
        assert!(mon.suspected(0));
        // An in-flight batch finishing on the suspected worker acks but
        // must not reinstate: close is probe-gated.
        for k in 0..50u64 {
            assert!(mon
                .observe_completion(0, 500 * MS + k * MS, 10 * MS, 10 * MS, None)
                .is_none());
        }
        assert!(mon.suspected(0));
        assert_eq!(mon.stats.reinstates, 0);
    }

    #[test]
    fn finalize_credits_open_suspicions_and_means() {
        let mut mon = HealthMonitor::new(policy(), 1, 0);
        drive(&mut mon, 0, 20 * MS, 20, |_| false, |_| Some(0));
        assert!(mon.suspected(0));
        let stats = mon.finalize(1_000 * MS);
        assert_eq!(stats.suspected_at_end, 1);
        assert!(stats.suspected_time_s > 0.0);
        assert!(stats.mean_detection_lag_s > 0.0);
        assert!(stats.max_detection_lag_s >= stats.mean_detection_lag_s);
    }

    #[test]
    fn snapshots_round_trip_through_serde() {
        let mut mon = HealthMonitor::new(policy(), 3, 0);
        drive(&mut mon, 1, 20 * MS, 15, |_| false, |_| Some(0));
        let snap = mon.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HealthState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let mut fresh = HealthMonitor::new(policy(), 3, 0);
        fresh.restore(&back).unwrap();
        assert_eq!(fresh.snapshot(), snap);
        assert!(fresh.suspected(1));
        // Mismatched shape is refused.
        let mut wrong = HealthMonitor::new(policy(), 2, 0);
        assert!(wrong.restore(&back).is_err());
    }
}
