//! Inference-latency realization (paper §7.3.1).
//!
//! The paper's simulation framework treats inference latency as
//! deterministically the profiled 95th percentile; its prototype
//! implementation experiences real variance (~10 ms std) and therefore
//! achieves slightly *better* accuracy and violation rates, because
//! invocations usually finish faster than their p95. Both modes are
//! reproduced here; Fig. 7 compares them.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;
use ramsis_stats::sampling::sample_truncated_normal;

/// How service times are realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LatencyMode {
    /// Deterministic at the profiled percentile — the paper's
    /// "simulation framework".
    DeterministicP95,
    /// Redraw every invocation from the latency model — the paper's
    /// "prototype implementation".
    Stochastic,
}

/// Stateful service-time sampler.
pub struct LatencySampler {
    mode: LatencyMode,
    rng: ChaCha8Rng,
}

impl LatencySampler {
    /// Creates a sampler; `seed` only matters in stochastic mode.
    pub fn new(mode: LatencyMode, seed: u64) -> Self {
        Self {
            mode,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// RNG stream position `(counter, index)` for checkpointing. Only
    /// meaningful together with the seed the sampler was created with.
    pub fn rng_state(&self) -> (u64, usize) {
        self.rng.state()
    }

    /// Restores a stream position captured by [`Self::rng_state`] on a
    /// sampler freshly created with the same mode and seed.
    pub fn restore_rng(&mut self, counter: u64, index: usize) {
        self.rng.restore(counter, index);
    }

    /// The realized service time (seconds) of running `batch` queries on
    /// `model`.
    ///
    /// Batches beyond the profiled range use the extrapolated profile
    /// (overflow service of a saturated queue).
    pub fn sample(&mut self, profile: &WorkerProfile, model: usize, batch: u32) -> f64 {
        match self.mode {
            LatencyMode::DeterministicP95 => profile.latency_extrapolated(model, batch),
            LatencyMode::Stochastic => {
                let spec = &profile.models[model].spec;
                let mean = spec.mean_latency(batch);
                sample_truncated_normal(
                    &mut self.rng,
                    mean,
                    spec.latency_std_s,
                    mean * 0.5,
                    mean + 6.0 * spec.latency_std_s,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn deterministic_is_p95() {
        let p = profile();
        let mut s = LatencySampler::new(LatencyMode::DeterministicP95, 0);
        let m = p.fastest_model();
        assert_eq!(s.sample(&p, m, 1), p.latency(m, 1).unwrap());
        assert_eq!(s.sample(&p, m, 1), s.sample(&p, m, 1));
    }

    #[test]
    fn stochastic_is_usually_below_p95() {
        let p = profile();
        let mut s = LatencySampler::new(LatencyMode::Stochastic, 7);
        let m = p.fastest_model();
        let p95 = p.latency(m, 1).unwrap();
        let below = (0..2_000).filter(|_| s.sample(&p, m, 1) < p95).count();
        // Roughly 95% of invocations beat the p95 profile latency
        // (loose bound: the profile's p95 is itself a noisy
        // 100-sample estimate).
        assert!(below > 1_700, "below={below}");
    }

    #[test]
    fn stochastic_mean_matches_model() {
        let p = profile();
        let mut s = LatencySampler::new(LatencyMode::Stochastic, 11);
        let m = p.fastest_model();
        let spec_mean = p.models[m].spec.mean_latency(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| s.sample(&p, m, 4)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - spec_mean).abs() < 0.001,
            "mean={mean} spec={spec_mean}"
        );
    }

    #[test]
    fn overflow_batches_extrapolate() {
        let p = profile();
        let mut s = LatencySampler::new(LatencyMode::DeterministicP95, 0);
        let m = p.fastest_model();
        let big = p.max_batch() + 10;
        let l = s.sample(&p, m, big);
        assert!(l > s.sample(&p, m, p.max_batch()));
    }
}
