//! The serving-scheme abstraction: how queries are routed and which
//! model serves them.
//!
//! An MS&S approach plugs into the simulator through [`ServingScheme`]:
//! it declares its *routing* structure (per-worker queues for RAMSIS,
//! the shared central queue for the eager baselines) and makes a
//! *selection* whenever a worker can serve. The RAMSIS online phase
//! (paper §3.2) is implemented here; the baselines live in
//! `ramsis-baselines`.

use ramsis_core::{Decision, DegradablePolicySet, FallbackPolicy, PolicyConfig, PolicySet};
use ramsis_profiles::WorkerProfile;
use ramsis_telemetry::{Event, ShedCause};

use crate::metrics::AdaptiveStats;
use crate::query::nanos_from_secs;

/// How arrivals reach workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Arrivals are assigned to per-worker queues immediately,
    /// round-robin (§3.2.1).
    PerWorkerRoundRobin,
    /// Arrivals are assigned to the shortest worker queue (appendix §I).
    PerWorkerShortestQueue,
    /// Arrivals stay in the central queue; idle workers pull batches
    /// eagerly (the baselines of §7).
    Central,
}

/// What a scheme sees when asked for a decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionContext {
    /// Simulation time, seconds.
    pub now_s: f64,
    /// The anticipated query load from the configured monitor, QPS.
    pub load_qps: f64,
    /// Queries visible to this worker (its queue, or the central queue).
    pub queued: usize,
    /// Slack of the earliest deadline among them, seconds (negative if
    /// already blown).
    pub earliest_slack_s: f64,
    /// Index of the worker asking.
    pub worker: usize,
    /// Number of currently live (non-crashed) workers; equals the
    /// cluster size in fault-free runs.
    pub live_workers: usize,
}

/// A scheme's answer when a worker can serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selection {
    /// Run `batch` earliest-deadline queries (`1..=ctx.queued`) on
    /// `model`.
    Serve {
        /// Catalog index of the selected model.
        model: usize,
        /// Number of queries to batch.
        batch: u32,
    },
    /// Discard `count` earliest-deadline queries without serving them
    /// (the [`ramsis_core::MissPolicy::Drop`] reformulation of §4.3.1).
    /// The engine immediately asks again for the remainder.
    Drop {
        /// Number of queries to discard (`1..=ctx.queued`).
        count: u32,
    },
    /// Leave the worker idle until the next event (an adaptive baseline
    /// might wait for a fuller batch; RAMSIS never idles a non-empty
    /// queue).
    Idle,
}

/// An MS&S approach, as seen by the simulator.
pub trait ServingScheme {
    /// Scheme name for reports (e.g. `"RAMSIS"`, `"ModelSwitching"`).
    fn name(&self) -> &str;

    /// The routing structure the scheme assumes.
    fn routing(&self) -> Routing;

    /// Decides what a worker with a non-empty visible queue does next.
    fn select(&mut self, ctx: &SelectionContext) -> Selection;

    /// Called by the engine when the live-worker count changes (a crash
    /// or recovery). Default is a no-op so fault-oblivious schemes —
    /// all the baselines — compile and run unchanged; degradation-aware
    /// schemes re-target their policies here.
    fn on_membership_change(&mut self, live_workers: usize) {
        let _ = live_workers;
    }

    /// Called by the engine on every query arrival. Default is a no-op;
    /// drift-aware schemes feed their detector here (separately from
    /// the load monitor, which every scheme shares).
    fn on_arrival(&mut self, now_s: f64) {
        let _ = now_s;
    }

    /// The traffic-regime label the scheme currently operates under, if
    /// it tracks one; the engine attributes completions to it in the
    /// report's per-regime breakdown. Default: `None` (non-adaptive).
    fn regime(&self) -> Option<&str> {
        None
    }

    /// Adaptive-runtime accounting for the report's
    /// [`crate::metrics::SimulationReport::adaptive`] field. Default:
    /// `None` (non-adaptive schemes leave the field empty).
    fn adaptive_stats(&self) -> Option<AdaptiveStats> {
        None
    }

    /// Called once at the start of a traced run: schemes that emit
    /// audit events ([`Event::RegimeSwap`], [`Event::LazySolve`],
    /// [`Event::FallbackEngaged`]) start buffering them when `enabled`.
    /// Default is a no-op so audit-oblivious schemes pay nothing.
    fn set_audit(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Moves buffered audit events into `out` (the engine drains after
    /// every scheme callback so events interleave with the lifecycle
    /// stream in simulation-time order). Default: nothing to drain.
    fn drain_audit(&mut self, out: &mut Vec<Event>) {
        let _ = out;
    }

    /// The cause of the most recent [`Selection::Drop`] this scheme
    /// returned. Default [`ShedCause::Policy`] — the §4.3.1 drop
    /// reformulation; shedding schemes report finer causes.
    fn shed_cause(&self) -> ShedCause {
        ShedCause::Policy
    }

    /// Whether the most recent [`Self::select`] was answered by a
    /// fallback path instead of a policy lookup — decision provenance
    /// stamps such records `ReasonCode::Fallback`. Default `false`
    /// (most schemes have no fallback tier).
    fn last_select_was_fallback(&self) -> bool {
        false
    }

    /// Serializable scheme state for checkpoint/resume. `None` (the
    /// default) declares the scheme unsupported: a run with
    /// checkpointing enabled refuses to start rather than silently
    /// writing unresumable snapshots. Schemes whose decisions are a
    /// pure function of configuration and context return
    /// `Some(Value::Null)`; stateful schemes serialize their mutable
    /// run state.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        None
    }

    /// Restores state captured by [`Self::checkpoint_state`] onto a
    /// freshly constructed scheme with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch between the state
    /// tree and this scheme.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let _ = state;
        Err(format!(
            "scheme `{}` does not support checkpoint restore",
            self.name()
        ))
    }
}

/// The RAMSIS online phase (§3.2): round-robin (or SQF) routing plus
/// per-worker model selection from the offline-generated policy set,
/// using "the lowest-load MS policy that meets the anticipated query
/// load".
pub struct RamsisScheme {
    policies: PolicySet,
    routing: Routing,
}

impl RamsisScheme {
    /// Creates the scheme with round-robin routing (the paper default).
    pub fn new(policies: PolicySet) -> Self {
        Self {
            policies,
            routing: Routing::PerWorkerRoundRobin,
        }
    }

    /// Creates the scheme with shortest-queue-first routing (§I); the
    /// policy set should have been generated with
    /// [`ramsis_core::Balancing::ShortestQueueFirst`].
    pub fn with_shortest_queue(policies: PolicySet) -> Self {
        Self {
            policies,
            routing: Routing::PerWorkerShortestQueue,
        }
    }

    /// The underlying policy set.
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }
}

impl ServingScheme for RamsisScheme {
    fn name(&self) -> &str {
        "RAMSIS"
    }

    fn routing(&self) -> Routing {
        self.routing
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let policy = self.policies.select(ctx.load_qps);
        match policy.decide(ctx.queued, ctx.earliest_slack_s) {
            Decision::Wait => Selection::Idle,
            Decision::Drop { count } => Selection::Drop {
                count: count.min(ctx.queued as u32).max(1),
            },
            Decision::Serve { model, batch } => Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            },
        }
    }

    /// Pure function of the policy set and context: nothing to capture.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

/// RAMSIS with on-demand policy generation (§3.2.2): "If that
/// anticipated load is higher than any pre-computed MS policy can
/// support, a new one is generated."
///
/// The pre-computed set handles covered loads; when the monitor
/// anticipates a load beyond the set's highest design load, a policy for
/// 120% of the anticipated load is generated synchronously and added
/// (the headroom keeps a creeping load from triggering a generation per
/// decision). In a real deployment generation would run on the central
/// controller off the critical path; in simulation it takes zero
/// simulated time, matching the paper's offline-generation accounting.
pub struct OnDemandRamsis {
    profile: WorkerProfile,
    config: PolicyConfig,
    policies: PolicySet,
    generated: usize,
}

impl OnDemandRamsis {
    /// Creates the scheme from an initial (possibly small) policy set.
    pub fn new(profile: &WorkerProfile, config: PolicyConfig, initial: PolicySet) -> Self {
        Self {
            profile: profile.clone(),
            config,
            policies: initial,
            generated: 0,
        }
    }

    /// How many policies were generated on demand so far.
    pub fn generated_on_demand(&self) -> usize {
        self.generated
    }

    /// The current policy set.
    pub fn policies(&self) -> &PolicySet {
        &self.policies
    }
}

impl ServingScheme for OnDemandRamsis {
    fn name(&self) -> &str {
        "RAMSIS-on-demand"
    }

    fn routing(&self) -> Routing {
        Routing::PerWorkerRoundRobin
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        if !self.policies.covers(ctx.load_qps) {
            let target = (ctx.load_qps * 1.2).max(1.0);
            if self
                .policies
                .extend_poisson(&self.profile, target, &self.config)
                .is_ok()
            {
                self.generated += 1;
            }
        }
        let policy = self.policies.select(ctx.load_qps);
        match policy.decide(ctx.queued, ctx.earliest_slack_s) {
            Decision::Wait => Selection::Idle,
            Decision::Drop { count } => Selection::Drop {
                count: count.min(ctx.queued as u32).max(1),
            },
            Decision::Serve { model, batch } => Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            },
        }
    }
}

/// Per-worker RAMSIS for heterogeneous clusters (§7: "Worker
/// homogeneity is not a fundamental requirement for RAMSIS since
/// policies are generated per worker"): each worker carries its own
/// policy set, generated against its own profile.
pub struct PerWorkerRamsis {
    sets: Vec<PolicySet>,
    routing: Routing,
}

impl PerWorkerRamsis {
    /// Creates the scheme with round-robin routing; `sets[w]` serves
    /// worker `w`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is empty.
    pub fn new(sets: Vec<PolicySet>) -> Self {
        assert!(!sets.is_empty(), "need at least one worker's policy set");
        Self {
            sets,
            routing: Routing::PerWorkerRoundRobin,
        }
    }

    /// Number of workers covered.
    pub fn workers(&self) -> usize {
        self.sets.len()
    }
}

impl ServingScheme for PerWorkerRamsis {
    fn name(&self) -> &str {
        "RAMSIS-hetero"
    }

    fn routing(&self) -> Routing {
        self.routing
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let set = &self.sets[ctx.worker % self.sets.len()];
        let policy = set.select(ctx.load_qps);
        match policy.decide(ctx.queued, ctx.earliest_slack_s) {
            Decision::Wait => Selection::Idle,
            Decision::Drop { count } => Selection::Drop {
                count: count.min(ctx.queued as u32).max(1),
            },
            Decision::Serve { model, batch } => Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            },
        }
    }

    /// Per-worker sets are configuration; decisions carry no state.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

/// RAMSIS with graceful degradation under worker crashes: a
/// [`DegradablePolicySet`] pre-solved for every live-worker count down
/// to a floor, plus a [`FallbackPolicy`] for anything below it or any
/// load beyond the set's design range.
///
/// On every [`ServingScheme::on_membership_change`] the scheme
/// re-targets the policy set matching the new live count (the engine
/// also passes `live_workers` in each context, so a missed notification
/// cannot leave it stale). When no pre-solved set applies — the cluster
/// shrank below `min_workers`, or the anticipated load exceeds every
/// design load — it serves the fallback: the fastest Pareto model at
/// the largest SLO-fitting batch, trading accuracy for availability
/// instead of letting queues build behind an over-optimistic policy.
pub struct DegradingRamsis {
    sets: DegradablePolicySet,
    fallback: FallbackPolicy,
    routing: Routing,
    live: usize,
    fallback_decisions: u64,
    /// Whether the most recent `select` was served by the fallback —
    /// transient provenance state, deliberately not checkpointed (it
    /// is rewritten before anyone reads it after a resume).
    last_fallback: bool,
    audit: bool,
    audit_buf: Vec<Event>,
}

impl DegradingRamsis {
    /// Creates the scheme with round-robin routing. `sets` should be
    /// generated by [`DegradablePolicySet::generate_poisson`] against
    /// the same profile as `fallback`.
    pub fn new(sets: DegradablePolicySet, fallback: FallbackPolicy) -> Self {
        let live = *sets.worker_counts().last().expect("set is never empty");
        Self {
            sets,
            fallback,
            routing: Routing::PerWorkerRoundRobin,
            live,
            fallback_decisions: 0,
            last_fallback: false,
            audit: false,
            audit_buf: Vec::new(),
        }
    }

    /// How many decisions were answered by the fallback policy.
    pub fn fallback_decisions(&self) -> u64 {
        self.fallback_decisions
    }

    /// The live-worker count the scheme currently targets.
    pub fn live_workers(&self) -> usize {
        self.live
    }
}

impl ServingScheme for DegradingRamsis {
    fn name(&self) -> &str {
        "RAMSIS-degrading"
    }

    fn routing(&self) -> Routing {
        self.routing
    }

    fn on_membership_change(&mut self, live_workers: usize) {
        self.live = live_workers;
    }

    fn set_audit(&mut self, enabled: bool) {
        self.audit = enabled;
    }

    fn drain_audit(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.audit_buf);
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        // Belt and braces: the context always carries the live count,
        // so even a scheme cloned mid-run cannot act on a stale one.
        self.live = ctx.live_workers;
        let set = self
            .sets
            .for_workers(self.live)
            .filter(|set| set.covers(ctx.load_qps));
        let Some(set) = set else {
            self.fallback_decisions += 1;
            self.last_fallback = true;
            if self.audit {
                self.audit_buf.push(Event::FallbackEngaged {
                    at: nanos_from_secs(ctx.now_s),
                    worker: ctx.worker as u32,
                });
            }
            let (model, batch) = self.fallback.decide(ctx.queued);
            return Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            };
        };
        self.last_fallback = false;
        let policy = set.select(ctx.load_qps);
        match policy.decide(ctx.queued, ctx.earliest_slack_s) {
            Decision::Wait => Selection::Idle,
            Decision::Drop { count } => Selection::Drop {
                count: count.min(ctx.queued as u32).max(1),
            },
            Decision::Serve { model, batch } => Selection::Serve {
                model,
                batch: batch.min(ctx.queued as u32),
            },
        }
    }

    fn last_select_was_fallback(&self) -> bool {
        self.last_fallback
    }

    /// Mutable run state: the targeted live count and the fallback
    /// counter. The audit buffer is always drained before a checkpoint
    /// can fire (the engine drains after every scheme callback), and
    /// the audit flag is re-armed by `set_audit` at resume start.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Object(vec![
            ("live".to_string(), serde::Value::U64(self.live as u64)),
            (
                "fallback_decisions".to_string(),
                serde::Value::U64(self.fallback_decisions),
            ),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        use serde::Deserialize;
        let field = |name: &str| {
            state
                .field(name)
                .ok_or_else(|| format!("DegradingRamsis state: missing `{name}`"))
        };
        self.live = usize::from_value(field("live")?).map_err(|e| e.to_string())?;
        self.fallback_decisions =
            u64::from_value(field("fallback_decisions")?).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_core::{Discretization, PolicyConfig};
    use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
    use std::time::Duration;

    fn scheme() -> RamsisScheme {
        let profile = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        );
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(8))
            .build();
        let set = PolicySet::generate_poisson(&profile, &[100.0, 800.0], &config).unwrap();
        RamsisScheme::new(set)
    }

    #[test]
    fn ramsis_scheme_serves_queued_queries() {
        let mut s = scheme();
        assert_eq!(s.name(), "RAMSIS");
        assert_eq!(s.routing(), Routing::PerWorkerRoundRobin);
        let ctx = SelectionContext {
            now_s: 1.0,
            load_qps: 90.0,
            queued: 3,
            earliest_slack_s: 0.14,
            worker: 0,
            live_workers: 4,
        };
        let Selection::Serve { model, batch } = s.select(&ctx) else {
            panic!("must serve");
        };
        assert!((1..=3).contains(&batch));
        assert!(model < 26);
    }

    #[test]
    fn load_switches_policy() {
        let mut s = scheme();
        // Low anticipated load picks the 100-QPS policy (more accurate
        // selections), high load the 800-QPS one.
        let low = SelectionContext {
            now_s: 1.0,
            load_qps: 50.0,
            queued: 1,
            earliest_slack_s: 0.15,
            worker: 0,
            live_workers: 4,
        };
        let high = SelectionContext {
            load_qps: 700.0,
            ..low
        };
        let Selection::Serve { model: m_low, .. } = s.select(&low) else {
            panic!("must serve");
        };
        let Selection::Serve { model: m_high, .. } = s.select(&high) else {
            panic!("must serve");
        };
        let profile = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        );
        assert!(
            profile.accuracy(m_low) >= profile.accuracy(m_high),
            "low-load selection should be at least as accurate"
        );
    }

    #[test]
    fn sqf_variant_reports_routing() {
        let s = RamsisScheme::with_shortest_queue(scheme().policies.clone());
        assert_eq!(s.routing(), Routing::PerWorkerShortestQueue);
    }

    #[test]
    fn degrading_scheme_switches_sets_and_falls_back() {
        let profile = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        );
        let config = PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(8))
            .build();
        let sets =
            ramsis_core::DegradablePolicySet::generate_poisson(&profile, &[100.0], &config, 3)
                .unwrap();
        let fallback = FallbackPolicy::fastest(&profile).unwrap();
        let mut s = DegradingRamsis::new(sets, fallback);
        assert_eq!(s.name(), "RAMSIS-degrading");
        assert_eq!(s.live_workers(), 4);

        let ctx = SelectionContext {
            now_s: 1.0,
            load_qps: 80.0,
            queued: 2,
            earliest_slack_s: 0.14,
            worker: 0,
            live_workers: 4,
        };
        // Covered load with a pre-solved set: no fallback.
        assert!(matches!(s.select(&ctx), Selection::Serve { .. }));
        assert_eq!(s.fallback_decisions(), 0);

        // Crash below the pre-solved floor (3): fallback serves the
        // fastest model.
        s.on_membership_change(2);
        assert_eq!(s.live_workers(), 2);
        let degraded = SelectionContext {
            live_workers: 2,
            ..ctx
        };
        let Selection::Serve { model, batch } = s.select(&degraded) else {
            panic!("fallback must serve");
        };
        assert_eq!(model, profile.fastest_model());
        assert!((1..=2).contains(&batch));
        assert_eq!(s.fallback_decisions(), 1);

        // Load beyond every design load also falls back.
        s.on_membership_change(4);
        let overloaded = SelectionContext {
            load_qps: 5_000.0,
            ..ctx
        };
        let Selection::Serve { model, .. } = s.select(&overloaded) else {
            panic!("fallback must serve");
        };
        assert_eq!(model, profile.fastest_model());
        assert_eq!(s.fallback_decisions(), 2);
    }
}
