//! Fault injection: deterministic, serializable fault plans.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s the engine plays
//! back alongside arrivals in its `(time, sequence)` heap: worker
//! crashes and recoveries, transient per-worker slowdowns, and
//! arrival surges (offered-load scaling over an interval). Plans are
//! plain data — same seeds plus the same plan reproduce a run
//! bit-for-bit — and serialize through serde so experiments can record
//! exactly what they injected.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Worker `worker` dies at `at_s`: its queued and in-flight queries
    /// are handled per the plan's [`CrashPolicy`], and routing skips it
    /// until it recovers.
    WorkerCrash { worker: usize, at_s: f64 },
    /// Worker `worker` rejoins at `at_s` with an empty queue.
    WorkerRecover { worker: usize, at_s: f64 },
    /// Worker `worker` serves every batch `factor`× slower during
    /// `[from_s, to_s)`. Batches already in flight at `from_s` finish
    /// at their original speed; the factor applies at dispatch time.
    WorkerSlowdown {
        worker: usize,
        from_s: f64,
        to_s: f64,
        factor: f64,
    },
    /// Offered load is scaled by `factor` during `[from_s, to_s)`.
    /// Applied to the trace before arrival sampling, so it only takes
    /// effect through [`crate::Simulation::run_faulted`] (explicit
    /// arrival arrays are replayed as given).
    ArrivalSurge { from_s: f64, to_s: f64, factor: f64 },
}

/// What happens to a crashed worker's queued and in-flight queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrashPolicy {
    /// Displaced queries are redistributed round-robin over the
    /// surviving workers (or returned to the head of the central
    /// queue under central routing). If no worker is live they wait
    /// in limbo for the first recovery.
    #[default]
    RequeueToSurvivors,
    /// Displaced queries are lost, counted as dropped.
    Drop,
}

/// A deterministic schedule of faults for one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected events, in any order (the engine sorts by time).
    pub events: Vec<FaultEvent>,
    /// Crash handling for queued and in-flight queries.
    pub crash_policy: CrashPolicy,
}

impl FaultPlan {
    /// An empty plan: the run behaves exactly like a fault-free one.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the crash policy.
    pub fn with_crash_policy(mut self, policy: CrashPolicy) -> Self {
        self.crash_policy = policy;
        self
    }

    /// Adds a crash of `worker` at `at_s`.
    pub fn crash(mut self, worker: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent::WorkerCrash { worker, at_s });
        self
    }

    /// Adds a recovery of `worker` at `at_s`.
    pub fn recover(mut self, worker: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent::WorkerRecover { worker, at_s });
        self
    }

    /// Adds a `factor`× slowdown of `worker` over `[from_s, to_s)`.
    pub fn slowdown(mut self, worker: usize, from_s: f64, to_s: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::WorkerSlowdown {
            worker,
            from_s,
            to_s,
            factor,
        });
        self
    }

    /// Adds a `factor`× arrival surge over `[from_s, to_s)`.
    pub fn surge(mut self, from_s: f64, to_s: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::ArrivalSurge {
            from_s,
            to_s,
            factor,
        });
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical robustness schedule used by the `robustness_faults`
    /// experiment: worker 0 crashes at 10 s and recovers at 40 s, worker
    /// 1 runs 2× slower over `[15 s, 35 s)`, and offered load surges 3×
    /// over `[20 s, 30 s)`.
    ///
    /// # Panics
    ///
    /// Panics if `workers < 2` (the schedule needs two distinct
    /// workers).
    pub fn canonical(workers: usize) -> Self {
        assert!(workers >= 2, "canonical fault plan needs >= 2 workers");
        Self::none()
            .crash(0, 10.0)
            .recover(0, 40.0)
            .slowdown(1, 15.0, 35.0, 2.0)
            .surge(20.0, 30.0, 3.0)
    }

    /// Checks the plan against a cluster of `workers` workers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for out-of-range worker
    /// indices, non-finite or negative times, inverted intervals, or
    /// non-positive factors.
    pub fn validate(&self, workers: usize) -> Result<(), SimError> {
        let err = |msg: String| Err(SimError::InvalidConfig(msg));
        let check_time = |what: &str, t: f64| -> Result<(), SimError> {
            if !t.is_finite() || t < 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan: {what} must be a non-negative finite time, got {t}"
                )));
            }
            Ok(())
        };
        let check_worker = |w: usize| -> Result<(), SimError> {
            if w >= workers {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan: worker {w} out of range for a {workers}-worker cluster"
                )));
            }
            Ok(())
        };
        for event in &self.events {
            match *event {
                FaultEvent::WorkerCrash { worker, at_s } => {
                    check_worker(worker)?;
                    check_time("crash time", at_s)?;
                }
                FaultEvent::WorkerRecover { worker, at_s } => {
                    check_worker(worker)?;
                    check_time("recovery time", at_s)?;
                }
                FaultEvent::WorkerSlowdown {
                    worker,
                    from_s,
                    to_s,
                    factor,
                } => {
                    check_worker(worker)?;
                    check_time("slowdown start", from_s)?;
                    check_time("slowdown end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: slowdown interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                    if !factor.is_finite() || factor <= 0.0 {
                        return err(format!(
                            "fault plan: slowdown factor must be positive, got {factor}"
                        ));
                    }
                }
                FaultEvent::ArrivalSurge {
                    from_s,
                    to_s,
                    factor,
                } => {
                    check_time("surge start", from_s)?;
                    check_time("surge end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: surge interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                    if !factor.is_finite() || factor <= 0.0 {
                        return err(format!(
                            "fault plan: surge factor must be positive, got {factor}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The arrival-surge intervals, `(from_s, to_s, factor)`.
    pub fn surges(&self) -> Vec<(f64, f64, f64)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ArrivalSurge {
                    from_s,
                    to_s,
                    factor,
                } => Some((from_s, to_s, factor)),
                _ => None,
            })
            .collect()
    }

    /// The union of all fault-affected time windows, merged and sorted:
    /// `[crash, recovery)` per worker (to the end of time for a crash
    /// with no recovery), plus every slowdown and surge interval. Used
    /// by the metrics layer to split violation accounting into
    /// inside/outside-fault-window rates.
    pub fn fault_windows(&self) -> Vec<(f64, f64)> {
        let mut raw: Vec<(f64, f64)> = Vec::new();
        // Pair each crash with its earliest later recovery per worker.
        let mut crashes: Vec<(usize, f64)> = Vec::new();
        let mut recoveries: Vec<(usize, f64)> = Vec::new();
        for event in &self.events {
            match *event {
                FaultEvent::WorkerCrash { worker, at_s } => crashes.push((worker, at_s)),
                FaultEvent::WorkerRecover { worker, at_s } => recoveries.push((worker, at_s)),
                FaultEvent::WorkerSlowdown { from_s, to_s, .. }
                | FaultEvent::ArrivalSurge { from_s, to_s, .. } => raw.push((from_s, to_s)),
            }
        }
        for &(w, crash_at) in &crashes {
            let recovery = recoveries
                .iter()
                .filter(|&&(rw, at)| rw == w && at > crash_at)
                .map(|&(_, at)| at)
                .fold(f64::INFINITY, f64::min);
            raw.push((crash_at, recovery));
        }
        raw.sort_by(|a, b| a.partial_cmp(b).expect("validated finite starts"));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (start, end) in raw {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_canonical() {
        let plan = FaultPlan::canonical(4);
        assert_eq!(plan.events.len(), 4);
        assert_eq!(plan.crash_policy, CrashPolicy::RequeueToSurvivors);
        assert!(plan.validate(4).is_ok());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::none().crash(4, 1.0).validate(4).is_err());
        assert!(FaultPlan::none().crash(0, -1.0).validate(4).is_err());
        assert!(FaultPlan::none().crash(0, f64::NAN).validate(4).is_err());
        assert!(FaultPlan::none()
            .slowdown(0, 5.0, 5.0, 2.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .slowdown(0, 5.0, 6.0, 0.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none().surge(3.0, 2.0, 2.0).validate(4).is_err());
        assert!(FaultPlan::none()
            .surge(1.0, 2.0, f64::INFINITY)
            .validate(4)
            .is_err());
        assert!(FaultPlan::canonical(4).validate(4).is_ok());
    }

    #[test]
    fn windows_merge_overlaps() {
        let plan = FaultPlan::canonical(4);
        // Crash [10, 40), slowdown [15, 35), surge [20, 30) all overlap
        // into a single [10, 40) window.
        assert_eq!(plan.fault_windows(), vec![(10.0, 40.0)]);

        let disjoint = FaultPlan::none()
            .slowdown(0, 1.0, 2.0, 2.0)
            .surge(5.0, 6.0, 2.0);
        assert_eq!(disjoint.fault_windows(), vec![(1.0, 2.0), (5.0, 6.0)]);
    }

    #[test]
    fn unrecovered_crash_window_is_open_ended() {
        let plan = FaultPlan::none().crash(2, 7.5);
        let windows = plan.fault_windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].0, 7.5);
        assert!(windows[0].1.is_infinite());
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::canonical(4).with_crash_policy(CrashPolicy::Drop);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn surges_are_extracted() {
        let plan = FaultPlan::canonical(4);
        assert_eq!(plan.surges(), vec![(20.0, 30.0, 3.0)]);
    }
}
