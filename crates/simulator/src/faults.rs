//! Fault injection: deterministic, serializable fault plans.
//!
//! A [`FaultPlan`] is a list of timed [`FaultEvent`]s the engine plays
//! back alongside arrivals in its `(time, sequence)` heap: worker
//! crashes and recoveries, transient per-worker slowdowns, and
//! arrival surges (offered-load scaling over an interval). Plans are
//! plain data — same seeds plus the same plan reproduce a run
//! bit-for-bit — and serialize through serde so experiments can record
//! exactly what they injected.
//!
//! Three *gray* modes exercise the perceived-health subsystem
//! (DESIGN.md §14) — failures the oracle membership path cannot even
//! express: [`FaultEvent::WorkerFlap`] (intermittent unresponsiveness,
//! a square wave of micro-outages), [`FaultEvent::WorkerErrorRate`]
//! (per-batch retriable failures on an otherwise live worker), and
//! [`FaultEvent::HeartbeatPartition`] (the worker serves traffic but
//! its health probes drop — a pure false-positive generator).

use serde::{Deserialize, Serialize};

use crate::SimError;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Worker `worker` dies at `at_s`: its queued and in-flight queries
    /// are handled per the plan's [`CrashPolicy`], and routing skips it
    /// until it recovers.
    WorkerCrash { worker: usize, at_s: f64 },
    /// Worker `worker` rejoins at `at_s` with an empty queue.
    WorkerRecover { worker: usize, at_s: f64 },
    /// Worker `worker` serves every batch `factor`× slower during
    /// `[from_s, to_s)`. Batches already in flight at `from_s` finish
    /// at their original speed; the factor applies at dispatch time.
    WorkerSlowdown {
        worker: usize,
        from_s: f64,
        to_s: f64,
        factor: f64,
    },
    /// Offered load is scaled by `factor` during `[from_s, to_s)`.
    /// Applied to the trace before arrival sampling, so it only takes
    /// effect through [`crate::Simulation::run_faulted`] (explicit
    /// arrival arrays are replayed as given).
    ArrivalSurge { from_s: f64, to_s: f64, factor: f64 },
    /// Worker `worker` flaps during `[from_s, to_s)`: a square wave of
    /// micro-outages with period `period_s` (down for the first half of
    /// each period, up for the second, clipped to the window end). The
    /// engine expands each flap into ordinary crash/recover actions, so
    /// queued work is displaced per the [`CrashPolicy`] on every down
    /// edge. Unlike a single crash, the oracle membership view tracks
    /// the flapping perfectly; a detector has to decide whether the
    /// worker is worth ejecting.
    WorkerFlap {
        worker: usize,
        from_s: f64,
        to_s: f64,
        period_s: f64,
    },
    /// Worker `worker` fails each batch it completes with probability
    /// `rate` during `[from_s, to_s)`. Failed batches are retriable:
    /// the queries are requeued (never dropped), the worker stays
    /// live, and only a health detector watching error strikes can
    /// tell it is gray.
    WorkerErrorRate {
        worker: usize,
        from_s: f64,
        to_s: f64,
        rate: f64,
    },
    /// Worker `worker` keeps serving traffic during `[from_s, to_s)`
    /// but its health probes drop — a heartbeat-only partition. With
    /// health disabled this event has no effect at all; with health
    /// enabled it manufactures false suspicion the detector must
    /// eventually undo.
    HeartbeatPartition {
        worker: usize,
        from_s: f64,
        to_s: f64,
    },
}

/// What happens to a crashed worker's queued and in-flight queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CrashPolicy {
    /// Displaced queries are redistributed round-robin over the
    /// surviving workers (or returned to the head of the central
    /// queue under central routing). If no worker is live they wait
    /// in limbo for the first recovery.
    #[default]
    RequeueToSurvivors,
    /// Displaced queries are lost, counted as dropped.
    Drop,
}

/// A deterministic schedule of faults for one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The injected events, in any order (the engine sorts by time).
    pub events: Vec<FaultEvent>,
    /// Crash handling for queued and in-flight queries.
    pub crash_policy: CrashPolicy,
}

impl FaultPlan {
    /// An empty plan: the run behaves exactly like a fault-free one.
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the crash policy.
    pub fn with_crash_policy(mut self, policy: CrashPolicy) -> Self {
        self.crash_policy = policy;
        self
    }

    /// Adds a crash of `worker` at `at_s`.
    pub fn crash(mut self, worker: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent::WorkerCrash { worker, at_s });
        self
    }

    /// Adds a recovery of `worker` at `at_s`.
    pub fn recover(mut self, worker: usize, at_s: f64) -> Self {
        self.events.push(FaultEvent::WorkerRecover { worker, at_s });
        self
    }

    /// Adds a `factor`× slowdown of `worker` over `[from_s, to_s)`.
    pub fn slowdown(mut self, worker: usize, from_s: f64, to_s: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::WorkerSlowdown {
            worker,
            from_s,
            to_s,
            factor,
        });
        self
    }

    /// Adds a `factor`× arrival surge over `[from_s, to_s)`.
    pub fn surge(mut self, from_s: f64, to_s: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::ArrivalSurge {
            from_s,
            to_s,
            factor,
        });
        self
    }

    /// Adds a flap of `worker` over `[from_s, to_s)` with period
    /// `period_s`.
    pub fn flap(mut self, worker: usize, from_s: f64, to_s: f64, period_s: f64) -> Self {
        self.events.push(FaultEvent::WorkerFlap {
            worker,
            from_s,
            to_s,
            period_s,
        });
        self
    }

    /// Adds a per-batch error rate of `rate` on `worker` over
    /// `[from_s, to_s)`.
    pub fn error_rate(mut self, worker: usize, from_s: f64, to_s: f64, rate: f64) -> Self {
        self.events.push(FaultEvent::WorkerErrorRate {
            worker,
            from_s,
            to_s,
            rate,
        });
        self
    }

    /// Adds a heartbeat-only partition of `worker` over `[from_s, to_s)`.
    pub fn partition(mut self, worker: usize, from_s: f64, to_s: f64) -> Self {
        self.events.push(FaultEvent::HeartbeatPartition {
            worker,
            from_s,
            to_s,
        });
        self
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical robustness schedule used by the `robustness_faults`
    /// experiment: worker 0 crashes at 10 s and recovers at 40 s, worker
    /// 1 runs 2× slower over `[15 s, 35 s)`, and offered load surges 3×
    /// over `[20 s, 30 s)`.
    ///
    /// # Panics
    ///
    /// Panics if `workers < 2` (the schedule needs two distinct
    /// workers).
    pub fn canonical(workers: usize) -> Self {
        assert!(workers >= 2, "canonical fault plan needs >= 2 workers");
        Self::none()
            .crash(0, 10.0)
            .recover(0, 40.0)
            .slowdown(1, 15.0, 35.0, 2.0)
            .surge(20.0, 30.0, 3.0)
    }

    /// Checks the plan against a cluster of `workers` workers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for out-of-range worker
    /// indices, non-finite or negative times, inverted intervals, or
    /// non-positive factors.
    pub fn validate(&self, workers: usize) -> Result<(), SimError> {
        let err = |msg: String| Err(SimError::InvalidConfig(msg));
        let check_time = |what: &str, t: f64| -> Result<(), SimError> {
            if !t.is_finite() || t < 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan: {what} must be a non-negative finite time, got {t}"
                )));
            }
            Ok(())
        };
        let check_worker = |w: usize| -> Result<(), SimError> {
            if w >= workers {
                return Err(SimError::InvalidConfig(format!(
                    "fault plan: worker {w} out of range for a {workers}-worker cluster"
                )));
            }
            Ok(())
        };
        for event in &self.events {
            match *event {
                FaultEvent::WorkerCrash { worker, at_s } => {
                    check_worker(worker)?;
                    check_time("crash time", at_s)?;
                }
                FaultEvent::WorkerRecover { worker, at_s } => {
                    check_worker(worker)?;
                    check_time("recovery time", at_s)?;
                }
                FaultEvent::WorkerSlowdown {
                    worker,
                    from_s,
                    to_s,
                    factor,
                } => {
                    check_worker(worker)?;
                    check_time("slowdown start", from_s)?;
                    check_time("slowdown end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: slowdown interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                    if !factor.is_finite() || factor <= 0.0 {
                        return err(format!(
                            "fault plan: slowdown factor must be positive, got {factor}"
                        ));
                    }
                }
                FaultEvent::ArrivalSurge {
                    from_s,
                    to_s,
                    factor,
                } => {
                    check_time("surge start", from_s)?;
                    check_time("surge end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: surge interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                    if !factor.is_finite() || factor <= 0.0 {
                        return err(format!(
                            "fault plan: surge factor must be positive, got {factor}"
                        ));
                    }
                }
                FaultEvent::WorkerFlap {
                    worker,
                    from_s,
                    to_s,
                    period_s,
                } => {
                    check_worker(worker)?;
                    check_time("flap start", from_s)?;
                    check_time("flap end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: flap interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                    if !period_s.is_finite() || period_s <= 0.0 {
                        return err(format!(
                            "fault plan: flap period must be positive, got {period_s}"
                        ));
                    }
                }
                FaultEvent::WorkerErrorRate {
                    worker,
                    from_s,
                    to_s,
                    rate,
                } => {
                    check_worker(worker)?;
                    check_time("error-rate start", from_s)?;
                    check_time("error-rate end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: error-rate interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                    if !rate.is_finite() || rate <= 0.0 || rate >= 1.0 {
                        return err(format!(
                            "fault plan: error rate must be strictly inside (0, 1), got {rate}"
                        ));
                    }
                }
                FaultEvent::HeartbeatPartition {
                    worker,
                    from_s,
                    to_s,
                } => {
                    check_worker(worker)?;
                    check_time("partition start", from_s)?;
                    check_time("partition end", to_s)?;
                    if to_s <= from_s {
                        return err(format!(
                            "fault plan: partition interval [{from_s}, {to_s}) is empty"
                        ));
                    }
                }
            }
        }
        self.validate_ordering(workers)
    }

    /// Per-worker event-order sanity: crashes and recoveries must
    /// alternate. A second crash without an intervening recovery, or a
    /// recovery while the worker is live, would silently produce
    /// degenerate fault windows (and a recovery the engine discards),
    /// so both are rejected here. Flap windows are micro crash/recover
    /// trains, so they must not overlap an explicit crash episode or
    /// another flap on the same worker.
    fn validate_ordering(&self, workers: usize) -> Result<(), SimError> {
        let err = |msg: String| Err(SimError::InvalidConfig(msg));
        for w in 0..workers {
            // Explicit crash/recover timeline, stable by time so
            // simultaneous events keep plan order.
            let mut timeline: Vec<(f64, bool)> = self
                .events
                .iter()
                .filter_map(|e| match *e {
                    FaultEvent::WorkerCrash { worker, at_s } if worker == w => Some((at_s, true)),
                    FaultEvent::WorkerRecover { worker, at_s } if worker == w => {
                        Some((at_s, false))
                    }
                    _ => None,
                })
                .collect();
            timeline.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("validated finite times"));
            let mut live = true;
            let mut episodes: Vec<(f64, f64)> = Vec::new();
            let mut down_at = 0.0;
            for (at_s, is_crash) in timeline {
                if is_crash {
                    if !live {
                        return err(format!(
                            "fault plan: worker {w} crashes again at {at_s} s without an \
                             intervening recovery"
                        ));
                    }
                    live = false;
                    down_at = at_s;
                } else {
                    if live {
                        return err(format!(
                            "fault plan: worker {w} recovers at {at_s} s while live"
                        ));
                    }
                    live = true;
                    episodes.push((down_at, at_s));
                }
            }
            if !live {
                episodes.push((down_at, f64::INFINITY));
            }
            // Flap windows vs crash episodes and each other.
            let mut flaps: Vec<(f64, f64)> = self
                .events
                .iter()
                .filter_map(|e| match *e {
                    FaultEvent::WorkerFlap {
                        worker,
                        from_s,
                        to_s,
                        ..
                    } if worker == w => Some((from_s, to_s)),
                    _ => None,
                })
                .collect();
            flaps.sort_by(|a, b| a.partial_cmp(b).expect("validated finite times"));
            for &(from_s, to_s) in &flaps {
                if episodes.iter().any(|&(c, r)| c < to_s && from_s < r) {
                    return err(format!(
                        "fault plan: worker {w} flap [{from_s}, {to_s}) overlaps a crash episode"
                    ));
                }
            }
            for pair in flaps.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return err(format!(
                        "fault plan: worker {w} has overlapping flap windows [{}, {}) and \
                         [{}, {})",
                        pair[0].0, pair[0].1, pair[1].0, pair[1].1
                    ));
                }
            }
        }
        Ok(())
    }

    /// The per-batch error rate in effect for `worker` at time `t_s`
    /// (the maximum over overlapping windows; `0.0` when none apply).
    pub fn error_rate_at(&self, worker: usize, t_s: f64) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::WorkerErrorRate {
                    worker: w,
                    from_s,
                    to_s,
                    rate,
                } if w == worker && from_s <= t_s && t_s < to_s => Some(rate),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// True when `worker`'s heartbeats are partitioned at time `t_s`.
    pub fn partitioned(&self, worker: usize, t_s: f64) -> bool {
        self.events.iter().any(|e| {
            matches!(*e, FaultEvent::HeartbeatPartition { worker: w, from_s, to_s }
                if w == worker && from_s <= t_s && t_s < to_s)
        })
    }

    /// The arrival-surge intervals, `(from_s, to_s, factor)`.
    pub fn surges(&self) -> Vec<(f64, f64, f64)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::ArrivalSurge {
                    from_s,
                    to_s,
                    factor,
                } => Some((from_s, to_s, factor)),
                _ => None,
            })
            .collect()
    }

    /// The union of all fault-affected time windows, merged and sorted:
    /// `[crash, recovery)` per worker (to the end of time for a crash
    /// with no recovery), plus every slowdown, surge, flap, and
    /// error-rate interval. Heartbeat partitions are excluded — they
    /// degrade nothing but the detector's view. Used by the metrics
    /// layer to split violation accounting into
    /// inside/outside-fault-window rates.
    pub fn fault_windows(&self) -> Vec<(f64, f64)> {
        let mut raw: Vec<(f64, f64)> = Vec::new();
        // Pair each crash with its earliest later recovery per worker.
        let mut crashes: Vec<(usize, f64)> = Vec::new();
        let mut recoveries: Vec<(usize, f64)> = Vec::new();
        for event in &self.events {
            match *event {
                FaultEvent::WorkerCrash { worker, at_s } => crashes.push((worker, at_s)),
                FaultEvent::WorkerRecover { worker, at_s } => recoveries.push((worker, at_s)),
                FaultEvent::WorkerSlowdown { from_s, to_s, .. }
                | FaultEvent::ArrivalSurge { from_s, to_s, .. }
                | FaultEvent::WorkerFlap { from_s, to_s, .. }
                | FaultEvent::WorkerErrorRate { from_s, to_s, .. } => raw.push((from_s, to_s)),
                FaultEvent::HeartbeatPartition { .. } => {}
            }
        }
        for &(w, crash_at) in &crashes {
            let recovery = recoveries
                .iter()
                .filter(|&&(rw, at)| rw == w && at > crash_at)
                .map(|&(_, at)| at)
                .fold(f64::INFINITY, f64::min);
            raw.push((crash_at, recovery));
        }
        raw.sort_by(|a, b| a.partial_cmp(b).expect("validated finite starts"));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (start, end) in raw {
            match merged.last_mut() {
                Some(last) if start <= last.1 => last.1 = last.1.max(end),
                _ => merged.push((start, end)),
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_canonical() {
        let plan = FaultPlan::canonical(4);
        assert_eq!(plan.events.len(), 4);
        assert_eq!(plan.crash_policy, CrashPolicy::RequeueToSurvivors);
        assert!(plan.validate(4).is_ok());
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(FaultPlan::none().crash(4, 1.0).validate(4).is_err());
        assert!(FaultPlan::none().crash(0, -1.0).validate(4).is_err());
        assert!(FaultPlan::none().crash(0, f64::NAN).validate(4).is_err());
        assert!(FaultPlan::none()
            .slowdown(0, 5.0, 5.0, 2.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .slowdown(0, 5.0, 6.0, 0.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none().surge(3.0, 2.0, 2.0).validate(4).is_err());
        assert!(FaultPlan::none()
            .surge(1.0, 2.0, f64::INFINITY)
            .validate(4)
            .is_err());
        assert!(FaultPlan::canonical(4).validate(4).is_ok());
    }

    #[test]
    fn windows_merge_overlaps() {
        let plan = FaultPlan::canonical(4);
        // Crash [10, 40), slowdown [15, 35), surge [20, 30) all overlap
        // into a single [10, 40) window.
        assert_eq!(plan.fault_windows(), vec![(10.0, 40.0)]);

        let disjoint = FaultPlan::none()
            .slowdown(0, 1.0, 2.0, 2.0)
            .surge(5.0, 6.0, 2.0);
        assert_eq!(disjoint.fault_windows(), vec![(1.0, 2.0), (5.0, 6.0)]);
    }

    #[test]
    fn unrecovered_crash_window_is_open_ended() {
        let plan = FaultPlan::none().crash(2, 7.5);
        let windows = plan.fault_windows();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].0, 7.5);
        assert!(windows[0].1.is_infinite());
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::canonical(4)
            .with_crash_policy(CrashPolicy::Drop)
            .flap(2, 1.0, 3.0, 0.5)
            .error_rate(3, 2.0, 4.0, 0.25)
            .partition(1, 0.5, 1.5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn validate_rejects_second_crash_without_recovery() {
        // Worker 0 crashes twice with no recovery in between.
        let plan = FaultPlan::none().crash(0, 5.0).crash(0, 10.0);
        let msg = match plan.validate(4) {
            Err(SimError::InvalidConfig(m)) => m,
            other => panic!("expected rejection, got {other:?}"),
        };
        assert!(msg.contains("without an intervening recovery"), "{msg}");
        // A recovery in between makes the same pair legal.
        assert!(FaultPlan::none()
            .crash(0, 5.0)
            .recover(0, 7.0)
            .crash(0, 10.0)
            .validate(4)
            .is_ok());
        // Crashes on different workers never interact.
        assert!(FaultPlan::none()
            .crash(0, 5.0)
            .crash(1, 10.0)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn validate_rejects_recovery_while_live() {
        // Worker 0 never crashed: recovering it is a plan bug.
        let plan = FaultPlan::none().recover(0, 5.0);
        let msg = match plan.validate(4) {
            Err(SimError::InvalidConfig(m)) => m,
            other => panic!("expected rejection, got {other:?}"),
        };
        assert!(msg.contains("while live"), "{msg}");
        // Double recovery after one crash is the same anomaly.
        assert!(FaultPlan::none()
            .crash(0, 5.0)
            .recover(0, 7.0)
            .recover(0, 9.0)
            .validate(4)
            .is_err());
    }

    #[test]
    fn validate_rejects_degenerate_gray_modes() {
        assert!(FaultPlan::none()
            .flap(4, 1.0, 2.0, 0.5)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .flap(0, 2.0, 1.0, 0.5)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .flap(0, 1.0, 2.0, 0.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .flap(0, 1.0, 2.0, f64::NAN)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .error_rate(0, 1.0, 1.0, 0.5)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .error_rate(0, 1.0, 2.0, 0.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .error_rate(0, 1.0, 2.0, 1.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .partition(0, 3.0, 2.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::none()
            .flap(0, 1.0, 2.0, 0.25)
            .error_rate(1, 1.0, 2.0, 0.5)
            .partition(2, 1.0, 2.0)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn validate_rejects_flap_overlapping_crash_or_flap() {
        // Flap window inside a crash episode.
        assert!(FaultPlan::none()
            .crash(0, 5.0)
            .recover(0, 15.0)
            .flap(0, 8.0, 12.0, 1.0)
            .validate(4)
            .is_err());
        // Flap overlapping an open-ended crash.
        assert!(FaultPlan::none()
            .crash(0, 5.0)
            .flap(0, 20.0, 25.0, 1.0)
            .validate(4)
            .is_err());
        // Two overlapping flaps on the same worker.
        assert!(FaultPlan::none()
            .flap(0, 1.0, 5.0, 0.5)
            .flap(0, 4.0, 8.0, 0.5)
            .validate(4)
            .is_err());
        // Disjoint flaps and a flap adjacent to a crash are fine.
        assert!(FaultPlan::none()
            .flap(0, 1.0, 4.0, 0.5)
            .flap(0, 4.0, 8.0, 0.5)
            .crash(0, 8.0)
            .recover(0, 10.0)
            .validate(4)
            .is_ok());
        // Flap on another worker never conflicts.
        assert!(FaultPlan::none()
            .crash(0, 5.0)
            .flap(1, 4.0, 6.0, 0.5)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn error_rate_and_partition_lookups() {
        let plan = FaultPlan::none()
            .error_rate(0, 1.0, 3.0, 0.2)
            .error_rate(0, 2.0, 4.0, 0.5)
            .partition(1, 5.0, 6.0);
        assert_eq!(plan.error_rate_at(0, 0.5), 0.0);
        assert_eq!(plan.error_rate_at(0, 1.5), 0.2);
        // Overlapping windows take the max.
        assert_eq!(plan.error_rate_at(0, 2.5), 0.5);
        assert_eq!(plan.error_rate_at(0, 3.5), 0.5);
        assert_eq!(plan.error_rate_at(0, 4.0), 0.0);
        assert_eq!(plan.error_rate_at(1, 2.5), 0.0);
        assert!(!plan.partitioned(1, 4.9));
        assert!(plan.partitioned(1, 5.0));
        assert!(plan.partitioned(1, 5.9));
        assert!(!plan.partitioned(1, 6.0));
        assert!(!plan.partitioned(0, 5.5));
    }

    #[test]
    fn gray_windows_count_as_fault_windows() {
        let plan = FaultPlan::none()
            .flap(0, 1.0, 2.0, 0.25)
            .error_rate(1, 5.0, 6.0, 0.3)
            .partition(2, 10.0, 20.0);
        // Partition degrades nothing, so it contributes no window.
        assert_eq!(plan.fault_windows(), vec![(1.0, 2.0), (5.0, 6.0)]);
    }

    #[test]
    fn surges_are_extracted() {
        let plan = FaultPlan::canonical(4);
        assert_eq!(plan.surges(), vec![(20.0, 30.0, 3.0)]);
    }
}
