//! Inference queries and nanosecond time handling.

use serde::{Deserialize, Serialize};

/// Nanoseconds since simulation start.
pub type Nanos = u64;

/// Converts seconds to simulation nanoseconds (saturating at zero for
/// negative inputs).
pub fn nanos_from_secs(s: f64) -> Nanos {
    if s <= 0.0 {
        0
    } else {
        (s * 1e9).round() as Nanos
    }
}

/// Converts simulation nanoseconds to seconds.
pub fn secs_from_nanos(ns: Nanos) -> f64 {
    ns as f64 * 1e-9
}

/// One inference query: arrival stamped at the central queue, deadline
/// `arrival + SLO` (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Monotone query identifier (arrival order).
    pub id: u64,
    /// Arrival time at the central queue.
    pub arrival: Nanos,
    /// Deadline: `arrival + SLO`.
    pub deadline: Nanos,
    /// Dispatch attempts that have timed out so far (0 until the
    /// resilience layer's first timeout; response time is always
    /// measured from [`Self::arrival`], never reset by retries).
    pub attempt: u32,
    /// When the query last joined a queue — the arrival for fresh
    /// queries, refreshed on retry re-enqueue, crash requeue, and limbo
    /// drain. Admission control reads the queue head's value as its
    /// sojourn clock.
    pub enqueued_at: Nanos,
}

impl Query {
    /// Creates a query with a deadline `slo` nanoseconds after arrival.
    pub fn new(id: u64, arrival: Nanos, slo: Nanos) -> Self {
        Self {
            id,
            arrival,
            deadline: arrival + slo,
            attempt: 0,
            enqueued_at: arrival,
        }
    }

    /// Remaining slack at time `now`, in seconds (negative when late).
    pub fn slack_at(&self, now: Nanos) -> f64 {
        if self.deadline >= now {
            secs_from_nanos(self.deadline - now)
        } else {
            -secs_from_nanos(now - self.deadline)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(nanos_from_secs(0.15), 150_000_000);
        assert_eq!(nanos_from_secs(-1.0), 0);
        assert!((secs_from_nanos(150_000_000) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn slack_signs() {
        let q = Query::new(0, 1_000_000_000, 150_000_000);
        assert_eq!(q.deadline, 1_150_000_000);
        assert!((q.slack_at(1_000_000_000) - 0.15).abs() < 1e-12);
        assert!((q.slack_at(1_100_000_000) - 0.05).abs() < 1e-12);
        assert!((q.slack_at(1_200_000_000) + 0.05).abs() < 1e-12);
    }
}
