//! Randomized chaos sweeps over the resilience layer (DESIGN.md §9).
//!
//! A chaos sweep derives a stream of per-run seeds from one master
//! seed; each run randomizes the cluster shape, offered load, routing
//! discipline, latency mode, fault plan (crashes, recoveries,
//! slowdowns, surges, crash policy), and every [`ResiliencePolicy`]
//! knob, then executes the run **twice** with full telemetry and checks
//! a battery of invariants:
//!
//! - **Determinism**: both executions produce byte-identical serialized
//!   reports and identical event streams.
//! - **Conservation**: every arrival ends in exactly one terminal state
//!   (completed, shed, crash-dropped, admission-refused) or is still in
//!   flight at the horizon — no query is ever both completed and shed.
//! - **Counter agreement**: the aggregates reconstructed from the trace
//!   match the engine's own report counters field for field, including
//!   the resilience counters.
//! - **Hedge consistency**: cancels and wins never exceed issues, and
//!   every win implies a cancel.
//! - **Admission bounds**: with admission enabled, no enqueue ever
//!   lands beyond the queue cap (the limbo queue is exempt — it exists
//!   precisely because no admissible queue remains).
//! - **Kill–resume identity** ([`ChaosConfig::kill_resume`]): the run
//!   executes once more with checkpointing at a randomized cadence, is
//!   killed at a randomly chosen checkpoint, and resumes from that
//!   snapshot; the resumed report and telemetry suffix must be
//!   byte-identical to the uninterrupted run, the snapshot must JSON
//!   round-trip byte-identically, and checkpointing itself must not
//!   perturb the run. Runs that drew a failure detector round-trip its
//!   state (phi estimators, breakers, strike counters) through the same
//!   snapshots.
//! - **Failure-detector invariants** (DESIGN.md §14): per-worker
//!   breaker transitions form a valid Closed→Open→HalfOpen DFA and pair
//!   up with `Suspect`/`Reinstate` events; the report's health counters
//!   equal the trace-derived ones; every genuine suspicion's detection
//!   lag is within [`HealthPolicy::detection_bound_s`]; on fixed pools,
//!   every explicit crash with enough probe runway is suspected within
//!   the bound and every false suspicion is reinstated within
//!   [`HealthPolicy::reinstate_bound_s`] of the last gray disturbance;
//!   with the detector off (the default), the run is byte-identical to
//!   the oracle engine and emits no health telemetry at all.
//!
//! Any violated invariant is reported as a [`ChaosFailure`] carrying
//! the *run's own seed*, so a red sweep is reproducible with a single
//! value regardless of how many runs preceded it.

use std::time::Duration;

use ramsis_profiles::{ModelCatalog, ProfilerConfig, WorkerProfile};
use ramsis_telemetry::{
    aggregates, burn_analysis, conservation, query_weights, BurnConfig, ChosenAction, Event,
    QueueId, SamplePolicy, SamplingSink, VecDecisionSink, VecSink,
};
use ramsis_workload::{LoadMonitor, Trace};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::autoscale::AutoscalePolicy;
use crate::checkpoint::{CheckpointPolicy, MemoryRecorder};
use crate::engine::{ForcedDecision, Simulation, SimulationConfig};
use crate::faults::{CrashPolicy, FaultEvent, FaultPlan};
use crate::health::HealthPolicy;
use crate::metrics::SimulationReport;
use crate::resilience::{splitmix64, ResiliencePolicy};
use crate::scheme::{Routing, Selection, SelectionContext, ServingScheme};
use crate::SimError;

/// A minimal, dependency-free scheme for chaos runs: always the fastest
/// model, always the full visible queue, with a configurable routing
/// discipline so all three dispatch structures get exercised.
pub struct FastestFixed {
    model: usize,
    routing: Routing,
}

impl FastestFixed {
    /// A scheme serving `model` under `routing`.
    pub fn new(model: usize, routing: Routing) -> Self {
        Self { model, routing }
    }
}

impl ServingScheme for FastestFixed {
    fn name(&self) -> &str {
        "fastest-fixed"
    }

    fn routing(&self) -> Routing {
        self.routing
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        Selection::Serve {
            model: self.model,
            batch: ctx.queued as u32,
        }
    }

    /// Stateless: kill–resume chaos runs checkpoint freely.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

/// Parameters of a chaos sweep. Everything inside a run is derived from
/// [`ChaosConfig::seed`] and the run index, so a sweep is reproducible
/// from this struct alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Master seed; per-run seeds are hashed out of it.
    pub seed: u64,
    /// Number of randomized runs.
    pub runs: u32,
    /// Upper bound on the randomized cluster size (inclusive).
    pub max_workers: u32,
    /// Upper bound on the randomized run length, seconds.
    pub max_duration_s: f64,
    /// Upper bound on the randomized offered load, queries per second.
    pub max_load_qps: f64,
    /// Response-latency SLO shared by every run (the worker profile is
    /// built once for it).
    pub slo_s: f64,
    /// Kill–resume dimension: run each scenario once more with
    /// checkpointing at a randomized cadence, kill it at a randomly
    /// chosen checkpoint, resume from that snapshot, and demand the
    /// resumed report and telemetry suffix be byte-identical to the
    /// uninterrupted run (plus snapshot JSON round-trip identity).
    pub kill_resume: bool,
    /// Failure-detector dimension: when `true`, every run draws an
    /// enabled randomized [`HealthPolicy`] (by default about 40% of
    /// runs do), so a sweep concentrates on suspicion, breakers, and
    /// gray-failure physics.
    pub health: bool,
    /// Test-only hook: deliberately corrupt one engine counter before
    /// invariant checking, to prove a violated invariant surfaces the
    /// reproducing seed. Never set outside tests.
    #[doc(hidden)]
    pub sabotage: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A0_55EE,
            runs: 100,
            max_workers: 4,
            max_duration_s: 2.0,
            max_load_qps: 150.0,
            slo_s: 0.15,
            kill_resume: false,
            health: false,
            sabotage: false,
        }
    }
}

impl ChaosConfig {
    /// Checks the sweep parameters are runnable.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on a zero run count or
    /// worker bound, or non-positive / non-finite durations and loads.
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |msg: String| Err(SimError::InvalidConfig(msg));
        if self.runs == 0 {
            return bad("chaos: need at least one run".to_string());
        }
        if self.max_workers == 0 {
            return bad("chaos: need at least one worker".to_string());
        }
        for (what, v) in [
            ("max duration", self.max_duration_s),
            ("max load", self.max_load_qps),
            ("SLO", self.slo_s),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return bad(format!(
                    "chaos: {what} must be positive and finite, got {v}"
                ));
            }
        }
        Ok(())
    }

    /// The derived seed of run `run` — the value a [`ChaosFailure`]
    /// reports and [`ChaosConfig::run_one`] accepts to reproduce it.
    pub fn run_seed(&self, run: u32) -> u64 {
        splitmix64(self.seed ^ (u64::from(run) << 17) ^ 0x0C_1A05)
    }

    /// Executes the sweep: `runs` randomized, invariant-checked runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the sweep parameters
    /// themselves are degenerate. Per-run problems (including invariant
    /// violations) never abort the sweep; they are collected as
    /// [`ChaosFailure`]s in the report.
    pub fn run_sweep(&self) -> Result<ChaosReport, SimError> {
        self.validate()?;
        let profile = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_secs_f64(self.slo_s),
            ProfilerConfig::default(),
        );
        let mut report = ChaosReport {
            seed: self.seed,
            runs_requested: self.runs,
            runs: Vec::with_capacity(self.runs as usize),
            failures: Vec::new(),
        };
        for run in 0..self.runs {
            let seed = self.run_seed(run);
            match self.run_one(&profile, run, seed) {
                Ok((summary, mut failures)) => {
                    report.runs.push(summary);
                    report.failures.append(&mut failures);
                }
                Err(e) => report.failures.push(ChaosFailure {
                    run,
                    seed,
                    invariant: "setup".to_string(),
                    detail: e.to_string(),
                }),
            }
        }
        Ok(report)
    }

    /// Executes one randomized run from its derived `seed`, returning
    /// its summary and any invariant violations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the generated scenario
    /// is rejected by the engine — itself an invariant violation, since
    /// the generator is supposed to stay inside the valid space.
    #[allow(clippy::too_many_lines)]
    pub fn run_one(
        &self,
        profile: &WorkerProfile,
        run: u32,
        seed: u64,
    ) -> Result<(ChaosRunSummary, Vec<ChaosFailure>), SimError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let workers = rng.gen_range(0..self.max_workers as usize) + 1;
        let duration_s = rng.gen_range(0.5..self.max_duration_s.max(0.6));
        let load_qps = rng.gen_range(10.0..self.max_load_qps.max(11.0));
        let stochastic = rng.gen::<f64>() < 0.5;
        let routing = match rng.gen_range(0..3u32) {
            0 => Routing::Central,
            1 => Routing::PerWorkerRoundRobin,
            _ => Routing::PerWorkerShortestQueue,
        };
        let policy = random_resilience(&mut rng);
        let autoscale = random_autoscale(&mut rng, workers, self.max_workers as usize);
        let health = random_health(&mut rng, self.health);
        let plan = random_plan(&mut rng, workers, duration_s);
        let trace = Trace::constant(load_qps, duration_s);

        let mut config = SimulationConfig::new(workers, self.slo_s)
            .seeded(seed)
            .with_resilience(policy);
        if stochastic {
            config = config.stochastic();
        }
        if let Some(a) = autoscale {
            config = config.with_autoscale(a);
        }
        if let Some(h) = health {
            config = config.with_health(h);
        }
        let sim = Simulation::new(profile, config)?;
        let run_with = |sim: &Simulation| -> Result<(SimulationReport, Vec<Event>), SimError> {
            let mut scheme = FastestFixed::new(profile.fastest_model(), routing);
            let mut monitor = LoadMonitor::new();
            let mut sink = VecSink::new();
            let r = sim.run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sink)?;
            Ok((r, sink.into_events()))
        };
        let run_once = || run_with(&sim);
        let (mut r1, e1) = run_once()?;
        let (mut r2, e2) = run_once()?;
        if self.sabotage {
            // Corrupt both executions identically: determinism still
            // holds, so the counter-agreement invariant is what fires.
            r1.served = r1.served.wrapping_add(1);
            r2.served = r2.served.wrapping_add(1);
        }

        let mut failures = Vec::new();
        let mut fail = |invariant: &str, detail: String| {
            failures.push(ChaosFailure {
                run,
                seed,
                invariant: invariant.to_string(),
                detail,
            });
        };
        check_invariants(
            &r1,
            &r2,
            &e1,
            &e2,
            &policy,
            autoscale.as_ref(),
            health.as_ref(),
            &plan,
            &mut fail,
        );

        // Autoscaler-off bit-identity: attaching a *disabled* autoscale
        // policy must leave the run byte-identical to the plain engine —
        // no extra events, no extra report fields. Checked on the runs
        // that did not draw an elastic policy (the plain run doubles as
        // the reference).
        if autoscale.is_none() {
            let off = Simulation::new(profile, config.with_autoscale(AutoscalePolicy::default()))?;
            let (r_off, e_off) = run_with(&off)?;
            let j_plain = serde_json::to_string(&r1).expect("reports serialize");
            let j_off = serde_json::to_string(&r_off).expect("reports serialize");
            if j_plain != j_off {
                fail("autoscale-off-identity", format!("{j_plain} != {j_off}"));
            }
            if e1 != e_off {
                fail(
                    "autoscale-off-identity",
                    format!(
                        "event streams diverge ({} plain vs {} disabled-autoscale events)",
                        e1.len(),
                        e_off.len()
                    ),
                );
            }
        }

        // Detector-off bit-identity: a *disabled* health policy — even
        // with every knob set to non-default values — must leave the
        // run byte-identical to the oracle engine. Checked on the runs
        // that did not draw a detector (the plain run is the
        // reference).
        if health.is_none() {
            let mut off_policy = HealthPolicy::probing(0.013);
            off_policy.enabled = false;
            let off = Simulation::new(profile, config.with_health(off_policy))?;
            let (r_off, e_off) = run_with(&off)?;
            let j_plain = serde_json::to_string(&r1).expect("reports serialize");
            let j_off = serde_json::to_string(&r_off).expect("reports serialize");
            if j_plain != j_off {
                fail("health-off-identity", format!("{j_plain} != {j_off}"));
            }
            if e1 != e_off {
                fail(
                    "health-off-identity",
                    format!(
                        "event streams diverge ({} plain vs {} disabled-health events)",
                        e1.len(),
                        e_off.len()
                    ),
                );
            }
        }

        // Decision provenance (ISSUE 8): recording the decision stream
        // must not perturb the run, and forcing a randomly chosen
        // selection-site record's own raw action in a counterfactual
        // replay must reproduce report and telemetry byte for byte —
        // the exact-regret baseline the `why --counterfactual` path
        // relies on.
        let decisions;
        {
            let mut scheme = FastestFixed::new(profile.fastest_model(), routing);
            let mut monitor = LoadMonitor::new();
            let mut sink = VecSink::new();
            let mut recorder = VecDecisionSink::new();
            let rd = sim.run_faulted_traced_decisions(
                &trace,
                &plan,
                &mut scheme,
                &mut monitor,
                &mut sink,
                &mut recorder,
            )?;
            let ed = sink.into_events();
            let j_rd = serde_json::to_string(&rd).expect("reports serialize");
            if j_rd != serde_json::to_string(&r1).expect("reports serialize") {
                fail(
                    "decisions:recording-identity",
                    "decision recording changed the report".to_string(),
                );
            }
            if ed != e1 {
                fail(
                    "decisions:recording-identity",
                    format!(
                        "decision recording changed the event stream ({} vs {} events)",
                        ed.len(),
                        e1.len()
                    ),
                );
            }
            decisions = recorder.records().len() as u64;
            let sites: Vec<_> = recorder
                .records()
                .iter()
                .filter(|r| r.state.is_some())
                .collect();
            if !sites.is_empty() {
                let rec = sites[rng.gen_range(0..sites.len())];
                let action = match rec.chosen {
                    ChosenAction::Serve { model, batch } => Selection::Serve {
                        model: model as usize,
                        batch,
                    },
                    ChosenAction::Shed { count } => Selection::Drop { count },
                    _ => Selection::Idle,
                };
                let mut scheme = FastestFixed::new(profile.fastest_model(), routing);
                let mut monitor = LoadMonitor::new();
                let mut sink = VecSink::new();
                match sim.replay_counterfactual(
                    &trace,
                    &plan,
                    &mut scheme,
                    &mut monitor,
                    &mut sink,
                    ForcedDecision { k: rec.k, action },
                ) {
                    Err(e) => fail("decisions:counterfactual-baseline", e.to_string()),
                    Ok(cf) => {
                        if serde_json::to_string(&cf).expect("reports serialize") != j_rd {
                            fail(
                                "decisions:counterfactual-baseline",
                                format!(
                                    "replaying the chosen action at k={} diverged from the \
                                     factual report",
                                    rec.k
                                ),
                            );
                        }
                        if sink.into_events() != ed {
                            fail(
                                "decisions:counterfactual-baseline",
                                format!("replay at k={} diverged in the event stream", rec.k),
                            );
                        }
                    }
                }
            }
        }

        // Telemetry-sampling dimension (ISSUE 10): re-run the scenario
        // through a query-coherent sampling sink at a seeded random
        // rate and hold it to the exactness contract — bit-identical
        // report, exact-subsequence stream, every interesting query
        // fully retained, per-query conservation intact, and rate 1.0
        // indistinguishable from sampling off.
        {
            let rate = match rng.gen_range(0..4u32) {
                0 => 1.0,
                1 => 0.5,
                2 => 0.1,
                _ => 0.01,
            };
            let policy = SamplePolicy::new(rate, seed).expect("chaos rates are valid");
            let mut scheme = FastestFixed::new(profile.fastest_model(), routing);
            let mut monitor = LoadMonitor::new();
            let mut sampling = SamplingSink::new(VecSink::new(), policy);
            let rs =
                sim.run_faulted_traced(&trace, &plan, &mut scheme, &mut monitor, &mut sampling)?;
            let withheld = sampling.sampled_out_events();
            let sampled = sampling.finish().into_events();
            if serde_json::to_string(&rs).expect("reports serialize")
                != serde_json::to_string(&r1).expect("reports serialize")
            {
                fail(
                    "sampling:report-identity",
                    format!("sampling at rate {rate} changed the report"),
                );
            }
            // Exact subsequence: same events, same order, nothing
            // reordered or invented; the withheld counter accounts for
            // every removed event.
            let mut rest = e1.as_slice();
            let subsequence = sampled.iter().all(|s| {
                rest.iter().position(|f| f == s).is_some_and(|i| {
                    rest = &rest[i + 1..];
                    true
                })
            });
            if !subsequence {
                fail(
                    "sampling:subsequence",
                    format!(
                        "sampled stream (rate {rate}) is not a subsequence of the full stream \
                         ({} sampled vs {} full events)",
                        sampled.len(),
                        e1.len()
                    ),
                );
            } else if sampled.len() as u64 + withheld != e1.len() as u64 {
                fail(
                    "sampling:event-accounting",
                    format!(
                        "{} sampled + {withheld} withheld != {} full events",
                        sampled.len(),
                        e1.len()
                    ),
                );
            }
            if rate >= 1.0 && sampled != e1 {
                fail(
                    "sampling:off-identity",
                    format!(
                        "rate 1.0 must keep the full stream ({} vs {} events)",
                        sampled.len(),
                        e1.len()
                    ),
                );
            }
            // Per-query retention: interesting queries (violations,
            // sheds, drops, timeouts, retries, hedges, crash requeues,
            // admission rejections, in-flight) keep every event; boring
            // queries are all-or-nothing by their hash.
            let count_by_query = |events: &[Event]| {
                let mut m: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
                for e in events {
                    if let Some(q) = e.query() {
                        *m.entry(q).or_insert(0) += 1;
                    }
                }
                m
            };
            let full_counts = count_by_query(&e1);
            let sampled_counts = count_by_query(&sampled);
            for (&q, &w) in &query_weights(&e1, rate) {
                let expect = if w == 1.0 || policy.keeps(q) {
                    full_counts.get(&q).copied().unwrap_or(0)
                } else {
                    0
                };
                let got = sampled_counts.get(&q).copied().unwrap_or(0);
                if got != expect {
                    fail(
                        "sampling:query-coherence",
                        format!("query {q} (weight {w}) kept {got}/{expect} events at rate {rate}"),
                    );
                    break;
                }
            }
            if !conservation(&sampled).holds() {
                fail(
                    "sampling:conservation",
                    format!("conservation broken on the sampled stream at rate {rate}"),
                );
            }
        }

        // Kill–resume dimension: the same scenario survives a kill at a
        // random checkpoint with nothing to show for it — report bytes,
        // telemetry suffix, and the snapshot itself all identical.
        let mut checkpoints = 0u64;
        let mut resumed_from = None;
        if self.kill_resume {
            let every = rng.gen_range(8..96u64);
            let durable = Simulation::new(
                profile,
                config.with_checkpoints(CheckpointPolicy::every_events(every)),
            )?;
            let mut scheme = FastestFixed::new(profile.fastest_model(), routing);
            let mut monitor = LoadMonitor::new();
            let mut sink = VecSink::new();
            let mut rec = MemoryRecorder::new();
            let full = durable
                .run_durable(
                    &trace,
                    &plan,
                    &mut scheme,
                    &mut monitor,
                    &mut sink,
                    &mut rec,
                )?
                .expect("no stop requested");
            let full_events = sink.into_events();
            let full_json = serde_json::to_string(&full).expect("reports serialize");
            // Checkpointing on must not perturb the run at all.
            if full_json != serde_json::to_string(&r1).expect("reports serialize") {
                fail(
                    "kill-resume:perturbation",
                    format!("checkpointing changed the report (cadence {every})"),
                );
            }
            if full_events != e1 {
                fail(
                    "kill-resume:perturbation",
                    format!(
                        "checkpointing changed the event stream ({} vs {} events)",
                        full_events.len(),
                        e1.len()
                    ),
                );
            }
            checkpoints = rec.snapshots.len() as u64;
            if !rec.snapshots.is_empty() {
                let kill_at = rng.gen_range(0..rec.snapshots.len());
                let snap = &rec.snapshots[kill_at];
                resumed_from = Some(snap.meta.events_done);
                // The snapshot survives serialization byte-identically.
                let json = snap.to_json();
                match crate::checkpoint::EngineSnapshot::from_json(&json) {
                    Err(e) => fail("kill-resume:snapshot-roundtrip", e.to_string()),
                    Ok(back) if back.to_json() != json => fail(
                        "kill-resume:snapshot-roundtrip",
                        format!(
                            "snapshot at event {} re-serializes differently",
                            snap.meta.events_done
                        ),
                    ),
                    Ok(back) => {
                        let mut scheme = FastestFixed::new(profile.fastest_model(), routing);
                        let mut monitor = LoadMonitor::new();
                        let mut sink = VecSink::new();
                        match durable.resume(
                            &trace,
                            &plan,
                            &mut scheme,
                            &mut monitor,
                            &mut sink,
                            &back,
                        ) {
                            Err(e) => fail("kill-resume:resume", e.to_string()),
                            Ok(resumed) => {
                                let resumed_json =
                                    serde_json::to_string(&resumed).expect("reports serialize");
                                if resumed_json != full_json {
                                    fail(
                                        "kill-resume:report",
                                        format!(
                                            "resume from event {} diverges: {resumed_json} != {full_json}",
                                            snap.meta.events_done
                                        ),
                                    );
                                }
                                let suffix = &full_events[snap.meta.events_emitted as usize..];
                                let resumed_events = sink.into_events();
                                if resumed_events != suffix {
                                    let at = resumed_events
                                        .iter()
                                        .zip(suffix.iter())
                                        .position(|(a, b)| a != b)
                                        .unwrap_or(resumed_events.len().min(suffix.len()));
                                    fail(
                                        "kill-resume:events",
                                        format!(
                                            "resumed suffix diverges at index {at} ({} vs {} events)",
                                            resumed_events.len(),
                                            suffix.len()
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        let summary = ChaosRunSummary {
            run,
            seed,
            workers: workers as u32,
            duration_s,
            load_qps,
            routing: format!("{routing:?}"),
            stochastic,
            mechanisms: mechanisms_label(&policy, autoscale.is_some(), health.is_some()),
            arrivals: r2.total_arrivals,
            served: r2.served,
            dropped: r2.dropped,
            timeouts: r2.resilience.timeouts,
            retries: r2.resilience.retries,
            hedges: r2.resilience.hedges_issued,
            admission_shed: r2.resilience.admission_shed,
            autoscaled: autoscale.is_some(),
            scale_ups: r2.autoscale.as_ref().map_or(0, |a| a.scale_ups),
            scale_downs: r2.autoscale.as_ref().map_or(0, |a| a.scale_downs),
            brownout_enters: r2.autoscale.as_ref().map_or(0, |a| a.brownout_enters),
            checkpoints,
            resumed_from,
            decisions,
            detected: health.is_some(),
            suspects: r2.health.as_ref().map_or(0, |h| h.suspects),
            reinstates: r2.health.as_ref().map_or(0, |h| h.reinstates),
            breaker_opens: r2.health.as_ref().map_or(0, |h| h.breaker_opens),
        };
        Ok((summary, failures))
    }
}

/// A randomized resilience policy: each mechanism independently on or
/// off, knobs drawn inside their valid ranges.
fn random_resilience(rng: &mut ChaCha8Rng) -> ResiliencePolicy {
    let mut p = ResiliencePolicy::default();
    if rng.gen::<f64>() < 0.6 {
        p.timeout.enabled = true;
        p.timeout.slack_fraction = rng.gen_range(0.2..1.0);
        p.timeout.min_timeout_s = rng.gen_range(0.002..0.02);
        p.retry.max_retries = rng.gen_range(0..4);
        p.retry.backoff_base_s = rng.gen_range(0.001..0.01);
        p.retry.backoff_cap_s = p.retry.backoff_base_s * rng.gen_range(1.0..8.0);
        p.retry.jitter_frac = rng.gen_range(0.0..1.0);
        p.retry.jitter_seed = rng.gen();
        p.retry.budget_rate_per_s = rng.gen_range(0.0..100.0);
        p.retry.budget_burst = rng.gen_range(1.0..20.0);
    }
    if rng.gen::<f64>() < 0.5 {
        p.hedge.enabled = true;
        p.hedge.quantile = rng.gen_range(50.0..99.0);
        p.hedge.min_samples = rng.gen_range(8..64);
        p.hedge.min_delay_s = rng.gen_range(0.001..0.01);
    }
    if rng.gen::<f64>() < 0.5 {
        p.admission.enabled = true;
        p.admission.queue_cap = rng.gen_range(4..64);
        p.admission.target_sojourn_s = rng.gen_range(0.005..0.05);
        p.admission.interval_s = rng.gen_range(0.02..0.2);
    }
    p
}

/// A randomized elastic-capacity policy (about half the runs): pool
/// bounds bracketing the initial size so the engine accepts the combo,
/// every controller knob drawn inside its valid range, and brownout on
/// for most elastic runs.
fn random_autoscale(
    rng: &mut ChaCha8Rng,
    workers: usize,
    max_workers: usize,
) -> Option<AutoscalePolicy> {
    if rng.gen::<f64>() < 0.5 {
        return None;
    }
    let mut p = AutoscalePolicy::elastic(
        rng.gen_range(0..workers) + 1,
        rng.gen_range(workers..max_workers.max(workers) + 3),
        rng.gen_range(15.0..120.0),
    );
    p.warmup_s = rng.gen_range(0.0..0.4);
    p.eval_interval_s = rng.gen_range(0.05..0.3);
    p.up_confirm = rng.gen_range(1..4);
    p.down_confirm = rng.gen_range(2..8);
    p.cooldown_s = rng.gen_range(0.0..0.5);
    p.max_step = rng.gen_range(1..4);
    p.brownout.enabled = rng.gen::<f64>() < 0.7;
    if p.brownout.enabled {
        p.brownout.enter_ratio = rng.gen_range(1.05..1.8);
        p.brownout.exit_ratio = rng.gen_range(0.5..0.95);
        p.brownout.confirm = rng.gen_range(1..6);
    }
    Some(p)
}

/// A randomized enabled failure-detector policy, every knob inside its
/// valid range. `None` (detector off) for about 60% of runs unless the
/// dimension is forced.
fn random_health(rng: &mut ChaCha8Rng, force: bool) -> Option<HealthPolicy> {
    if !force && rng.gen::<f64>() >= 0.4 {
        return None;
    }
    let mut p = HealthPolicy::probing(rng.gen_range(0.01..0.05));
    p.probe_timeout_s = p.probe_interval_s * rng.gen_range(0.25..1.0);
    p.phi_threshold = rng.gen_range(0.5..2.0);
    p.ewma_alpha = rng.gen_range(0.05..0.5);
    p.outlier_factor = rng.gen_range(2.5..6.0);
    p.outlier_strikes = rng.gen_range(2..5);
    p.close_probes = rng.gen_range(1..4);
    p.open_backoff_s = rng.gen_range(0.02..0.15);
    Some(p)
}

/// A randomized fault plan, ordering-valid by construction
/// ([`FaultPlan::validate`] rejects per-worker anomalies): each worker
/// independently draws crash/recovery episodes *or* a flap window
/// (never both — their physics would overlap), plus gray modes
/// (batch-error windows, heartbeat partitions) that are orthogonal to
/// membership; globally, slowdown windows and possibly a surge.
fn random_plan(rng: &mut ChaCha8Rng, workers: usize, duration_s: f64) -> FaultPlan {
    let crash_policy = if rng.gen::<f64>() < 0.5 {
        CrashPolicy::RequeueToSurvivors
    } else {
        CrashPolicy::Drop
    };
    let mut plan = FaultPlan::none().with_crash_policy(crash_policy);
    for w in 0..workers {
        match rng.gen_range(0..10u32) {
            0..=2 => {
                // One or two crash episodes, strictly alternating.
                let c1 = rng.gen_range(0.0..duration_s * 0.5);
                plan = plan.crash(w, c1);
                if rng.gen::<f64>() < 0.8 {
                    let r1 = c1 + rng.gen_range(0.05..duration_s * 0.3);
                    plan = plan.recover(w, r1);
                    if rng.gen::<f64>() < 0.3 {
                        let c2 = r1 + rng.gen_range(0.02..duration_s * 0.2);
                        plan = plan.crash(w, c2);
                        if rng.gen::<f64>() < 0.5 {
                            plan = plan.recover(w, c2 + rng.gen_range(0.05..duration_s * 0.2));
                        }
                    }
                }
            }
            3..=4 => {
                // A flap window: repeated short crash/recover cycles.
                let from = rng.gen_range(0.0..duration_s * 0.6);
                let to = from + rng.gen_range(0.1..duration_s * 0.4);
                plan = plan.flap(w, from, to, rng.gen_range(0.04..0.3));
            }
            _ => {}
        }
        if rng.gen::<f64>() < 0.25 {
            let from = rng.gen_range(0.0..duration_s * 0.7);
            let to = from + rng.gen_range(0.05..duration_s * 0.3);
            plan = plan.error_rate(w, from, to, rng.gen_range(0.05..0.9));
        }
        if rng.gen::<f64>() < 0.25 {
            let from = rng.gen_range(0.0..duration_s * 0.7);
            let to = from + rng.gen_range(0.05..duration_s * 0.4);
            plan = plan.partition(w, from, to);
        }
    }
    for _ in 0..rng.gen_range(0..3u32) {
        let w = rng.gen_range(0..workers);
        let from = rng.gen_range(0.0..duration_s * 0.8);
        let to = from + rng.gen_range(0.05..duration_s * 0.5);
        plan = plan.slowdown(w, from, to, rng.gen_range(1.5..8.0));
    }
    if rng.gen::<f64>() < 0.4 {
        let from = rng.gen_range(0.0..duration_s * 0.6);
        let to = from + rng.gen_range(0.1..duration_s * 0.4);
        plan = plan.surge(from, to, rng.gen_range(1.5..4.0));
    }
    plan
}

/// Short label of the enabled mechanisms, e.g. `"TRA"` (timeout,
/// retry, admission), `"S"` marking an elastic (autoscaled) run, `"D"`
/// a failure-detector run, or `"-"` for a noop policy.
fn mechanisms_label(p: &ResiliencePolicy, autoscaled: bool, detected: bool) -> String {
    let mut s = String::new();
    if p.timeout.enabled {
        s.push('T');
        if p.retry.max_retries > 0 {
            s.push('R');
        }
    }
    if p.hedge.enabled {
        s.push('H');
    }
    if p.admission.enabled {
        s.push('A');
    }
    if autoscaled {
        s.push('S');
    }
    if detected {
        s.push('D');
    }
    if s.is_empty() {
        s.push('-');
    }
    s
}

/// Runs the invariant battery over one run's two executions.
#[allow(clippy::too_many_arguments)]
fn check_invariants(
    r1: &SimulationReport,
    r2: &SimulationReport,
    e1: &[Event],
    e2: &[Event],
    policy: &ResiliencePolicy,
    autoscale: Option<&AutoscalePolicy>,
    health: Option<&HealthPolicy>,
    plan: &FaultPlan,
    fail: &mut impl FnMut(&str, String),
) {
    check_health_invariants(r1, e1, plan, health, autoscale.is_some(), fail);
    // Determinism: same seed, byte-identical serialized report and
    // identical event stream.
    let j1 = serde_json::to_string(r1).expect("reports serialize");
    let j2 = serde_json::to_string(r2).expect("reports serialize");
    if j1 != j2 {
        fail("determinism:report", format!("{j1} != {j2}"));
    }
    if e1 != e2 {
        let at = e1
            .iter()
            .zip(e2.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(e1.len().min(e2.len()));
        fail(
            "determinism:events",
            format!(
                "streams diverge at index {at} ({} vs {} events)",
                e1.len(),
                e2.len()
            ),
        );
    }

    // Conservation: exactly one terminal state per arrival; anomalies
    // cover double-terminals (completed AND shed) and orphans.
    let c = conservation(e1);
    if !c.holds() {
        fail("conservation", format!("{c:?}"));
    }

    // Counter agreement: trace-derived aggregates match the engine's
    // own counters.
    let a = aggregates(e1);
    let pairs = [
        ("arrivals", a.arrivals, r1.total_arrivals),
        ("served", a.served, r1.served),
        ("violations", a.violations, r1.violations),
        ("dropped", a.dropped, r1.dropped),
        ("timeouts", a.timeouts, r1.resilience.timeouts),
        ("retries", a.retries, r1.resilience.retries),
        (
            "hedges_issued",
            a.hedges_issued,
            r1.resilience.hedges_issued,
        ),
        (
            "hedges_cancelled",
            a.hedges_cancelled,
            r1.resilience.hedges_cancelled,
        ),
        ("admissions", a.admissions, r1.resilience.admission_shed),
    ];
    for (name, from_events, from_report) in pairs {
        if from_events != from_report {
            fail(
                "counter-agreement",
                format!("{name}: events say {from_events}, report says {from_report}"),
            );
        }
    }

    // Burn-rate agreement: the streaming SLO monitor's completion
    // universe is exactly the engine's — completions and violations
    // reconstructed from the event stream equal the report counters.
    let burn = burn_analysis(e1, BurnConfig::for_budget(0.1));
    if burn.completions != r1.served || burn.violations != r1.violations {
        fail(
            "burn-agreement",
            format!(
                "burn monitor saw {}/{} completions/violations, report says {}/{}",
                burn.completions, burn.violations, r1.served, r1.violations
            ),
        );
    }

    // Hedge-cancel consistency: first-wins accounting.
    let res = &r1.resilience;
    if res.hedges_cancelled > res.hedges_issued {
        fail(
            "hedge-consistency",
            format!(
                "{} cancelled > {} issued",
                res.hedges_cancelled, res.hedges_issued
            ),
        );
    }
    if res.hedge_wins > res.hedges_cancelled {
        fail(
            "hedge-consistency",
            format!(
                "{} wins > {} cancelled (a win implies the primary was cancelled)",
                res.hedge_wins, res.hedges_cancelled
            ),
        );
    }

    // Admission bounds: no enqueue past the cap (limbo exempt).
    if policy.admission.enabled {
        let cap = policy.admission.queue_cap as u32;
        for e in e1 {
            if let Event::Enqueue { queue, depth, .. } = e {
                if *queue != QueueId::Limbo && *depth > cap {
                    fail(
                        "admission-bounds",
                        format!("enqueue at depth {depth} past cap {cap} on {queue:?}"),
                    );
                    break;
                }
            }
        }
    }

    // Elastic-capacity invariants: the event stream, the report's
    // autoscale block, and the policy bounds must agree.
    if let Some(a) = autoscale {
        let Some(stats) = r1.autoscale.as_ref() else {
            fail(
                "autoscale-stats",
                "elastic run produced a report without an autoscale block".to_string(),
            );
            return;
        };
        let count = |pred: fn(&Event) -> bool| e1.iter().filter(|e| pred(e)).count() as u64;
        let scale_downs = count(|e| matches!(e, Event::ScaleDown { .. }));
        let drains = count(|e| matches!(e, Event::DrainComplete { .. }));
        // Drained-handoff: every scale-in eventually finishes draining
        // (within the horizon — the engine drains at the horizon too).
        if scale_downs != drains {
            fail(
                "drain-handoff",
                format!("{scale_downs} ScaleDown events but {drains} DrainComplete"),
            );
        }
        let pairs = [
            (
                "scale_ups",
                count(|e| matches!(e, Event::ScaleUp { .. })),
                stats.scale_ups,
            ),
            ("scale_downs", scale_downs, stats.scale_downs),
            ("drains_completed", drains, stats.drains_completed),
            (
                "warmups_completed",
                count(|e| matches!(e, Event::WorkerWarm { .. })),
                stats.warmups_completed,
            ),
            (
                "brownout_enters",
                count(|e| matches!(e, Event::BrownoutEnter { .. })),
                stats.brownout_enters,
            ),
            (
                "brownout_exits",
                count(|e| matches!(e, Event::BrownoutExit { .. })),
                stats.brownout_exits,
            ),
        ];
        for (name, from_events, from_report) in pairs {
            if from_events != from_report {
                fail(
                    "autoscale-counter-agreement",
                    format!("{name}: events say {from_events}, report says {from_report}"),
                );
            }
        }
        if stats.max_live_workers > a.max_workers {
            fail(
                "autoscale-bounds",
                format!(
                    "live pool peaked at {} past max_workers {}",
                    stats.max_live_workers, a.max_workers
                ),
            );
        }
        if stats.brownout_exits > stats.brownout_enters {
            fail(
                "brownout-pairing",
                format!(
                    "{} exits > {} enters",
                    stats.brownout_exits, stats.brownout_enters
                ),
            );
        }
    } else if r1.autoscale.is_some() {
        fail(
            "autoscale-stats",
            "non-elastic run produced an autoscale block".to_string(),
        );
    }

    // Terminal counts never exceed arrivals.
    if r1.served + r1.dropped > r1.total_arrivals {
        fail(
            "accounting",
            format!(
                "served {} + dropped {} > arrivals {}",
                r1.served, r1.dropped, r1.total_arrivals
            ),
        );
    }
}

/// The failure-detector invariant battery (DESIGN.md §14), replayed
/// purely from telemetry plus the fault plan's ground truth.
#[allow(clippy::too_many_lines)]
fn check_health_invariants(
    r1: &SimulationReport,
    e1: &[Event],
    plan: &FaultPlan,
    health: Option<&HealthPolicy>,
    autoscaled: bool,
    fail: &mut impl FnMut(&str, String),
) {
    let count = |pred: fn(&Event) -> bool| e1.iter().filter(|e| pred(e)).count() as u64;
    let Some(hp) = health else {
        // Detector off: no health block, no health telemetry at all.
        if r1.health.is_some() {
            fail(
                "health-off",
                "detector-off run produced a health block".to_string(),
            );
        }
        let stray = count(|e| {
            matches!(
                e,
                Event::ProbeSent { .. }
                    | Event::ProbeFailed { .. }
                    | Event::Suspect { .. }
                    | Event::Reinstate { .. }
                    | Event::BreakerOpen { .. }
                    | Event::BreakerHalfOpen { .. }
                    | Event::BreakerClose { .. }
            )
        });
        if stray > 0 {
            fail(
                "health-off",
                format!("detector-off run emitted {stray} health events"),
            );
        }
        return;
    };
    let Some(stats) = r1.health.as_ref() else {
        fail(
            "health-stats",
            "detector run produced a report without a health block".to_string(),
        );
        return;
    };

    // Counter agreement: trace-derived health aggregates match the
    // report's health block field for field.
    let pairs = [
        (
            "probes_sent",
            count(|e| matches!(e, Event::ProbeSent { .. })),
            stats.probes_sent,
        ),
        (
            "probes_failed",
            count(|e| matches!(e, Event::ProbeFailed { .. })),
            stats.probes_failed,
        ),
        (
            "suspects",
            count(|e| matches!(e, Event::Suspect { .. })),
            stats.suspects,
        ),
        (
            "suspects_genuine",
            count(|e| matches!(e, Event::Suspect { genuine: true, .. })),
            stats.suspects_genuine,
        ),
        (
            "reinstates",
            count(|e| matches!(e, Event::Reinstate { .. })),
            stats.reinstates,
        ),
        (
            "breaker_opens",
            count(|e| matches!(e, Event::BreakerOpen { .. })),
            stats.breaker_opens,
        ),
        (
            "breaker_half_opens",
            count(|e| matches!(e, Event::BreakerHalfOpen { .. })),
            stats.breaker_half_opens,
        ),
        (
            "breaker_closes",
            count(|e| matches!(e, Event::BreakerClose { .. })),
            stats.breaker_closes,
        ),
    ];
    for (name, from_events, from_report) in pairs {
        if from_events != from_report {
            fail(
                "health-counter-agreement",
                format!("{name}: events say {from_events}, report says {from_report}"),
            );
        }
    }

    // Breaker DFA: per worker, transitions must follow
    // Closed →(open) Open →(half-open) HalfOpen →(close | re-open), and
    // every Closed→Open pairs with a Suspect, every Close with a
    // Reinstate.
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum B {
        Closed,
        Open,
        Half,
    }
    let mut state: std::collections::HashMap<u32, B> = std::collections::HashMap::new();
    let mut closed_to_open = 0u64;
    for e in e1 {
        match e {
            Event::BreakerOpen { worker, .. } => {
                let s = state.entry(*worker).or_insert(B::Closed);
                match *s {
                    B::Closed => closed_to_open += 1,
                    B::Half => {}
                    B::Open => fail(
                        "breaker-dfa",
                        format!("worker {worker}: BreakerOpen while already Open"),
                    ),
                }
                *s = B::Open;
            }
            Event::BreakerHalfOpen { worker, .. } => {
                let s = state.entry(*worker).or_insert(B::Closed);
                if *s != B::Open {
                    fail(
                        "breaker-dfa",
                        format!("worker {worker}: BreakerHalfOpen from {s:?}"),
                    );
                }
                *s = B::Half;
            }
            Event::BreakerClose { worker, .. } => {
                let s = state.entry(*worker).or_insert(B::Closed);
                if *s != B::Half {
                    fail(
                        "breaker-dfa",
                        format!("worker {worker}: BreakerClose from {s:?}"),
                    );
                }
                *s = B::Closed;
            }
            _ => {}
        }
    }
    if closed_to_open != stats.suspects {
        fail(
            "breaker-pairing",
            format!(
                "{closed_to_open} Closed→Open transitions but {} suspects",
                stats.suspects
            ),
        );
    }
    if stats.reinstates != stats.breaker_closes {
        fail(
            "breaker-pairing",
            format!(
                "{} reinstates != {} breaker closes",
                stats.reinstates, stats.breaker_closes
            ),
        );
    }

    // Every genuine suspicion's measured detection lag is within the
    // policy's provable bound.
    let detection_bound_s = hp.detection_bound_s();
    let suspects: Vec<(u32, u64, bool)> = e1
        .iter()
        .filter_map(|e| match e {
            Event::Suspect {
                at,
                worker,
                genuine,
                lag_ns,
            } => {
                if *genuine && (*lag_ns as f64) / 1e9 > detection_bound_s + 1e-6 {
                    fail(
                        "detection-bound",
                        format!(
                            "worker {worker} suspected with lag {:.4}s past bound {:.4}s",
                            (*lag_ns as f64) / 1e9,
                            detection_bound_s
                        ),
                    );
                }
                Some((*worker, *at, *genuine))
            }
            _ => None,
        })
        .collect();
    let reinstates: Vec<(u32, u64)> = e1
        .iter()
        .filter_map(|e| match e {
            Event::Reinstate { at, worker, .. } => Some((*worker, *at)),
            _ => None,
        })
        .collect();

    // The liveness halves need probe runway and a pool the autoscaler
    // is not reshaping underneath the detector.
    let Some(last_tick_s) = e1.iter().rev().find_map(|e| match e {
        Event::ProbeSent { at, .. } => Some(*at as f64 / 1e9),
        _ => None,
    }) else {
        return;
    };
    if autoscaled {
        return;
    }

    // Every explicit crash with enough probe runway before recovery is
    // genuinely suspected within the detection bound — unless the
    // worker was already under suspicion when it went down.
    for e in &plan.events {
        let FaultEvent::WorkerCrash { worker, at_s } = e else {
            continue;
        };
        let w = *worker as u32;
        let c = *at_s;
        let recover_s = plan
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::WorkerRecover {
                    worker: rw,
                    at_s: r,
                } if *rw == *worker && *r >= c => Some(*r),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        let deadline = c + detection_bound_s;
        if deadline > recover_s.min(last_tick_s) {
            continue; // not enough runway to demand detection
        }
        let opens_before = suspects
            .iter()
            .filter(|(sw, t, _)| *sw == w && (*t as f64) / 1e9 <= c)
            .count();
        let closes_before = reinstates
            .iter()
            .filter(|(rw, t)| *rw == w && (*t as f64) / 1e9 <= c)
            .count();
        if opens_before > closes_before {
            continue; // already suspected when it crashed
        }
        let detected = suspects.iter().any(|(sw, t, genuine)| {
            *sw == w && *genuine && {
                let t_s = (*t as f64) / 1e9;
                t_s >= c && t_s <= deadline + 1e-6
            }
        });
        if !detected {
            fail(
                "detection-liveness",
                format!("worker {w} crashed at {c:.3}s, no genuine Suspect by {deadline:.3}s"),
            );
        }
    }

    // Every false suspicion on a worker that never (re)crashes is
    // reinstated within the reinstatement bound of the last gray
    // disturbance touching it.
    let reinstate_bound_s = hp.reinstate_bound_s();
    for (w, t, genuine) in &suspects {
        if *genuine {
            continue;
        }
        let t_s = (*t as f64) / 1e9;
        let crashes_later = plan.events.iter().any(|e| match e {
            FaultEvent::WorkerCrash { worker, at_s } => *worker as u32 == *w && *at_s >= t_s,
            FaultEvent::WorkerFlap { worker, to_s, .. } => *worker as u32 == *w && *to_s >= t_s,
            _ => false,
        });
        if crashes_later {
            continue;
        }
        let mut quiet_s = t_s;
        for e in &plan.events {
            match e {
                FaultEvent::HeartbeatPartition { worker, to_s, .. }
                | FaultEvent::WorkerErrorRate { worker, to_s, .. }
                | FaultEvent::WorkerSlowdown { worker, to_s, .. }
                    if *worker as u32 == *w =>
                {
                    quiet_s = quiet_s.max(*to_s);
                }
                _ => {}
            }
        }
        let deadline = quiet_s + reinstate_bound_s;
        if deadline > last_tick_s {
            continue; // probes stop before the bound can be enforced
        }
        let reinstated = reinstates.iter().any(|(rw, rt)| {
            *rw == *w && {
                let rt_s = (*rt as f64) / 1e9;
                rt_s >= t_s && rt_s <= deadline + 1e-6
            }
        });
        if !reinstated {
            fail(
                "reinstate-liveness",
                format!(
                    "worker {w} falsely suspected at {t_s:.3}s, not reinstated by {deadline:.3}s"
                ),
            );
        }
    }
}

/// One randomized run's shape and headline counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRunSummary {
    /// Run index within the sweep.
    pub run: u32,
    /// The run's derived seed (reproduces it alone).
    pub seed: u64,
    /// Randomized cluster size.
    pub workers: u32,
    /// Randomized run length, seconds.
    pub duration_s: f64,
    /// Randomized offered load, queries per second.
    pub load_qps: f64,
    /// Routing discipline exercised.
    pub routing: String,
    /// Whether stochastic latency was used.
    pub stochastic: bool,
    /// Enabled mechanisms, as a `TRHA` subset (`-` = none).
    pub mechanisms: String,
    /// Sampled arrivals.
    pub arrivals: u64,
    /// Queries served.
    pub served: u64,
    /// Queries dropped (all causes).
    pub dropped: u64,
    /// Dispatch timeouts fired.
    pub timeouts: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Hedge duplicates issued.
    pub hedges: u64,
    /// Queries refused by admission control.
    pub admission_shed: u64,
    /// Whether the run drew an elastic (autoscaled) capacity policy.
    pub autoscaled: bool,
    /// Scale-out decisions taken (0 for fixed pools).
    pub scale_ups: u64,
    /// Scale-in decisions taken (0 for fixed pools).
    pub scale_downs: u64,
    /// Brownout ladder engagements (0 for fixed pools).
    pub brownout_enters: u64,
    /// Snapshots taken by the kill–resume dimension (0 when off).
    pub checkpoints: u64,
    /// Event count of the randomly chosen kill point the run resumed
    /// from (`None` when the dimension is off or no snapshot landed).
    pub resumed_from: Option<u64>,
    /// Decision records emitted by the provenance-recording execution.
    pub decisions: u64,
    /// Whether the run drew an enabled failure detector.
    pub detected: bool,
    /// Suspicions raised by the detector (0 when off).
    pub suspects: u64,
    /// Workers reinstated after suspicion (0 when off).
    pub reinstates: u64,
    /// Circuit-breaker open transitions (0 when off).
    pub breaker_opens: u64,
}

/// One violated invariant, with everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosFailure {
    /// Run index within the sweep.
    pub run: u32,
    /// The run's derived seed — rerun with this to reproduce.
    pub seed: u64,
    /// Which invariant broke.
    pub invariant: String,
    /// What was observed.
    pub detail: String,
}

/// The outcome of a chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Master seed of the sweep.
    pub seed: u64,
    /// Runs requested.
    pub runs_requested: u32,
    /// Per-run summaries (setup failures produce no summary).
    pub runs: Vec<ChaosRunSummary>,
    /// Every violated invariant across the sweep.
    pub failures: Vec<ChaosFailure>,
}

impl ChaosReport {
    /// True when every run passed every invariant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// One-line human summary, naming the first reproducing seed on
    /// failure.
    pub fn summary(&self) -> String {
        let exercised: u64 = self.runs.iter().map(|r| r.arrivals).sum();
        match self.failures.first() {
            None => format!(
                "chaos sweep PASSED: {} runs, {} queries, 0 invariant violations (seed {:#x})",
                self.runs.len(),
                exercised,
                self.seed
            ),
            Some(f) => format!(
                "chaos sweep FAILED: {} violation(s); first: run {} [{}] {} — reproduce with seed {:#x}",
                self.failures.len(),
                f.run,
                f.invariant,
                f.detail,
                f.seed
            ),
        }
    }

    /// Panics with the reproducing seed when any invariant failed
    /// (test/CI convenience).
    ///
    /// # Panics
    ///
    /// Panics with [`Self::summary`] when the sweep failed.
    pub fn expect_pass(&self) {
        assert!(self.passed(), "{}", self.summary());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64, runs: u32) -> ChaosConfig {
        ChaosConfig {
            seed,
            runs,
            max_workers: 3,
            max_duration_s: 1.0,
            max_load_qps: 80.0,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn small_sweep_passes_all_invariants() {
        let report = tiny(7, 6).run_sweep().unwrap();
        assert_eq!(report.runs.len(), 6);
        report.expect_pass();
        // The sweep actually exercised the space: some run enabled a
        // mechanism and queries flowed.
        assert!(report.runs.iter().any(|r| r.mechanisms != "-"));
        assert!(report.runs.iter().map(|r| r.arrivals).sum::<u64>() > 100);
    }

    #[test]
    fn full_default_sweep_passes_all_invariants() {
        // The acceptance bar: 100 randomized plans at the default
        // knobs, every invariant holding.
        let config = ChaosConfig::default();
        assert_eq!(config.runs, 100);
        let report = config.run_sweep().unwrap();
        assert_eq!(report.runs.len(), 100);
        report.expect_pass();
        // The randomization covered the space: every mechanism letter
        // appears somewhere, and at least one run combined several.
        for letter in ["T", "R", "H", "A", "S", "D"] {
            assert!(
                report.runs.iter().any(|r| r.mechanisms.contains(letter)),
                "no run enabled mechanism {letter}"
            );
        }
        assert!(report.runs.iter().any(|r| r.mechanisms.len() >= 3));
        // The elastic dimension genuinely moved the pool somewhere, and
        // fixed-pool runs carried no autoscale artifacts.
        assert!(report.runs.iter().any(|r| r.autoscaled && r.scale_ups > 0));
        assert!(report
            .runs
            .iter()
            .filter(|r| !r.autoscaled)
            .all(|r| r.scale_ups == 0 && r.scale_downs == 0 && r.brownout_enters == 0));
    }

    #[test]
    fn kill_resume_sweep_is_byte_identical() {
        // The durability acceptance bar: ≥50 randomized scenarios, each
        // killed at a random checkpoint and resumed, with byte-identity
        // of the resumed report + telemetry suffix demanded everywhere
        // (alongside the full standing invariant battery).
        let config = ChaosConfig {
            kill_resume: true,
            ..tiny(29, 50)
        };
        let report = config.run_sweep().unwrap();
        assert_eq!(report.runs.len(), 50);
        report.expect_pass();
        // The dimension genuinely exercised kills: snapshots landed and
        // a healthy share of runs resumed from one.
        assert!(report.runs.iter().map(|r| r.checkpoints).sum::<u64>() > 50);
        let resumed = report
            .runs
            .iter()
            .filter(|r| r.resumed_from.is_some())
            .count();
        assert!(resumed >= 20, "only {resumed}/50 runs resumed");
        // Fixed and elastic pools both went through a kill.
        assert!(report
            .runs
            .iter()
            .any(|r| r.autoscaled && r.resumed_from.is_some()));
        assert!(report
            .runs
            .iter()
            .any(|r| !r.autoscaled && r.resumed_from.is_some()));
    }

    #[test]
    fn forced_health_sweep_passes_all_invariants() {
        // The robustness acceptance bar: ≥50 randomized scenarios with
        // the failure detector forced on, gray-failure physics in the
        // plan generator, and the full invariant battery (breaker DFA,
        // detection/reinstatement bounds, counter agreement) holding.
        let config = ChaosConfig {
            health: true,
            ..tiny(41, 50)
        };
        let report = config.run_sweep().unwrap();
        assert_eq!(report.runs.len(), 50);
        report.expect_pass();
        // The dimension genuinely exercised the detector: every run
        // drew one, suspicion fired somewhere, breakers cycled, and at
        // least one false suspicion healed.
        assert!(report.runs.iter().all(|r| r.detected));
        assert!(report.runs.iter().map(|r| r.suspects).sum::<u64>() >= 10);
        assert!(report.runs.iter().any(|r| r.breaker_opens > r.suspects));
        assert!(report.runs.iter().any(|r| r.reinstates > 0));
    }

    #[test]
    fn sampling_invariants_hold_over_a_randomized_sweep() {
        // ≥50 randomized scenarios, each re-run through the
        // query-coherent sampling sink at a seeded rate drawn from
        // {1.0, 0.5, 0.1, 0.01}: report identity, exact-subsequence,
        // query coherence, and conservation all hold.
        let report = tiny(0x5A_4D71, 50).run_sweep().unwrap();
        assert_eq!(report.runs.len(), 50);
        report.expect_pass();
    }

    #[test]
    fn sweeps_are_reproducible() {
        let a = tiny(11, 4).run_sweep().unwrap();
        let b = tiny(11, 4).run_sweep().unwrap();
        assert_eq!(a, b);
        assert_ne!(a.runs, tiny(12, 4).run_sweep().unwrap().runs);
    }

    #[test]
    fn sabotage_reports_the_reproducing_seed() {
        let mut config = tiny(3, 2);
        config.sabotage = true;
        let report = config.run_sweep().unwrap();
        assert!(!report.passed());
        let f = &report.failures[0];
        assert_eq!(f.seed, config.run_seed(f.run));
        assert!(report.summary().contains(&format!("{:#x}", f.seed)));
        assert_eq!(f.invariant, "counter-agreement");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for bad in [
            ChaosConfig {
                runs: 0,
                ..ChaosConfig::default()
            },
            ChaosConfig {
                max_workers: 0,
                ..ChaosConfig::default()
            },
            ChaosConfig {
                max_duration_s: f64::NAN,
                ..ChaosConfig::default()
            },
            ChaosConfig {
                max_load_qps: -5.0,
                ..ChaosConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
            assert!(bad.run_sweep().is_err());
        }
    }
}
