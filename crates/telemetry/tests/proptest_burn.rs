//! Property tests for SLO burn-rate alerting (ISSUE 8 satellite):
//! over randomized completion streams and monitor configurations,
//! alert Enter/Exit events must strictly alternate (every Exit pairs
//! with a preceding Enter), consecutive transitions must never flap
//! inside the confirmation window, and the burn rate reconstructed
//! from the event stream must equal the direct counters exactly.

use proptest::prelude::*;

use ramsis_telemetry::{aggregates, burn_analysis, BurnAlertKind, BurnConfig, BurnMonitor, Event};

/// Assembles a valid monitor configuration from raw samples: the slow
/// window is a multiple of the fast one and the exit threshold range
/// sits strictly below the enter range, so `validate` always passes.
fn config_of(budget: f64, fast: u64, mult: u64, enter: f64, exit: f64, confirm: u64) -> BurnConfig {
    BurnConfig {
        budget,
        fast_window_ns: fast,
        slow_window_ns: fast * mult,
        enter_burn: enter,
        exit_burn: exit,
        confirm_ns: confirm,
    }
}

/// Expands bursty phases — `(gap, count, violated)` triples — into a
/// time-ordered completion stream that crosses the alert thresholds in
/// both directions.
fn stream_of(phases: &[(u64, u64, bool)]) -> Vec<(u64, bool)> {
    let mut at = 0u64;
    let mut out = Vec::new();
    for &(gap, count, violated) in phases {
        for _ in 0..count {
            at += gap;
            out.push((at, violated));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Enter/Exit strictly alternate starting with Enter (so every
    /// Exit pairs with the Enter before it), and consecutive
    /// transitions are always at least the confirmation interval
    /// apart — the no-flap guarantee of the Schmitt trigger.
    #[test]
    fn alerts_pair_and_never_flap(
        budget in 0.01f64..0.5,
        fast in 100u64..2_000,
        mult in 1u64..8,
        enter in 1.5f64..6.0,
        exit in 0.1f64..1.4,
        confirm in 10u64..500,
        phases in proptest::collection::vec((1u64..300, 1u64..40, proptest::bool::ANY), 1..12),
    ) {
        let cfg = config_of(budget, fast, mult, enter, exit, confirm);
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg);
        let mut monitor = BurnMonitor::new(cfg);
        let mut transitions = Vec::new();
        for &(at, violated) in &stream_of(&phases) {
            if let Some(alert) = monitor.observe(at, violated) {
                transitions.push(alert);
            }
        }
        let summary = monitor.summary();
        prop_assert_eq!(summary.alerts.as_slice(), transitions.as_slice());

        for (i, alert) in transitions.iter().enumerate() {
            let expected = if i % 2 == 0 {
                BurnAlertKind::Enter
            } else {
                BurnAlertKind::Exit
            };
            prop_assert_eq!(alert.kind, expected, "transition {} of {:?}", i, transitions);
        }
        for pair in transitions.windows(2) {
            prop_assert!(
                pair[1].at - pair[0].at >= cfg.confirm_ns,
                "flap: {:?} -> {:?} inside confirm window {}",
                pair[0],
                pair[1],
                cfg.confirm_ns
            );
        }
        // Alert state at end of stream is consistent with the
        // transition count.
        prop_assert_eq!(monitor.active(), transitions.len() % 2 == 1);
    }

    /// Burn computed from a recorded event stream equals the direct
    /// counters exactly: the analysis must see the same served /
    /// violated universe as the engine-side aggregates, and the
    /// overall burn must be their exact quotient over the budget.
    #[test]
    fn stream_burn_equals_counters_exactly(
        budget in 0.01f64..0.5,
        fast in 100u64..2_000,
        mult in 1u64..8,
        enter in 1.5f64..6.0,
        exit in 0.1f64..1.4,
        confirm in 10u64..500,
        phases in proptest::collection::vec((1u64..300, 1u64..40, proptest::bool::ANY), 1..12),
    ) {
        let cfg = config_of(budget, fast, mult, enter, exit, confirm);
        let events: Vec<Event> = stream_of(&phases)
            .iter()
            .enumerate()
            .map(|(q, &(at, violated))| Event::Complete {
                at,
                query: q as u64,
                worker: 0,
                model: 0,
                response_ns: 50,
                violated,
            })
            .collect();
        let summary = burn_analysis(&events, cfg);
        let agg = aggregates(&events);
        prop_assert_eq!(summary.completions, agg.served);
        prop_assert_eq!(summary.violations, agg.violations);
        if agg.served > 0 {
            let expected = (agg.violations as f64 / agg.served as f64) / cfg.budget;
            prop_assert_eq!(summary.overall_burn, expected);
        }
        prop_assert!(summary.peak_fast_burn >= 0.0);
    }
}
