//! Property tests for the compact binary event codec (ISSUE 10
//! satellite): over random event sequences — covering every field
//! shape the model has (varint ints, signed slack, strings, floats,
//! nested enums) — JSONL ⇄ binary ⇄ JSONL must be lossless and
//! byte-identical, truncating a binary stream anywhere must heal to a
//! whole-record prefix, and sampling metadata must survive both
//! encodings.

use proptest::prelude::*;

use ramsis_telemetry::{
    is_binary_stream, parse_bin_tolerant, parse_tolerant, write_bin, write_jsonl, Action, Event,
    QueueId, ShedCause,
};

/// Builds one event from raw samples. `kind` picks the variant and the
/// three integers (plus a flag) fill its fields, stretched across the
/// encoder's whole field-type zoo: u64/u32 varints (including the
/// full-width extremes), zig-zag i64, bool, String, f64, and the
/// nested `QueueId` / `ShedCause` / `Action` enums.
fn event_of(kind: u64, a: u64, b: u64, c: u64, flag: bool) -> Event {
    let at = a;
    let query = b;
    let worker = (c & 0xffff_ffff) as u32;
    let small = (c >> 32) as u32;
    let queue = match c % 3 {
        0 => QueueId::Central,
        1 => QueueId::Worker(worker),
        _ => QueueId::Limbo,
    };
    let cause = match c % 4 {
        0 => ShedCause::Hopeless,
        1 => ShedCause::QueueDepth,
        2 => ShedCause::Policy,
        _ => ShedCause::RetryExhausted,
    };
    let action = match c % 3 {
        0 => Action::Serve {
            model: small,
            batch: worker,
        },
        1 => Action::Drop { count: small },
        _ => Action::Idle,
    };
    // Finite non-negative floats: the engine only records magnitudes,
    // so the canonical stream never carries a negative zero (which the
    // JSONL side's shortest-round-trip formatting cannot preserve).
    let qps = (b % 10_000_000) as f64 / 1000.0;
    let label = |n: u64| format!("regime-{}", n % 100);
    match kind % 16 {
        0 => Event::Arrival {
            at,
            query,
            deadline: c,
        },
        1 => Event::Enqueue {
            at,
            query,
            queue,
            depth: small,
        },
        2 => Event::Dispatch {
            at,
            worker,
            model: small,
            batch: small ^ 1,
            depth: small >> 3,
        },
        3 => Event::Complete {
            at,
            query,
            worker,
            model: small,
            response_ns: c,
            violated: flag,
        },
        4 => Event::Shed { at, query, cause },
        5 => Event::Drop { at, query },
        6 => Event::CrashRequeue {
            at,
            query,
            from: worker,
        },
        7 => Event::PolicyDecision {
            at,
            worker,
            queued: small,
            // Zig-zag coverage: both signs, both extremes.
            slack_ns: i64::from_le_bytes(b.to_le_bytes()),
            action,
        },
        8 => Event::RegimeSwap {
            at,
            from: label(b),
            to: label(c),
            detection_delay_ns: c,
        },
        9 => Event::Timeout {
            at,
            query,
            worker,
            attempt: small,
        },
        10 => Event::Retry {
            at,
            query,
            attempt: small,
            delay_ns: c,
        },
        11 => Event::HedgeIssued {
            at,
            primary: worker,
            hedge: small,
            model: small >> 7,
            batch: worker & 0xff,
        },
        12 => Event::Admission {
            at,
            query,
            queue,
            depth: small,
            sojourn_ns: c,
        },
        13 => Event::BrownoutEnter {
            at,
            rung: small % 8,
            load_qps: qps,
            capacity_qps: qps * 0.75,
        },
        14 => Event::Suspect {
            at,
            worker,
            genuine: flag,
            lag_ns: if flag { c } else { 0 },
        },
        _ => Event::ScaleUp {
            at,
            worker,
            live: small,
        },
    }
}

/// Expands raw samples into an event stream.
fn stream_of(samples: &[(u64, u64, u64, u64, bool)]) -> Vec<Event> {
    samples
        .iter()
        .map(|&(kind, a, b, c, flag)| event_of(kind, a, b, c, flag))
        .collect()
}

/// Sampling metadata from raw samples: `None` for one third of draws,
/// otherwise a rate in (0, 1] with an arbitrary seed.
fn sampling_of(sel: u64, seed: u64) -> Option<(f64, u64)> {
    match sel % 3 {
        0 => None,
        1 => Some((1.0, seed)),
        _ => Some(((sel % 1000 + 1) as f64 / 1000.0, seed)),
    }
}

/// One raw sample: variant selector, three full-width integers (so
/// varint encodings hit 1-byte through 10-byte lengths), and a flag.
type RawSample = (
    std::ops::Range<u64>,
    Any<u64>,
    Any<u64>,
    Any<u64>,
    Any<bool>,
);

/// The strategy behind every test.
fn samples() -> proptest::collection::VecStrategy<RawSample> {
    proptest::collection::vec(
        (
            0u64..16,
            proptest::num::u64::ANY,
            proptest::num::u64::ANY,
            proptest::num::u64::ANY,
            proptest::bool::ANY,
        ),
        0..60,
    )
}

use proptest::Any;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binary encode → tolerant decode is the identity on events and
    /// sampling metadata, and the stream self-identifies by magic.
    #[test]
    fn binary_encoding_round_trips(
        raw in samples(),
        sel in 0u64..6,
        seed in proptest::num::u64::ANY,
    ) {
        let events = stream_of(&raw);
        let sampling = sampling_of(sel, seed);
        let bin = write_bin(&events, sampling);
        prop_assert!(is_binary_stream(&bin));
        let parsed = parse_bin_tolerant(&bin).unwrap();
        prop_assert_eq!(&parsed.events, &events);
        prop_assert!(parsed.torn_tail.is_none());
        prop_assert_eq!(parsed.unknown_events, 0);
        prop_assert_eq!(parsed.sample_rate, sampling.map(|(r, _)| r));
        prop_assert_eq!(parsed.sample_seed, sampling.map(|(_, s)| s));
        // The auto-detecting entry point agrees exactly.
        prop_assert_eq!(parse_tolerant(&bin).unwrap(), parsed);
    }

    /// JSONL ⇄ binary ⇄ JSONL is lossless: converting a stream to the
    /// other encoding and back reproduces the original bytes exactly,
    /// in both directions.
    #[test]
    fn jsonl_binary_jsonl_conversion_is_byte_identical(
        raw in samples(),
        sel in 0u64..6,
        seed in proptest::num::u64::ANY,
    ) {
        let events = stream_of(&raw);
        let sampling = sampling_of(sel, seed);
        let jsonl = write_jsonl(&events, sampling);
        let parsed = parse_tolerant(jsonl.as_bytes()).unwrap();
        prop_assert_eq!(&parsed.events, &events);
        let meta = parsed.sample_rate.zip(parsed.sample_seed);
        prop_assert_eq!(meta, sampling);

        let bin = write_bin(&parsed.events, meta);
        let back = parse_tolerant(&bin).unwrap();
        let jsonl2 = write_jsonl(&back.events, back.sample_rate.zip(back.sample_seed));
        prop_assert_eq!(&jsonl2, &jsonl, "JSONL → binary → JSONL must be identity");

        // And binary-first: the binary bytes regenerate exactly too.
        let bin2 = write_bin(&back.events, back.sample_rate.zip(back.sample_seed));
        prop_assert_eq!(bin2, bin, "binary → JSONL → binary must be identity");
    }

    /// Chopping a binary stream at any byte boundary past the header
    /// heals to a whole-record prefix: no parse error, no partial
    /// event, and the torn tail's reported offset truncates cleanly.
    #[test]
    fn truncated_binary_stream_heals_to_a_prefix(
        raw in samples(),
        cut_frac in 0.0f64..1.0,
    ) {
        let events = stream_of(&raw);
        let bin = write_bin(&events, None);
        let header_len = write_bin(&[], None).len();
        let cut = header_len + ((bin.len() - header_len) as f64 * cut_frac) as usize;
        let parsed = parse_bin_tolerant(&bin[..cut]).unwrap();
        prop_assert!(parsed.events.len() <= events.len());
        prop_assert_eq!(
            &parsed.events[..],
            &events[..parsed.events.len()],
            "healed prefix must be exactly the leading whole records"
        );
        if let Some(offset) = parsed.torn_tail_offset {
            prop_assert!(parsed.torn_tail.is_some());
            let healed = parse_bin_tolerant(&bin[..offset]).unwrap();
            prop_assert!(healed.torn_tail.is_none());
            prop_assert_eq!(healed.events, parsed.events);
        } else {
            // Clean cut on a record boundary: nothing was torn.
            prop_assert!(parsed.torn_tail.is_none());
        }
    }
}
