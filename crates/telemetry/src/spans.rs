//! Per-query span reconstruction and critical-path analysis.
//!
//! Folds a recorded [`Event`] stream back into one span per query —
//! enqueue → admission → dispatch → `[retry | hedge]*` →
//! completion/shed — and attributes every nanosecond of each query's
//! life to exactly one critical-path segment:
//!
//! - **wait**: ready-to-serve but queued (arrival or retry re-entry up
//!   to the dispatch that eventually acts);
//! - **service**: the dispatch that terminated the query (for a hedge
//!   win, the hedge side's run);
//! - **wasted**: service on dispatches that timed out and were
//!   abandoned;
//! - **backoff**: retry delays between a timeout and re-routing;
//! - **hedge overlap**: time the winning hedge's primary had already
//!   been running when the duplicate was issued.
//!
//! The attribution telescopes: for every completed query,
//! `wait + service + wasted + backoff + hedge_overlap` equals the
//! engine's measured `response_ns` *exactly* (integer nanoseconds, no
//! rounding) — the conservation property the integration suite pins.
//!
//! Reconstruction never needs query ids on [`Event::Dispatch`] (the
//! stream doesn't carry them): since a worker serves one dispatch at a
//! time and the stream is in simulation order, the dispatch a
//! completion or timeout refers to is always the worker's most recent
//! one. Crash-displaced time cannot be split the same way (the stream
//! does not say which displaced queries were in flight), so it is
//! classified as wait — the telescoping sum stays exact.

use std::collections::BTreeMap;

use ramsis_stats::LogHistogram;
use serde::{Deserialize, Serialize};

use crate::event::{Event, Nanos, ShedCause};

/// How a query's span ended.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanOutcome {
    /// Served to completion.
    Completed {
        /// Worker that finished it.
        worker: u32,
        /// Model that served it.
        model: u32,
        /// Whether the completion missed the deadline.
        violated: bool,
    },
    /// Shed without service.
    Shed {
        /// Why it was shed.
        cause: ShedCause,
    },
    /// Lost to a crash (`CrashPolicy::Drop`).
    Dropped,
    /// Refused at enqueue by admission control.
    AdmissionRefused,
    /// No terminal event in the log (truncated trace or mid-run
    /// snapshot).
    InFlight,
}

/// One query's reconstructed lifecycle with critical-path attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpan {
    /// Query id (arrival index).
    pub query: u64,
    /// Arrival time.
    pub arrival: Nanos,
    /// Absolute deadline stamped at arrival.
    pub deadline: Nanos,
    /// Terminal state.
    pub outcome: SpanOutcome,
    /// Time of the terminal event (`None` for [`SpanOutcome::InFlight`]).
    pub terminal_at: Option<Nanos>,
    /// The engine's measured response time (completions only).
    pub response_ns: Option<Nanos>,
    /// Queued-and-ready time.
    pub wait_ns: Nanos,
    /// Service time of the terminating dispatch.
    pub service_ns: Nanos,
    /// Service time lost to timed-out dispatches.
    pub wasted_ns: Nanos,
    /// Retry backoff delay.
    pub backoff_ns: Nanos,
    /// Primary run time already elapsed when the winning hedge was
    /// issued.
    pub hedge_overlap_ns: Nanos,
    /// Dispatch attempts that timed out.
    pub timeouts: u32,
    /// Whether a hedge was in play on the terminating dispatch.
    pub hedged: bool,
}

impl QuerySpan {
    /// Sum of all attributed segments.
    pub fn segment_sum(&self) -> Nanos {
        self.wait_ns + self.service_ns + self.wasted_ns + self.backoff_ns + self.hedge_overlap_ns
    }

    /// For completed spans, whether the segments sum to the measured
    /// response time exactly; `None` otherwise.
    pub fn conserved(&self) -> Option<bool> {
        self.response_ns.map(|r| self.segment_sum() == r)
    }
}

/// The reconstructed spans of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanLog {
    /// One span per query with an observed arrival, in id order.
    pub spans: Vec<QuerySpan>,
    /// Lifecycle events referencing queries with no arrival in the log
    /// (truncated-head traces).
    pub orphan_events: u64,
    /// Spans where a dispatch record was missing at attribution time
    /// (truncated traces); their remainder was attributed coarsely but
    /// the telescoping sum is still exact.
    pub degraded_spans: u64,
    /// Scaling-lag windows: `(scale_up, worker_warm)` intervals during
    /// which capacity had been requested but was not yet live. A window
    /// still open at end of log extends to `Nanos::MAX`.
    pub warming_windows: Vec<(Nanos, Nanos)>,
    /// Brownout windows: `(enter, exit)` intervals during which the
    /// scheme was degrading model choices. A window still open at end
    /// of log extends to `Nanos::MAX`.
    pub brownout_windows: Vec<(Nanos, Nanos)>,
    /// Detection-lag windows: `(actual_failure, suspicion)` intervals
    /// during which a worker was really down but the failure detector
    /// had not ejected it yet (reconstructed from genuine
    /// [`Event::Suspect`] records and their stamped lag). Empty when
    /// the health subsystem is off — the oracle engine pays no lag.
    pub detection_lag_windows: Vec<(Nanos, Nanos)>,
    /// False-suspicion windows: `(suspect, reinstate)` intervals during
    /// which a healthy worker was wrongly ejected from perceived
    /// membership. A window still open at end of log extends to
    /// `Nanos::MAX`.
    pub false_suspicion_windows: Vec<(Nanos, Nanos)>,
    /// The stream's sampling rate when it was recorded through a
    /// [`crate::SamplingSink`] (`None`: complete stream, counts are
    /// exact). Set by [`reconstruct_spans_sampled`].
    pub sample_rate: Option<f64>,
    /// Estimated queries removed by sampling — boring on-time
    /// completions absent from this log: `boring · (1/rate − 1)`.
    /// They are *sampled out*, not degraded: every span present
    /// reconstructs fully, because a kept query keeps all its events.
    pub est_sampled_out: f64,
}

/// Whether `at` falls inside any `(start, end)` window (half-open on
/// the right so a completion at the exact warm-up instant is not
/// blamed on scaling lag).
fn in_windows(windows: &[(Nanos, Nanos)], at: Nanos) -> bool {
    windows.iter().any(|&(start, end)| start <= at && at < end)
}

/// The most recent dispatch seen on a worker.
#[derive(Debug, Clone, Copy)]
struct DispatchRec {
    start: Nanos,
    /// The primary's dispatch start when this record is the duplicate
    /// side of a hedged pair.
    hedge_of_start: Option<Nanos>,
    /// True once a hedge was issued off this (primary) dispatch.
    had_hedge: bool,
}

#[derive(Debug, Clone)]
struct SpanBuilder {
    span: QuerySpan,
    /// When the query last became ready to serve (arrival, or retry
    /// re-entry time).
    ready: Nanos,
    degraded: bool,
}

/// Folds an event stream into per-query spans. Events must be in
/// emission (simulation) order — the order every sink preserves.
pub fn reconstruct_spans(events: &[Event]) -> SpanLog {
    let mut builders: BTreeMap<u64, SpanBuilder> = BTreeMap::new();
    let mut dispatches: BTreeMap<u32, DispatchRec> = BTreeMap::new();
    let mut orphan_events: u64 = 0;
    let mut warming_since: BTreeMap<u32, Nanos> = BTreeMap::new();
    let mut warming_windows: Vec<(Nanos, Nanos)> = Vec::new();
    let mut brownout_windows: Vec<(Nanos, Nanos)> = Vec::new();
    let mut brownout_open: Option<Nanos> = None;
    let mut brownout_depth: u32 = 0;
    let mut detection_lag_windows: Vec<(Nanos, Nanos)> = Vec::new();
    let mut false_suspect_since: BTreeMap<u32, Nanos> = BTreeMap::new();
    let mut false_suspicion_windows: Vec<(Nanos, Nanos)> = Vec::new();

    for ev in events {
        match *ev {
            Event::Arrival {
                at,
                query,
                deadline,
            } => {
                builders.insert(
                    query,
                    SpanBuilder {
                        span: QuerySpan {
                            query,
                            arrival: at,
                            deadline,
                            outcome: SpanOutcome::InFlight,
                            terminal_at: None,
                            response_ns: None,
                            wait_ns: 0,
                            service_ns: 0,
                            wasted_ns: 0,
                            backoff_ns: 0,
                            hedge_overlap_ns: 0,
                            timeouts: 0,
                            hedged: false,
                        },
                        ready: at,
                        degraded: false,
                    },
                );
            }
            Event::Dispatch { at, worker, .. } => {
                dispatches.insert(
                    worker,
                    DispatchRec {
                        start: at,
                        hedge_of_start: None,
                        had_hedge: false,
                    },
                );
            }
            Event::HedgeIssued {
                at, primary, hedge, ..
            } => {
                let primary_start = dispatches.get_mut(&primary).map(|rec| {
                    rec.had_hedge = true;
                    rec.start
                });
                dispatches.insert(
                    hedge,
                    DispatchRec {
                        start: at,
                        hedge_of_start: primary_start,
                        had_hedge: true,
                    },
                );
            }
            Event::HedgeCancelled { worker, .. } => {
                dispatches.remove(&worker);
            }
            Event::Complete {
                at,
                query,
                worker,
                model,
                response_ns,
                violated,
            } => {
                let Some(b) = builders.get_mut(&query) else {
                    orphan_events += 1;
                    continue;
                };
                match dispatches.get(&worker) {
                    Some(rec) => {
                        // For a hedge win the wait ended at the
                        // *primary's* dispatch; the stretch from there
                        // to the hedge issue is overlap, the rest is
                        // the winner's service.
                        let anchor = rec.hedge_of_start.unwrap_or(rec.start);
                        b.span.wait_ns += anchor.saturating_sub(b.ready);
                        b.span.hedge_overlap_ns += rec.start.saturating_sub(anchor);
                        b.span.service_ns += at.saturating_sub(rec.start);
                        b.span.hedged |= rec.had_hedge;
                    }
                    None => {
                        // Truncated trace: the dispatch record predates
                        // the log. The whole remainder is service so
                        // the telescoping sum stays exact.
                        b.span.service_ns += at.saturating_sub(b.ready);
                        b.degraded = true;
                    }
                }
                b.span.outcome = SpanOutcome::Completed {
                    worker,
                    model,
                    violated,
                };
                b.span.terminal_at = Some(at);
                b.span.response_ns = Some(response_ns);
            }
            Event::Timeout {
                at, query, worker, ..
            } => {
                let Some(b) = builders.get_mut(&query) else {
                    orphan_events += 1;
                    continue;
                };
                match dispatches.get(&worker) {
                    Some(rec) => {
                        b.span.wait_ns += rec.start.saturating_sub(b.ready);
                        b.span.wasted_ns += at.saturating_sub(rec.start);
                    }
                    None => {
                        b.span.wasted_ns += at.saturating_sub(b.ready);
                        b.degraded = true;
                    }
                }
                b.span.timeouts += 1;
                b.ready = at;
            }
            Event::Retry {
                at,
                query,
                delay_ns,
                ..
            } => {
                let Some(b) = builders.get_mut(&query) else {
                    orphan_events += 1;
                    continue;
                };
                b.span.backoff_ns += delay_ns;
                b.ready = at + delay_ns;
            }
            Event::Shed { at, query, cause } => {
                let Some(b) = builders.get_mut(&query) else {
                    orphan_events += 1;
                    continue;
                };
                b.span.wait_ns += at.saturating_sub(b.ready);
                b.span.outcome = SpanOutcome::Shed { cause };
                b.span.terminal_at = Some(at);
            }
            Event::Drop { at, query } => {
                let Some(b) = builders.get_mut(&query) else {
                    orphan_events += 1;
                    continue;
                };
                b.span.wait_ns += at.saturating_sub(b.ready);
                b.span.outcome = SpanOutcome::Dropped;
                b.span.terminal_at = Some(at);
            }
            Event::Admission { at, query, .. } => {
                let Some(b) = builders.get_mut(&query) else {
                    orphan_events += 1;
                    continue;
                };
                b.span.wait_ns += at.saturating_sub(b.ready);
                b.span.outcome = SpanOutcome::AdmissionRefused;
                b.span.terminal_at = Some(at);
            }
            // Queue placement and crash displacement do not move the
            // ready anchor: queued time keeps accruing as wait.
            Event::Enqueue { .. } | Event::CrashRequeue { .. } => {}
            // Scaling-lag bookkeeping: a worker is "lagging" between
            // the scale-up decision and the moment it turns live.
            Event::ScaleUp { at, worker, .. } => {
                warming_since.insert(worker, at);
            }
            Event::WorkerWarm { at, worker, .. } => {
                if let Some(start) = warming_since.remove(&worker) {
                    warming_windows.push((start, at));
                }
            }
            Event::BrownoutEnter { at, .. } => {
                if brownout_depth == 0 {
                    brownout_open = Some(at);
                }
                brownout_depth += 1;
            }
            Event::BrownoutExit { at, .. } => {
                brownout_depth = brownout_depth.saturating_sub(1);
                if brownout_depth == 0 {
                    if let Some(start) = brownout_open.take() {
                        brownout_windows.push((start, at));
                    }
                }
            }
            // Detection-lag bookkeeping: a genuine suspicion carries
            // the lag since the actual failure instant, so the blind
            // window is recoverable directly; a false suspicion opens a
            // wrong-ejection window that its reinstatement closes.
            Event::Suspect {
                at,
                worker,
                genuine,
                lag_ns,
            } => {
                if genuine {
                    if lag_ns > 0 {
                        detection_lag_windows.push((at.saturating_sub(lag_ns), at));
                    }
                } else {
                    false_suspect_since.entry(worker).or_insert(at);
                }
            }
            Event::Reinstate { at, worker, .. } => {
                if let Some(start) = false_suspect_since.remove(&worker) {
                    false_suspicion_windows.push((start, at));
                }
            }
            // Audit events carry no per-query time.
            Event::PolicyDecision { .. }
            | Event::RegimeSwap { .. }
            | Event::LazySolve { .. }
            | Event::FallbackEngaged { .. }
            | Event::ScaleDown { .. }
            | Event::DrainComplete { .. }
            | Event::ProbeSent { .. }
            | Event::ProbeFailed { .. }
            | Event::BreakerOpen { .. }
            | Event::BreakerHalfOpen { .. }
            | Event::BreakerClose { .. } => {}
        }
    }

    // A scale-up or brownout still open when the log ends keeps lagging
    // until the end of time — later completions stay attributable.
    for (_, start) in warming_since {
        warming_windows.push((start, Nanos::MAX));
    }
    if let Some(start) = brownout_open {
        brownout_windows.push((start, Nanos::MAX));
    }
    for (_, start) in false_suspect_since {
        false_suspicion_windows.push((start, Nanos::MAX));
    }

    let degraded_spans = builders.values().filter(|b| b.degraded).count() as u64;
    SpanLog {
        spans: builders.into_values().map(|b| b.span).collect(),
        orphan_events,
        degraded_spans,
        warming_windows,
        brownout_windows,
        detection_lag_windows,
        false_suspicion_windows,
        sample_rate: None,
        est_sampled_out: 0.0,
    }
}

/// Folds a *sampled* event stream into per-query spans, annotating the
/// log with its sampling provenance.
///
/// Reconstruction itself is identical to [`reconstruct_spans`]:
/// query-coherent sampling keeps every event of a kept query, so each
/// present span telescopes exactly, with zero orphans attributable to
/// sampling. The queries sampling removed are counted as
/// [`SpanLog::est_sampled_out`] — an estimate with explicit
/// provenance, not a silent gap and not a degraded span.
pub fn reconstruct_spans_sampled(events: &[Event], sample_rate: f64) -> SpanLog {
    let mut log = reconstruct_spans(events);
    let boring = crate::sample::query_weights(events, sample_rate)
        .values()
        .filter(|&&w| w != 1.0)
        .count() as f64;
    log.sample_rate = Some(sample_rate);
    log.est_sampled_out = if sample_rate < 1.0 {
        boring * (1.0 / sample_rate - 1.0)
    } else {
        0.0
    };
    log
}

/// Percentile summary of one critical-path segment across completed
/// queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Sum across completed queries, seconds.
    pub total_s: f64,
    /// Share of total response time (0 when no response time).
    pub share: f64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Largest observed value, nanoseconds.
    pub max_ns: u64,
}

impl SegmentStats {
    fn from_values<I: Iterator<Item = Nanos>>(values: I, response_total: f64) -> Self {
        let mut hist = LogHistogram::new();
        let mut total: u128 = 0;
        for v in values {
            hist.record(v);
            total += u128::from(v);
        }
        let total_s = total as f64 / 1e9;
        let pctl = |p: f64| hist.percentile(p).unwrap_or(0);
        Self {
            total_s,
            share: if response_total > 0.0 {
                total_s / response_total
            } else {
                0.0
            },
            p50_ns: pctl(50.0),
            p95_ns: pctl(95.0),
            p99_ns: pctl(99.0),
            max_ns: hist.max().unwrap_or(0),
        }
    }
}

/// The critical-path view of one trace: outcome counts, per-segment
/// response-time attribution, and the top-k slowest queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathReport {
    /// Queries with an observed arrival.
    pub queries: u64,
    /// Completed queries (the conservation universe).
    pub completed: u64,
    /// Completions that missed their deadline.
    pub violations: u64,
    /// Queries shed by policy or retry exhaustion.
    pub shed: u64,
    /// Queries lost to crashes.
    pub dropped: u64,
    /// Queries refused by admission control.
    pub admission_refused: u64,
    /// Queries with no terminal event in the log.
    pub in_flight: u64,
    /// Completed queries whose dispatch saw a hedge.
    pub hedged: u64,
    /// Completed queries that survived at least one timeout.
    pub retried: u64,
    /// Lifecycle events referencing unknown queries (truncated head).
    pub orphan_events: u64,
    /// Spans attributed coarsely because a dispatch record was missing.
    pub degraded_spans: u64,
    /// Completed spans whose segment sum differs from the measured
    /// response time (0 on any well-formed trace).
    pub conservation_violations: u64,
    /// Deadline violations whose completion landed inside a scaling-lag
    /// window (capacity requested but not yet warm) — the share of
    /// misses attributable to slow scale-up.
    pub violations_during_scale_lag: u64,
    /// Deadline violations whose completion landed inside a brownout
    /// window (the scheme was already degrading model choices).
    pub violations_during_brownout: u64,
    /// Deadline violations whose completion landed inside a
    /// detection-lag window (a worker was really down but the failure
    /// detector had not suspected it yet) — the share of misses
    /// attributable to suspicion running behind ground truth.
    pub violations_during_detection_lag: u64,
    /// Deadline violations whose completion landed inside a
    /// false-suspicion window (a healthy worker was wrongly ejected, so
    /// the pool ran short) — the cost of over-eager suspicion.
    pub violations_during_false_suspicion: u64,
    /// End-to-end response time across completed queries.
    pub response: SegmentStats,
    /// Queued-and-ready time.
    pub wait: SegmentStats,
    /// Terminating-dispatch service time.
    pub service: SegmentStats,
    /// Timed-out (abandoned) service time.
    pub wasted: SegmentStats,
    /// Retry backoff time.
    pub backoff: SegmentStats,
    /// Hedge-overlap time.
    pub hedge_overlap: SegmentStats,
    /// The slowest *terminal* queries (completed, shed, dropped, or
    /// admission-refused), slowest first, ranked by lifetime
    /// `terminal_at - arrival` — for completed spans this equals the
    /// measured response time, so shed and timed-out-to-death queries
    /// surface next to slow completions instead of hiding the true
    /// worst-case tail. Inspect [`QuerySpan::outcome`] (and
    /// [`QuerySpan::timeouts`]) for the shed-cause/timeout attribution.
    pub top_slowest: Vec<QuerySpan>,
}

/// A terminal span's lifetime: time from arrival to its terminal
/// event. `None` for in-flight spans (which never rank).
fn lifetime_ns(s: &QuerySpan) -> Option<Nanos> {
    s.terminal_at.map(|t| t.saturating_sub(s.arrival))
}

/// Aggregates a [`SpanLog`] into the critical-path view, keeping the
/// `top_k` slowest terminal queries (segment percentiles still cover
/// completed queries only — shed spans have no response time to
/// attribute).
pub fn critical_path(log: &SpanLog, top_k: usize) -> CriticalPathReport {
    let completed: Vec<&QuerySpan> = log
        .spans
        .iter()
        .filter(|s| matches!(s.outcome, SpanOutcome::Completed { .. }))
        .collect();
    let response_total: f64 = completed
        .iter()
        .map(|s| s.response_ns.unwrap_or(0) as f64 / 1e9)
        .sum();
    let seg = |f: fn(&QuerySpan) -> Nanos| {
        SegmentStats::from_values(completed.iter().map(|s| f(s)), response_total)
    };

    let mut slowest: Vec<QuerySpan> = log
        .spans
        .iter()
        .filter(|s| s.terminal_at.is_some())
        .cloned()
        .collect();
    slowest.sort_by(|a, b| {
        lifetime_ns(b)
            .cmp(&lifetime_ns(a))
            .then(a.query.cmp(&b.query))
    });
    slowest.truncate(top_k);

    CriticalPathReport {
        queries: log.spans.len() as u64,
        completed: completed.len() as u64,
        violations: completed
            .iter()
            .filter(|s| matches!(s.outcome, SpanOutcome::Completed { violated: true, .. }))
            .count() as u64,
        shed: log
            .spans
            .iter()
            .filter(|s| matches!(s.outcome, SpanOutcome::Shed { .. }))
            .count() as u64,
        dropped: log
            .spans
            .iter()
            .filter(|s| s.outcome == SpanOutcome::Dropped)
            .count() as u64,
        admission_refused: log
            .spans
            .iter()
            .filter(|s| s.outcome == SpanOutcome::AdmissionRefused)
            .count() as u64,
        in_flight: log
            .spans
            .iter()
            .filter(|s| s.outcome == SpanOutcome::InFlight)
            .count() as u64,
        hedged: completed.iter().filter(|s| s.hedged).count() as u64,
        retried: completed.iter().filter(|s| s.timeouts > 0).count() as u64,
        orphan_events: log.orphan_events,
        degraded_spans: log.degraded_spans,
        conservation_violations: completed
            .iter()
            .filter(|s| s.conserved() == Some(false))
            .count() as u64,
        violations_during_scale_lag: completed
            .iter()
            .filter(|s| {
                matches!(s.outcome, SpanOutcome::Completed { violated: true, .. })
                    && s.terminal_at
                        .is_some_and(|at| in_windows(&log.warming_windows, at))
            })
            .count() as u64,
        violations_during_brownout: completed
            .iter()
            .filter(|s| {
                matches!(s.outcome, SpanOutcome::Completed { violated: true, .. })
                    && s.terminal_at
                        .is_some_and(|at| in_windows(&log.brownout_windows, at))
            })
            .count() as u64,
        violations_during_detection_lag: completed
            .iter()
            .filter(|s| {
                matches!(s.outcome, SpanOutcome::Completed { violated: true, .. })
                    && s.terminal_at
                        .is_some_and(|at| in_windows(&log.detection_lag_windows, at))
            })
            .count() as u64,
        violations_during_false_suspicion: completed
            .iter()
            .filter(|s| {
                matches!(s.outcome, SpanOutcome::Completed { violated: true, .. })
                    && s.terminal_at
                        .is_some_and(|at| in_windows(&log.false_suspicion_windows, at))
            })
            .count() as u64,
        response: SegmentStats::from_values(
            completed.iter().map(|s| s.response_ns.unwrap_or(0)),
            response_total,
        ),
        wait: seg(|s| s.wait_ns),
        service: seg(|s| s.service_ns),
        wasted: seg(|s| s.wasted_ns),
        backoff: seg(|s| s.backoff_ns),
        hedge_overlap: seg(|s| s.hedge_overlap_ns),
        top_slowest: slowest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::QueueId;

    fn arrival(at: Nanos, query: u64) -> Event {
        Event::Arrival {
            at,
            query,
            deadline: at + 150_000_000,
        }
    }

    fn enqueue(at: Nanos, query: u64, worker: u32) -> Event {
        Event::Enqueue {
            at,
            query,
            queue: QueueId::Worker(worker),
            depth: 1,
        }
    }

    fn dispatch(at: Nanos, worker: u32) -> Event {
        Event::Dispatch {
            at,
            worker,
            model: 0,
            batch: 1,
            depth: 1,
        }
    }

    fn complete(at: Nanos, query: u64, worker: u32, arrival: Nanos) -> Event {
        Event::Complete {
            at,
            query,
            worker,
            model: 0,
            response_ns: at - arrival,
            violated: false,
        }
    }

    fn span_of(log: &SpanLog, query: u64) -> &QuerySpan {
        log.spans.iter().find(|s| s.query == query).unwrap()
    }

    #[test]
    fn plain_completion_splits_wait_and_service() {
        let events = vec![
            arrival(100, 0),
            enqueue(100, 0, 0),
            dispatch(250, 0),
            complete(1_000, 0, 0, 100),
        ];
        let log = reconstruct_spans(&events);
        let s = span_of(&log, 0);
        assert_eq!(s.wait_ns, 150);
        assert_eq!(s.service_ns, 750);
        assert_eq!(s.segment_sum(), 900);
        assert_eq!(s.response_ns, Some(900));
        assert_eq!(s.conserved(), Some(true));
        assert_eq!(log.degraded_spans, 0);
        assert_eq!(log.orphan_events, 0);
    }

    #[test]
    fn timeout_retry_path_telescopes_exactly() {
        // arrival 0 → dispatch 10 → timeout 110 → retry +40 backoff →
        // re-dispatch 180 → complete 300.
        let events = vec![
            arrival(0, 7),
            enqueue(0, 7, 1),
            dispatch(10, 1),
            Event::Timeout {
                at: 110,
                query: 7,
                worker: 1,
                attempt: 1,
            },
            Event::Retry {
                at: 110,
                query: 7,
                attempt: 1,
                delay_ns: 40,
            },
            enqueue(150, 7, 2),
            dispatch(180, 2),
            complete(300, 7, 2, 0),
        ];
        let log = reconstruct_spans(&events);
        let s = span_of(&log, 7);
        assert_eq!(s.wait_ns, 10 + 30); // arrival→dispatch + re-entry→re-dispatch
        assert_eq!(s.wasted_ns, 100); // dispatch→timeout
        assert_eq!(s.backoff_ns, 40);
        assert_eq!(s.service_ns, 120); // re-dispatch→complete
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.segment_sum(), 300);
        assert_eq!(s.conserved(), Some(true));
    }

    #[test]
    fn hedge_win_attributes_overlap() {
        // Primary dispatch at 50, hedge issued at 200, hedge wins at
        // 320 (primary cancelled first in stream order).
        let events = vec![
            arrival(0, 3),
            enqueue(0, 3, 0),
            dispatch(50, 0),
            Event::HedgeIssued {
                at: 200,
                primary: 0,
                hedge: 1,
                model: 0,
                batch: 1,
            },
            Event::HedgeCancelled {
                at: 320,
                worker: 0,
                winner: 1,
            },
            complete(320, 3, 1, 0),
        ];
        let log = reconstruct_spans(&events);
        let s = span_of(&log, 3);
        assert_eq!(s.wait_ns, 50);
        assert_eq!(s.hedge_overlap_ns, 150); // primary start → hedge issue
        assert_eq!(s.service_ns, 120); // hedge issue → completion
        assert!(s.hedged);
        assert_eq!(s.conserved(), Some(true));
    }

    #[test]
    fn primary_win_of_hedged_pair_is_plain_service() {
        let events = vec![
            arrival(0, 4),
            enqueue(0, 4, 0),
            dispatch(10, 0),
            Event::HedgeIssued {
                at: 100,
                primary: 0,
                hedge: 1,
                model: 0,
                batch: 1,
            },
            Event::HedgeCancelled {
                at: 250,
                worker: 1,
                winner: 0,
            },
            complete(250, 4, 0, 0),
        ];
        let log = reconstruct_spans(&events);
        let s = span_of(&log, 4);
        assert_eq!(s.wait_ns, 10);
        assert_eq!(s.service_ns, 240);
        assert_eq!(s.hedge_overlap_ns, 0);
        assert!(s.hedged, "a hedge was in play even though primary won");
        assert_eq!(s.conserved(), Some(true));
    }

    #[test]
    fn terminal_sheds_drops_and_admission() {
        let events = vec![
            arrival(0, 0),
            Event::Shed {
                at: 500,
                query: 0,
                cause: ShedCause::Hopeless,
            },
            arrival(10, 1),
            Event::Drop { at: 600, query: 1 },
            arrival(20, 2),
            Event::Admission {
                at: 20,
                query: 2,
                queue: QueueId::Central,
                depth: 9,
                sojourn_ns: 100,
            },
            arrival(30, 3), // never terminated
        ];
        let log = reconstruct_spans(&events);
        assert_eq!(
            span_of(&log, 0).outcome,
            SpanOutcome::Shed {
                cause: ShedCause::Hopeless
            }
        );
        assert_eq!(span_of(&log, 0).wait_ns, 500);
        assert_eq!(span_of(&log, 1).outcome, SpanOutcome::Dropped);
        assert_eq!(span_of(&log, 2).outcome, SpanOutcome::AdmissionRefused);
        assert_eq!(span_of(&log, 2).wait_ns, 0);
        assert_eq!(span_of(&log, 3).outcome, SpanOutcome::InFlight);
        let report = critical_path(&log, 5);
        assert_eq!(report.queries, 4);
        assert_eq!(report.shed, 1);
        assert_eq!(report.dropped, 1);
        assert_eq!(report.admission_refused, 1);
        assert_eq!(report.in_flight, 1);
        assert_eq!(report.completed, 0);
        // Terminal non-completions rank in top-slowest by lifetime:
        // the drop (600) over the shed (500) over the instant
        // admission refusal (0); the in-flight query never ranks.
        assert_eq!(report.top_slowest.len(), 3);
        assert_eq!(report.top_slowest[0].query, 1);
        assert_eq!(report.top_slowest[1].query, 0);
        assert!(matches!(
            report.top_slowest[1].outcome,
            SpanOutcome::Shed {
                cause: ShedCause::Hopeless
            }
        ));
        assert_eq!(report.top_slowest[2].query, 2);
    }

    #[test]
    fn orphans_and_missing_dispatch_records_degrade_gracefully() {
        // A truncated-head log: completion for a query with no arrival,
        // plus a completion whose dispatch predates the log.
        let events = vec![
            complete(100, 99, 0, 0), // orphan: no arrival
            arrival(0, 1),
            complete(400, 1, 2, 0), // no Dispatch for worker 2 in log
        ];
        let log = reconstruct_spans(&events);
        assert_eq!(log.orphan_events, 1);
        assert_eq!(log.degraded_spans, 1);
        let s = span_of(&log, 1);
        // The remainder lands in service; the sum is still exact.
        assert_eq!(s.service_ns, 400);
        assert_eq!(s.conserved(), Some(true));
    }

    fn complete_violated(at: Nanos, query: u64, worker: u32, arrival: Nanos) -> Event {
        Event::Complete {
            at,
            query,
            worker,
            model: 0,
            response_ns: at - arrival,
            violated: true,
        }
    }

    #[test]
    fn scaling_lag_windows_attribute_violations() {
        // Worker 1 is requested at t=100 and turns live at t=500: any
        // violated completion inside [100, 500) is blamed on scaling
        // lag. Query 0 violates at 300 (inside), query 1 violates at
        // 900 (outside), query 2 completes on time at 400 (inside but
        // not violated).
        let events = vec![
            arrival(0, 0),
            arrival(0, 1),
            arrival(0, 2),
            Event::ScaleUp {
                at: 100,
                worker: 1,
                live: 1,
            },
            dispatch(150, 0),
            complete_violated(300, 0, 0, 0),
            dispatch(350, 0),
            complete(400, 2, 0, 0),
            Event::WorkerWarm {
                at: 500,
                worker: 1,
                live: 2,
            },
            dispatch(700, 1),
            complete_violated(900, 1, 1, 0),
        ];
        let log = reconstruct_spans(&events);
        assert_eq!(log.warming_windows, vec![(100, 500)]);
        assert!(log.brownout_windows.is_empty());
        let report = critical_path(&log, 5);
        assert_eq!(report.violations, 2);
        assert_eq!(report.violations_during_scale_lag, 1);
        assert_eq!(report.violations_during_brownout, 0);
    }

    #[test]
    fn detection_lag_and_false_suspicion_windows_attribute_violations() {
        // Worker 1 actually died at t=100 but was only suspected at
        // t=400 (lag 300): violated completions inside [100, 400) are
        // blamed on detection lag. Worker 2 was falsely suspected at
        // t=600 and reinstated at t=900: violations inside [600, 900)
        // are blamed on false suspicion. Query 0 violates at 300
        // (detection lag), query 1 at 700 (false suspicion), query 2 at
        // 950 (neither).
        let events = vec![
            arrival(0, 0),
            arrival(0, 1),
            arrival(0, 2),
            dispatch(150, 0),
            complete_violated(300, 0, 0, 0),
            Event::Suspect {
                at: 400,
                worker: 1,
                genuine: true,
                lag_ns: 300,
            },
            Event::Suspect {
                at: 600,
                worker: 2,
                genuine: false,
                lag_ns: 0,
            },
            dispatch(650, 0),
            complete_violated(700, 1, 0, 0),
            Event::Reinstate {
                at: 900,
                worker: 2,
                suspected_ns: 300,
            },
            dispatch(920, 0),
            complete_violated(950, 2, 0, 0),
        ];
        let log = reconstruct_spans(&events);
        assert_eq!(log.detection_lag_windows, vec![(100, 400)]);
        assert_eq!(log.false_suspicion_windows, vec![(600, 900)]);
        let report = critical_path(&log, 5);
        assert_eq!(report.violations, 3);
        assert_eq!(report.violations_during_detection_lag, 1);
        assert_eq!(report.violations_during_false_suspicion, 1);
        // A false suspicion never reinstated stays open to the end of
        // time; a genuine one adds no false-suspicion window.
        let truncated = reconstruct_spans(&[
            arrival(0, 0),
            Event::Suspect {
                at: 50,
                worker: 3,
                genuine: false,
                lag_ns: 0,
            },
        ]);
        assert_eq!(truncated.false_suspicion_windows, vec![(50, Nanos::MAX)]);
        assert!(truncated.detection_lag_windows.is_empty());
    }

    #[test]
    fn brownout_windows_pair_and_stay_open_at_truncation() {
        // Enter at 100 escalates at 200, de-escalates at 300, fully
        // exits at 400 — one merged window. A second enter at 600 never
        // exits: the window extends to the end of time, as does a
        // scale-up that never warms.
        let events = vec![
            arrival(0, 0),
            Event::BrownoutEnter {
                at: 100,
                rung: 1,
                load_qps: 20.0,
                capacity_qps: 10.0,
            },
            Event::BrownoutEnter {
                at: 200,
                rung: 2,
                load_qps: 25.0,
                capacity_qps: 10.0,
            },
            Event::BrownoutExit {
                at: 300,
                rung: 2,
                load_qps: 12.0,
                capacity_qps: 10.0,
            },
            Event::BrownoutExit {
                at: 400,
                rung: 1,
                load_qps: 5.0,
                capacity_qps: 10.0,
            },
            Event::BrownoutEnter {
                at: 600,
                rung: 1,
                load_qps: 30.0,
                capacity_qps: 10.0,
            },
            Event::ScaleUp {
                at: 650,
                worker: 3,
                live: 1,
            },
            dispatch(700, 0),
            complete_violated(800, 0, 0, 0),
        ];
        let log = reconstruct_spans(&events);
        assert_eq!(log.brownout_windows, vec![(100, 400), (600, Nanos::MAX)]);
        assert_eq!(log.warming_windows, vec![(650, Nanos::MAX)]);
        let report = critical_path(&log, 5);
        // The violated completion at 800 sits inside both open windows.
        assert_eq!(report.violations_during_brownout, 1);
        assert_eq!(report.violations_during_scale_lag, 1);
    }

    #[test]
    fn critical_path_report_aggregates_and_ranks() {
        let mut events = Vec::new();
        for q in 0..4u64 {
            let t0 = q * 1_000;
            events.push(arrival(t0, q));
            events.push(enqueue(t0, q, 0));
            events.push(dispatch(t0 + 100, 0));
            // Response grows with id: 100 wait + (q+1)*1000 service.
            events.push(complete(t0 + 100 + (q + 1) * 1_000, q, 0, t0));
        }
        let log = reconstruct_spans(&events);
        let report = critical_path(&log, 2);
        assert_eq!(report.completed, 4);
        assert_eq!(report.conservation_violations, 0);
        assert_eq!(report.top_slowest.len(), 2);
        assert_eq!(report.top_slowest[0].query, 3);
        assert_eq!(report.top_slowest[1].query, 2);
        // Shares split between wait and service and sum to ~1.
        let total_share = report.wait.share
            + report.service.share
            + report.wasted.share
            + report.backoff.share
            + report.hedge_overlap.share;
        assert!((total_share - 1.0).abs() < 1e-9, "{total_share}");
        assert!(report.service.share > report.wait.share);
        assert_eq!(report.response.max_ns, 4_100);
        // The report round-trips through serde.
        let json = serde_json::to_string(&report).unwrap();
        let back: CriticalPathReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
