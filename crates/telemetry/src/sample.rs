//! Deterministic query-coherent sampling: keep a hash-selected
//! fraction of queries — every event of a kept query, no event of a
//! dropped one — plus *all* interesting queries and *all* audit
//! events, so spans reconstruct fully and the rare tail never goes
//! dark (DESIGN.md §15).
//!
//! Head-sampling decides per query id: `splitmix64(seed ^ query)`
//! under a rate-derived threshold keeps the query. The decision
//! depends only on (seed, rate, query id), so two runs of the same
//! seeded scenario sample identically, and re-sampling a full log
//! offline selects the same queries the live sink would have.
//!
//! Tail-keep rules promote a query regardless of its hash the moment
//! it stops being boring: a shed, drop, crash requeue, timeout, retry,
//! admission rejection, SLO-violating completion, or a completion on a
//! hedged worker pair. Promotion must beat the hash decision, so a
//! query's events are withheld in an order-preserving FIFO until its
//! fate is known; the sampled stream is therefore an exact
//! *subsequence* of the full stream — same events, same order — and
//! every analysis that works on full logs works unchanged on sampled
//! ones.
//!
//! Because kept queries keep all their events, per-query conservation
//! holds *exactly* on the sampled substream, and in-flight queries
//! (undecided at end of run) are always kept. The only thing sampling
//! removes is boring, on-time completions — precisely the population
//! whose counts a Horvitz-Thompson estimate (weight `1/rate`)
//! reconstructs; see [`query_weights`].

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::event::Event;
use crate::sink::TelemetrySink;

/// Per-worker hedge flags as a dense bit table: worker ids are small
/// and dense, so this keeps the per-event hot path free of ordered-set
/// lookups.
#[derive(Debug, Default)]
struct HedgeFlags(Vec<bool>);

impl HedgeFlags {
    fn contains(&self, worker: u32) -> bool {
        self.0.get(worker as usize).copied().unwrap_or(false)
    }

    fn insert(&mut self, worker: u32) {
        let i = worker as usize;
        if self.0.len() <= i {
            self.0.resize(i + 1, false);
        }
        self.0[i] = true;
    }

    fn remove(&mut self, worker: u32) {
        if let Some(f) = self.0.get_mut(worker as usize) {
            *f = false;
        }
    }
}

const FATE_UNDECIDED: u8 = 0;
const FATE_KEPT: u8 = 1;
const FATE_DROPPED: u8 = 2;

/// Ids the dense fate table covers directly (one byte per query).
/// Engine query ids are sequential from zero, so in practice every
/// lookup is one array index; anything above the cap (a synthetic or
/// adversarial stream) falls back to ordered sets.
const DENSE_FATE_CAP: u64 = 1 << 24;

/// Per-query keep/drop decisions, O(1) for the dense engine id space.
#[derive(Debug, Default)]
struct QueryFates {
    dense: Vec<u8>,
    sparse_kept: BTreeSet<u64>,
    sparse_dropped: BTreeSet<u64>,
}

impl QueryFates {
    #[inline]
    fn get(&self, q: u64) -> u8 {
        if q < DENSE_FATE_CAP {
            self.dense
                .get(q as usize)
                .copied()
                .unwrap_or(FATE_UNDECIDED)
        } else if self.sparse_kept.contains(&q) {
            FATE_KEPT
        } else if self.sparse_dropped.contains(&q) {
            FATE_DROPPED
        } else {
            FATE_UNDECIDED
        }
    }

    fn set(&mut self, q: u64, fate: u8) {
        if q < DENSE_FATE_CAP {
            let i = q as usize;
            if self.dense.len() <= i {
                self.dense.resize(i + 1, FATE_UNDECIDED);
            }
            self.dense[i] = fate;
        } else if fate == FATE_KEPT {
            self.sparse_dropped.remove(&q);
            self.sparse_kept.insert(q);
        } else {
            self.sparse_kept.remove(&q);
            self.sparse_dropped.insert(q);
        }
    }
}

/// splitmix64 — the same mix the engine's deterministic RNG seeds use;
/// duplicated here so the telemetry crate stays below the simulator in
/// the crate graph.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The head-sampling decision: which query ids the hash keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePolicy {
    rate: f64,
    seed: u64,
    /// `keeps(q)` ⇔ `splitmix64(seed ^ q) <= threshold`; precomputed
    /// so the per-event hot path is one hash and one compare.
    threshold: u64,
}

impl SamplePolicy {
    /// Builds a policy keeping the fraction `rate` of boring queries,
    /// hashed with `seed`.
    ///
    /// # Errors
    ///
    /// Rejects rates outside `(0, 1]` — rate 0 would silently discard
    /// whole runs (use a disabled sink for that), and rates above 1
    /// are meaningless.
    pub fn new(rate: f64, seed: u64) -> Result<Self, String> {
        if !rate.is_finite() || rate <= 0.0 || rate > 1.0 {
            return Err(format!("sample rate must be in (0, 1], got {rate}"));
        }
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        Ok(Self {
            rate,
            seed,
            threshold,
        })
    }

    /// The configured keep fraction.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The configured hash seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the hash keeps query `q` (tail-keep promotion aside).
    pub fn keeps(&self, q: u64) -> bool {
        splitmix64(self.seed ^ q) <= self.threshold
    }
}

/// True when this event promotes its query to always-keep, given
/// whether its worker currently serves a hedged pair: the tail-keep
/// rules of the module docs.
fn promotes(event: &Event, hedged: &HedgeFlags) -> bool {
    match *event {
        Event::Shed { .. }
        | Event::Drop { .. }
        | Event::CrashRequeue { .. }
        | Event::Timeout { .. }
        | Event::Retry { .. }
        | Event::Admission { .. } => true,
        Event::Complete {
            violated, worker, ..
        } => violated || hedged.contains(worker),
        _ => false,
    }
}

/// True when this event ends its query's lifecycle without promoting
/// it — the single boring terminal: an on-time completion on an
/// unhedged worker. (All other terminals — shed, drop, admission
/// rejection, violating or hedged completion — promote instead.)
fn boring_terminal(event: &Event, hedged: &HedgeFlags) -> bool {
    matches!(
        *event,
        Event::Complete {
            violated: false,
            worker,
            ..
        } if !hedged.contains(worker)
    )
}

/// Advances the hedged-worker flag machine. A worker joins the set
/// when a hedge pair is issued on it and leaves on its next dispatch,
/// its completion, or its hedge's cancellation — so a completion seen
/// while flagged belongs to a hedged query. Both the live sink and
/// the offline [`query_weights`] classifier run this exact machine,
/// which is what lets the offline pass re-derive the live keep
/// decisions from stream content alone.
fn track_hedges(event: &Event, hedged: &mut HedgeFlags) {
    match *event {
        Event::HedgeIssued { primary, hedge, .. } => {
            hedged.insert(primary);
            hedged.insert(hedge);
        }
        Event::HedgeCancelled { worker, .. } => {
            hedged.remove(worker);
        }
        Event::Dispatch { worker, .. } | Event::Complete { worker, .. } => {
            hedged.remove(worker);
        }
        _ => {}
    }
}

/// A slot in the order-preserving FIFO: either already decided keep,
/// or waiting on its query's fate.
#[derive(Debug, Clone)]
enum Slot {
    Keep(Event),
    Await(u64, Event),
}

/// A sink adapter applying query-coherent sampling before an inner
/// sink, preserving stream order exactly.
///
/// Events whose fate is decided (audit events, events of kept or
/// promoted queries) pass straight through when nothing undecided is
/// ahead of them; otherwise they queue behind the undecided events so
/// the sampled stream stays an exact subsequence of the full stream.
/// An undecided query resolves at its terminal event — promotion (any
/// interesting outcome) or drop (a boring on-time completion) — which
/// is at most one SLO away, so the FIFO stays shallow.
///
/// [`SamplingSink::finish`] resolves every still-undecided query as
/// kept (they are in-flight — interesting by definition), drains the
/// FIFO, and returns the inner sink.
#[derive(Debug)]
pub struct SamplingSink<S: TelemetrySink> {
    inner: S,
    policy: SamplePolicy,
    queue: VecDeque<Slot>,
    /// Per-query keep/drop fates — one dense byte per engine query id,
    /// so the hot path never walks an ordered set.
    fates: QueryFates,
    hedged: HedgeFlags,
    sampled_out_queries: u64,
    sampled_out_events: u64,
}

impl<S: TelemetrySink> SamplingSink<S> {
    /// Wraps `inner` with the given sampling policy.
    pub fn new(inner: S, policy: SamplePolicy) -> Self {
        Self {
            inner,
            policy,
            queue: VecDeque::new(),
            fates: QueryFates::default(),
            hedged: HedgeFlags::default(),
            sampled_out_queries: 0,
            sampled_out_events: 0,
        }
    }

    /// The sampling policy in force.
    pub fn policy(&self) -> &SamplePolicy {
        &self.policy
    }

    /// Queries whose events were discarded (decided drop) so far.
    pub fn sampled_out_queries(&self) -> u64 {
        self.sampled_out_queries
    }

    /// Events discarded so far.
    pub fn sampled_out_events(&self) -> u64 {
        self.sampled_out_events
    }

    /// Read access to the inner sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Resolves all still-undecided queries as kept (they are
    /// in-flight at end of run), drains the FIFO, flushes the inner
    /// sink, and returns it.
    pub fn finish(mut self) -> S {
        while let Some(slot) = self.queue.pop_front() {
            match slot {
                Slot::Keep(e) => self.inner.record(&e),
                Slot::Await(q, e) => {
                    if self.fates.get(q) == FATE_DROPPED {
                        self.sampled_out_events += 1;
                    } else {
                        // Undecided ⇒ in-flight ⇒ keep.
                        self.inner.record(&e);
                    }
                }
            }
        }
        self.inner.flush();
        self.inner
    }

    /// Forwards every slot whose fate is known, stopping at the first
    /// still-undecided query.
    fn drain_decided(&mut self) {
        while let Some(front) = self.queue.front() {
            match front {
                Slot::Keep(_) => {
                    let Some(Slot::Keep(e)) = self.queue.pop_front() else {
                        unreachable!()
                    };
                    self.inner.record(&e);
                }
                Slot::Await(q, _) => match self.fates.get(*q) {
                    FATE_KEPT => {
                        let Some(Slot::Await(_, e)) = self.queue.pop_front() else {
                            unreachable!()
                        };
                        self.inner.record(&e);
                    }
                    FATE_DROPPED => {
                        self.queue.pop_front();
                        self.sampled_out_events += 1;
                    }
                    _ => break,
                },
            }
        }
    }
}

impl<S: TelemetrySink> TelemetrySink for SamplingSink<S> {
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, event: &Event) {
        // Decide first (no clone on the pass-through path), then queue
        // only what order preservation actually requires.
        enum Decision {
            Keep,
            /// Newly decided keep: earlier withheld events of the same
            /// query may now be releasable.
            Promote,
            Drop,
            Await(u64),
        }
        let decision = match event.query() {
            // Audit / fault / scale / health events (and dispatches)
            // are always kept.
            None => Decision::Keep,
            Some(q) => match self.fates.get(q) {
                FATE_KEPT => Decision::Keep,
                FATE_DROPPED => Decision::Drop,
                _ => {
                    if self.policy.keeps(q) || promotes(event, &self.hedged) {
                        self.fates.set(q, FATE_KEPT);
                        Decision::Promote
                    } else if boring_terminal(event, &self.hedged) {
                        self.fates.set(q, FATE_DROPPED);
                        self.sampled_out_queries += 1;
                        Decision::Drop
                    } else {
                        Decision::Await(q)
                    }
                }
            },
        };
        track_hedges(event, &mut self.hedged);
        match decision {
            Decision::Keep if self.queue.is_empty() => self.inner.record(event),
            Decision::Keep => {
                self.queue.push_back(Slot::Keep(event.clone()));
            }
            Decision::Promote if self.queue.is_empty() => self.inner.record(event),
            Decision::Promote => {
                self.queue.push_back(Slot::Keep(event.clone()));
                self.drain_decided();
            }
            Decision::Drop => {
                self.sampled_out_events += 1;
                self.drain_decided();
            }
            Decision::Await(q) => {
                self.queue.push_back(Slot::Await(q, event.clone()));
            }
        }
    }

    fn flush(&mut self) {
        // Withheld events stay withheld — their fate is unknown — but
        // everything already forwarded reaches stable storage (the
        // engine flushes at checkpoint attests).
        self.inner.flush();
    }
}

/// Per-query Horvitz-Thompson weights for a (possibly sampled) event
/// stream: the offline mirror of the live keep decisions.
///
/// A query observed in the stream was kept with probability 1 if any
/// of its events promotes it (or it never reached a terminal event —
/// in-flight queries are always kept), and with probability `rate`
/// otherwise. Its weight is the inverse: `1.0` for exact queries,
/// `1/rate` for hash-kept boring ones. Summing weights over kept
/// queries estimates full-stream query counts; on an unsampled stream
/// (`rate` 1.0) every weight is 1 and the estimates are exact.
pub fn query_weights(events: &[Event], rate: f64) -> BTreeMap<u64, f64> {
    let mut hedged = HedgeFlags::default();
    // query -> (has a promoting event, has a terminal event)
    let mut fate: BTreeMap<u64, (bool, bool)> = BTreeMap::new();
    for event in events {
        if let Some(q) = event.query() {
            let entry = fate.entry(q).or_insert((false, false));
            if promotes(event, &hedged) {
                entry.0 = true;
            }
            if matches!(
                event,
                Event::Complete { .. }
                    | Event::Shed { .. }
                    | Event::Drop { .. }
                    | Event::Admission { .. }
            ) {
                entry.1 = true;
            }
        }
        track_hedges(event, &mut hedged);
    }
    fate.into_iter()
        .map(|(q, (interesting, terminal))| {
            let weight = if interesting || !terminal {
                1.0
            } else {
                1.0 / rate
            };
            (q, weight)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ShedCause;
    use crate::sink::VecSink;

    fn arrival(q: u64, at: u64) -> Event {
        Event::Arrival {
            at,
            query: q,
            deadline: at + 100,
        }
    }

    fn complete(q: u64, at: u64, worker: u32, violated: bool) -> Event {
        Event::Complete {
            at,
            query: q,
            worker,
            model: 0,
            response_ns: 10,
            violated,
        }
    }

    fn run_through(events: &[Event], rate: f64, seed: u64) -> (Vec<Event>, u64, u64) {
        let policy = SamplePolicy::new(rate, seed).unwrap();
        let mut sink = SamplingSink::new(VecSink::new(), policy);
        for e in events {
            sink.record(e);
        }
        let (q, n) = (sink.sampled_out_queries(), sink.sampled_out_events());
        (sink.finish().into_events(), q, n)
    }

    #[test]
    fn policy_rejects_degenerate_rates() {
        assert!(SamplePolicy::new(0.0, 1).is_err());
        assert!(SamplePolicy::new(-0.5, 1).is_err());
        assert!(SamplePolicy::new(1.5, 1).is_err());
        assert!(SamplePolicy::new(f64::NAN, 1).is_err());
        assert!(SamplePolicy::new(1.0, 1).is_ok());
        assert!(SamplePolicy::new(1e-6, 1).is_ok());
    }

    #[test]
    fn rate_one_keeps_everything() {
        let policy = SamplePolicy::new(1.0, 42).unwrap();
        for q in 0..10_000 {
            assert!(policy.keeps(q));
        }
    }

    #[test]
    fn keep_fraction_tracks_the_rate() {
        for &rate in &[0.5, 0.1, 0.01] {
            let policy = SamplePolicy::new(rate, 7).unwrap();
            let kept = (0..100_000u64).filter(|&q| policy.keeps(q)).count();
            let expect = rate * 100_000.0;
            let sigma = (100_000.0 * rate * (1.0 - rate)).sqrt();
            assert!(
                ((kept as f64) - expect).abs() < 5.0 * sigma,
                "rate {rate}: kept {kept}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = SamplePolicy::new(0.1, 1).unwrap();
        let b = SamplePolicy::new(0.1, 2).unwrap();
        let decisions_a: Vec<bool> = (0..64).map(|q| a.keeps(q)).collect();
        assert_eq!(decisions_a, (0..64).map(|q| a.keeps(q)).collect::<Vec<_>>());
        assert_ne!(decisions_a, (0..64).map(|q| b.keeps(q)).collect::<Vec<_>>());
    }

    #[test]
    fn boring_completions_are_dropped_whole_query() {
        // Find a query id the hash drops at 1% so the test is not at
        // the mercy of the seed.
        let policy = SamplePolicy::new(0.01, 9).unwrap();
        let q = (0..1000).find(|&q| !policy.keeps(q)).unwrap();
        let events = vec![
            arrival(q, 1),
            Event::Enqueue {
                at: 2,
                query: q,
                queue: crate::event::QueueId::Central,
                depth: 1,
            },
            Event::Dispatch {
                at: 3,
                worker: 0,
                model: 0,
                batch: 1,
                depth: 0,
            },
            complete(q, 9, 0, false),
        ];
        let (kept, out_q, out_e) = run_through(&events, 0.01, 9);
        // The dispatch (no query id) survives; the query's three
        // events do not.
        assert_eq!(kept, vec![events[2].clone()], "audit events always survive");
        assert_eq!(out_q, 1);
        assert_eq!(out_e, 3);
    }

    #[test]
    fn violating_and_shed_queries_are_always_kept() {
        let policy = SamplePolicy::new(0.01, 9).unwrap();
        let dropped: Vec<u64> = (0..1000).filter(|&q| !policy.keeps(q)).take(3).collect();
        let [a, b, c] = dropped[..] else { panic!() };
        let events = vec![
            arrival(a, 1),
            arrival(b, 2),
            arrival(c, 3),
            complete(a, 5, 0, true), // violated: promoted
            Event::Shed {
                at: 6,
                query: b,
                cause: ShedCause::Hopeless,
            }, // shed: promoted
            complete(c, 7, 1, false), // boring: dropped
        ];
        let (kept, out_q, _) = run_through(&events, 0.01, 9);
        assert_eq!(
            kept,
            vec![
                events[0].clone(),
                events[1].clone(),
                events[3].clone(),
                events[4].clone()
            ]
        );
        assert_eq!(out_q, 1);
    }

    #[test]
    fn promotion_preserves_stream_order_exactly() {
        // Query A is undecided while query B (hash-kept) completes
        // behind it; A is then promoted by a violation. The output
        // must stay a subsequence of the input in the input's order.
        let policy = SamplePolicy::new(0.5, 3).unwrap();
        let a = (0..1000).find(|&q| !policy.keeps(q)).unwrap();
        let b = (0..1000).find(|&q| policy.keeps(q)).unwrap();
        let events = vec![
            arrival(a, 1),
            arrival(b, 2),
            complete(b, 5, 1, false),
            complete(a, 9, 0, true),
        ];
        let (kept, _, _) = run_through(&events, 0.5, 3);
        assert_eq!(kept, events, "all kept, in original order");
    }

    #[test]
    fn in_flight_queries_are_kept_at_finish() {
        let policy = SamplePolicy::new(0.01, 9).unwrap();
        let q = (0..1000).find(|&q| !policy.keeps(q)).unwrap();
        let events = vec![arrival(q, 1)];
        let (kept, out_q, _) = run_through(&events, 0.01, 9);
        assert_eq!(kept, events, "no terminal event: kept as in-flight");
        assert_eq!(out_q, 0);
    }

    #[test]
    fn hedged_completions_promote_their_query() {
        let policy = SamplePolicy::new(0.01, 9).unwrap();
        let dropped: Vec<u64> = (0..1000).filter(|&q| !policy.keeps(q)).take(2).collect();
        let [h, n] = dropped[..] else { panic!() };
        let events = vec![
            arrival(h, 1),
            arrival(n, 2),
            Event::HedgeIssued {
                at: 3,
                primary: 0,
                hedge: 1,
                model: 0,
                batch: 1,
            },
            complete(h, 5, 0, false), // on a hedged worker: promoted
            Event::HedgeCancelled {
                at: 5,
                worker: 1,
                winner: 0,
            },
            complete(n, 9, 2, false), // unhedged worker: dropped
        ];
        let (kept, out_q, _) = run_through(&events, 0.01, 9);
        assert_eq!(
            kept,
            vec![
                events[0].clone(),
                events[2].clone(),
                events[3].clone(),
                events[4].clone()
            ]
        );
        assert_eq!(out_q, 1);
        // The flag clears with the completion: the next query on
        // worker 0 is boring again.
        let later = [arrival(n, 10), complete(n, 12, 0, false)];
        let all: Vec<Event> = events.iter().chain(later.iter()).cloned().collect();
        let (kept2, out_q2, _) = run_through(&all, 0.01, 9);
        assert_eq!(kept2, kept, "post-hedge completion is not promoted");
        // The later lifecycle reuses n's id, and drop fates are
        // per-query-id: still one sampled-out query, more events.
        assert_eq!(out_q2, 1);
    }

    #[test]
    fn retried_and_timed_out_queries_are_kept() {
        let policy = SamplePolicy::new(0.01, 9).unwrap();
        let q = (0..1000).find(|&q| !policy.keeps(q)).unwrap();
        let events = vec![
            arrival(q, 1),
            Event::Timeout {
                at: 5,
                query: q,
                worker: 0,
                attempt: 1,
            },
            Event::Retry {
                at: 5,
                query: q,
                attempt: 1,
                delay_ns: 3,
            },
            complete(q, 20, 1, false),
        ];
        let (kept, out_q, _) = run_through(&events, 0.01, 9);
        assert_eq!(kept, events, "timeout promoted the whole query");
        assert_eq!(out_q, 0);
    }

    #[test]
    fn weights_mirror_live_decisions() {
        let policy = SamplePolicy::new(0.25, 11).unwrap();
        let boring_kept = (0..1000).find(|&q| policy.keeps(q)).unwrap();
        let violated = (0..1000).find(|&q| !policy.keeps(q)).unwrap();
        let inflight = (violated + 1..1000).find(|&q| !policy.keeps(q)).unwrap();
        let events = vec![
            arrival(boring_kept, 1),
            arrival(violated, 2),
            arrival(inflight, 3),
            complete(boring_kept, 5, 0, false),
            complete(violated, 6, 1, true),
        ];
        let (kept, _, _) = run_through(&events, 0.25, 11);
        assert_eq!(kept, events);
        let w = query_weights(&kept, 0.25);
        assert_eq!(w[&boring_kept], 4.0, "hash-kept boring: weight 1/rate");
        assert_eq!(w[&violated], 1.0, "promoted: exact");
        assert_eq!(w[&inflight], 1.0, "in-flight: exact");
        // On the full stream at rate 1.0 every weight is 1.
        assert!(query_weights(&events, 1.0).values().all(|&w| w == 1.0));
    }

    #[test]
    fn flush_mid_run_does_not_release_undecided_events() {
        let policy = SamplePolicy::new(0.01, 9).unwrap();
        let q = (0..1000).find(|&q| !policy.keeps(q)).unwrap();
        let mut sink = SamplingSink::new(VecSink::new(), policy);
        sink.record(&arrival(q, 1));
        sink.flush();
        assert!(sink.inner().events().is_empty(), "fate unknown: withheld");
        sink.record(&complete(q, 5, 0, true));
        assert_eq!(sink.inner().events().len(), 2, "promotion releases both");
    }
}
