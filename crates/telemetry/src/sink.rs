//! Event sinks: where a traced run's [`Event`] stream goes.
//!
//! The engine takes a `&mut dyn TelemetrySink` and checks
//! [`TelemetrySink::enabled`] once per run; with the default
//! [`NullSink`] every emission site is skipped entirely, so an
//! untraced run pays nothing beyond one branch per site (the
//! `telemetry_overhead` bench pins this contract).

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::event::Event;

/// Version of the JSONL stream schema written by this build's file
/// sinks (telemetry and decisions). Bumped when a record's shape
/// changes incompatibly; headerless logs are treated as version 0.
pub const JSONL_SCHEMA_VERSION: u32 = 1;

/// The stream tag telemetry logs carry in their schema header.
pub const TELEMETRY_STREAM: &str = "telemetry";

/// How many unknown-record previews a tolerant parser retains in
/// [`ParsedLog::unknown_samples`]. Everything past the cap is counted
/// in [`ParsedLog::unknown_events`] but not stored, so a
/// version-skewed 100M-event log cannot flood tooling output — the CLI
/// prints the retained few and a "+N more suppressed" summary.
pub const UNKNOWN_SAMPLE_CAP: usize = 5;

/// The metadata record a JSONL file stream starts with, e.g.
/// `{"Schema":{"stream":"telemetry","version":1}}`. It shares the
/// line-oriented format but is not an [`Event`]: parsers surface it as
/// [`ParsedLog::schema_version`] instead of counting it as a record,
/// and v0 logs (written before headers existed) parse fine without
/// one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamHeader {
    /// The stream's identity and schema version.
    Schema {
        /// Which stream this is (`"telemetry"` or `"decisions"`).
        stream: String,
        /// Schema version of the records that follow.
        version: u32,
    },
    /// Sampling provenance: the stream was written through a
    /// [`crate::SamplingSink`] at this rate with this hash seed.
    /// Emitted right after the schema header; unsampled streams carry
    /// none, so its absence means the log is complete.
    Sampling {
        /// Fraction of boring queries kept (interesting ones are
        /// always kept regardless).
        rate: f64,
        /// Seed of the splitmix64 query-id hash deciding keeps.
        seed: u64,
    },
}

impl StreamHeader {
    /// The header a telemetry log starts with.
    pub fn telemetry() -> Self {
        StreamHeader::Schema {
            stream: TELEMETRY_STREAM.to_string(),
            version: JSONL_SCHEMA_VERSION,
        }
    }
}

/// A consumer of trace events.
pub trait TelemetrySink {
    /// Whether the sink wants events at all. The engine reads this once
    /// per run and skips event construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&mut self, event: &Event);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// An unbounded in-memory sink (tests and short runs).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl TelemetrySink for VecSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// A bounded ring sink: keeps the most recent `capacity` events,
/// counting everything it saw. Memory stays constant no matter how
/// long the run is — the production default for always-on tracing.
#[derive(Debug, Clone)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<Event>,
    seen: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Total events recorded, including evicted ones.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events (`<= capacity`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the ring, returning the retained tail, oldest first.
    pub fn into_events(self) -> Vec<Event> {
        self.buf.into_iter().collect()
    }
}

impl TelemetrySink for RingSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
        self.seen += 1;
    }
}

/// A sink writing one JSON object per line (JSONL) to any writer.
///
/// Serialization is deterministic — field order is declaration order
/// and floats use shortest-round-trip formatting — so a seeded run
/// produces a byte-identical log on every replay. I/O errors are
/// latched and surfaced by [`JsonlSink::finish`] rather than panicking
/// mid-run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
    failed: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Opens (truncating) `path` for buffered JSONL output and writes
    /// the schema header as the first line (not counted in
    /// [`JsonlSink::lines`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut sink = Self::new(BufWriter::new(File::create(path)?));
        sink.write_header(&StreamHeader::telemetry());
        Ok(sink)
    }

    /// Like [`JsonlSink::create`], additionally stamping the stream
    /// with the sampling rate and seed of the [`crate::SamplingSink`]
    /// wrapping this sink, as a second header line.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create_sampled<P: AsRef<Path>>(path: P, rate: f64, seed: u64) -> io::Result<Self> {
        let mut sink = Self::create(path)?;
        sink.write_header(&StreamHeader::Sampling { rate, seed });
        Ok(sink)
    }

    /// Reopens an existing log for a resumed run: truncates `path` to
    /// the byte offset just past its first `lines` whole records —
    /// healing any torn tail a mid-write kill left behind — and appends
    /// from there. The returned sink reports [`JsonlSink::lines`] as
    /// `lines`, so line accounting continues as if the run were never
    /// interrupted.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened, or holds fewer than `lines`
    /// whole newline-terminated records — resuming from a checkpoint
    /// the log never reached would fabricate a gap, not heal a tear.
    pub fn resume_at<P: AsRef<Path>>(path: P, lines: u64) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let mut offset = 0usize;
        // A v1 log leads with metadata headers (schema, and sampling
        // provenance when present); they are not among the `lines`
        // records, so skip them before counting (v0 logs have none and
        // start counting at byte 0).
        while let Some(i) = buf[offset..].iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&buf[offset..offset + i]);
            if serde_json::from_str::<StreamHeader>(&line).is_err() {
                break;
            }
            offset += i + 1;
        }
        let mut whole = 0u64;
        while whole < lines {
            match buf[offset..].iter().position(|&b| b == b'\n') {
                Some(i) => {
                    offset += i + 1;
                    whole += 1;
                }
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "log holds {whole} whole records, checkpoint expects {lines}: \
                             refusing to resume past the end of the log"
                        ),
                    ))
                }
            }
        }
        file.set_len(offset as u64)?;
        file.seek(SeekFrom::Start(offset as u64))?;
        let mut sink = Self::new(BufWriter::new(file));
        sink.lines = lines;
        Ok(sink)
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        Self {
            out,
            lines: 0,
            error: None,
            failed: false,
        }
    }

    /// Writes a metadata header line (not counted in
    /// [`JsonlSink::lines`]), latching any I/O error.
    fn write_header(&mut self, header: &StreamHeader) {
        if self.failed {
            return;
        }
        let line = serde_json::to_string(header).expect("header serializes");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
            self.failed = true;
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// True once any write or flush has failed; further records are
    /// dropped. Callers that keep the sink alive (rather than calling
    /// [`JsonlSink::finish`]) use this to fail loudly instead of
    /// reporting a silently truncated log as success.
    pub fn write_failed(&self) -> bool {
        self.failed
    }

    /// Takes the latched I/O error, if any. The sink stays failed —
    /// [`JsonlSink::write_failed`] remains `true` and subsequent
    /// records are still dropped; only ownership of the error moves.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TelemetrySink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        if self.failed {
            return;
        }
        let line = serde_json::to_string(event).expect("events always serialize");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
            self.failed = true;
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if !self.failed {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
                self.failed = true;
            }
        }
    }
}

/// Parses a JSONL event log back into events (blank lines skipped).
///
/// # Errors
///
/// Returns a message naming the first offending line. A log truncated
/// mid-write (crashed run) fails on its torn last record — use
/// [`parse_jsonl_tolerant`] to salvage everything before it.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        // Schema headers are stream metadata, not events.
        .filter(|(_, l)| serde_json::from_str::<StreamHeader>(l).is_err())
        .map(|(i, l)| serde_json::from_str(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// A JSONL log parsed tolerantly: all whole records, plus the torn
/// trailing fragment (if any) reported rather than swallowed.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedLog {
    /// Every successfully parsed event, in log order.
    pub events: Vec<Event>,
    /// The unparseable final line of a truncated log, verbatim
    /// (`None` for a clean log).
    pub torn_tail: Option<String>,
    /// Byte offset of the torn tail's first byte within the parsed
    /// text (`None` for a clean log). Truncating the file to this
    /// offset heals the tear: everything before it is whole records.
    pub torn_tail_offset: Option<usize>,
    /// Lines holding well-formed JSON that is not a known event kind —
    /// a log written by a newer engine with event variants this build
    /// does not know. They are skipped, not fatal, so old tooling can
    /// still analyze new logs; callers should warn when non-zero.
    pub unknown_events: u64,
    /// Previews of the first few unknown records (at most
    /// [`UNKNOWN_SAMPLE_CAP`]); the rest are only counted, so tooling
    /// warns with "+N more suppressed" instead of flooding output.
    pub unknown_samples: Vec<String>,
    /// The schema header's version when the log carries one; `None`
    /// for headerless logs written before headers existed (treated as
    /// version 0 by tooling).
    pub schema_version: Option<u32>,
    /// The sampling rate from the stream's sampling header, when the
    /// log was written through a [`crate::SamplingSink`]. `None` means
    /// the stream is complete and analytics are exact.
    pub sample_rate: Option<f64>,
    /// The sampling hash seed accompanying [`ParsedLog::sample_rate`].
    pub sample_seed: Option<u64>,
}

/// Parses a JSONL event log, tolerating a truncated final record — the
/// signature of a run that crashed or was killed mid-write — and
/// unknown event kinds — the signature of a log from a newer engine.
/// Every whole known record is returned; the torn fragment is reported
/// in [`ParsedLog::torn_tail`] and skipped foreign records are counted
/// in [`ParsedLog::unknown_events`] so callers can surface both.
///
/// # Errors
///
/// Returns a message naming the offending line when a *non-final* line
/// is not even valid JSON: corruption in the middle of a log is real
/// damage, not a torn write or a forward-compat gap, and is never
/// silently skipped.
pub fn parse_jsonl_tolerant(text: &str) -> Result<ParsedLog, String> {
    // (line number, byte offset of line start, line content) for every
    // non-blank line; offsets are tracked by hand because `str::lines`
    // discards them and the torn-tail offset is part of the contract.
    let mut lines: Vec<(usize, usize, &str)> = Vec::new();
    let mut offset = 0usize;
    for (i, raw) in text.split_inclusive('\n').enumerate() {
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        let line = line.strip_suffix('\r').unwrap_or(line);
        if !line.trim().is_empty() {
            lines.push((i, offset, line));
        }
        offset += raw.len();
    }
    let mut events = Vec::with_capacity(lines.len());
    let mut torn_tail = None;
    let mut torn_tail_offset = None;
    let mut unknown_events = 0;
    let mut unknown_samples: Vec<String> = Vec::new();
    let mut schema_version = None;
    let mut sample_rate = None;
    let mut sample_seed = None;
    let last = lines.len().saturating_sub(1);
    let note_unknown = |samples: &mut Vec<String>, count: &mut u64, l: &str| {
        *count += 1;
        if samples.len() < UNKNOWN_SAMPLE_CAP {
            let preview: String = l.chars().take(80).collect();
            samples.push(preview);
        }
    };
    for (k, (i, at, l)) in lines.iter().enumerate() {
        // Stream headers are metadata: surface the first telemetry
        // schema's version and the first sampling provenance, count
        // any other as foreign.
        match serde_json::from_str::<StreamHeader>(l) {
            Ok(StreamHeader::Schema { stream, version }) => {
                if schema_version.is_none() && stream == TELEMETRY_STREAM {
                    schema_version = Some(version);
                } else {
                    note_unknown(&mut unknown_samples, &mut unknown_events, l);
                }
                continue;
            }
            Ok(StreamHeader::Sampling { rate, seed }) => {
                if sample_rate.is_none() {
                    sample_rate = Some(rate);
                    sample_seed = Some(seed);
                } else {
                    note_unknown(&mut unknown_samples, &mut unknown_events, l);
                }
                continue;
            }
            Err(_) => {}
        }
        match serde_json::from_str(l) {
            Ok(e) => events.push(e),
            // Valid JSON that is not an Event we know: a future event
            // kind, anywhere in the log. Skip and count.
            Err(_) if serde_json::from_str::<serde::Value>(l).is_ok() => {
                note_unknown(&mut unknown_samples, &mut unknown_events, l);
            }
            Err(_) if k == last => {
                torn_tail = Some((*l).to_string());
                torn_tail_offset = Some(*at);
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(ParsedLog {
        events,
        torn_tail,
        torn_tail_offset,
        unknown_events,
        unknown_samples,
        schema_version,
        sample_rate,
        sample_seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ShedCause;

    fn ev(at: u64) -> Event {
        Event::Shed {
            at,
            query: at,
            cause: ShedCause::Policy,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(&ev(1)); // no-op, no panic
    }

    #[test]
    fn vec_sink_keeps_order() {
        let mut s = VecSink::new();
        assert!(s.enabled());
        for t in 0..5 {
            s.record(&ev(t));
        }
        let ats: Vec<u64> = s.events().iter().map(Event::at).collect();
        assert_eq!(ats, [0, 1, 2, 3, 4]);
        assert_eq!(s.into_events().len(), 5);
    }

    #[test]
    fn ring_sink_bounds_memory_and_counts_everything() {
        let mut s = RingSink::new(3);
        assert!(s.is_empty());
        for t in 0..10 {
            s.record(&ev(t));
        }
        assert_eq!(s.seen(), 10);
        assert_eq!(s.len(), 3);
        let ats: Vec<u64> = s.events().map(Event::at).collect();
        assert_eq!(ats, [7, 8, 9]);
        assert_eq!(s.into_events().len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_rejects_zero_capacity() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_round_trips_and_is_deterministic() {
        let events: Vec<Event> = (0..4).map(ev).collect();
        let write_all = || {
            let mut sink = JsonlSink::new(Vec::new());
            for e in &events {
                sink.record(e);
            }
            assert_eq!(sink.lines(), 4);
            String::from_utf8(sink.finish().unwrap()).unwrap()
        };
        let a = write_all();
        let b = write_all();
        assert_eq!(a, b, "identical inputs must give identical bytes");
        assert_eq!(parse_jsonl(&a).unwrap(), events);
    }

    #[test]
    fn parse_reports_bad_lines() {
        let err = parse_jsonl("{\"nope\":1}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn tolerant_parse_salvages_torn_last_record() {
        // A crashed run truncates the log mid-record; the strict parser
        // rejects the whole file, the tolerant one returns every whole
        // record and reports the fragment.
        let events: Vec<Event> = (0..3).map(ev).collect();
        let mut sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.record(e);
        }
        let full = String::from_utf8(sink.finish().unwrap()).unwrap();
        let torn = &full[..full.len() - 9]; // cut into the last record
        assert!(parse_jsonl(torn).is_err());
        let parsed = parse_jsonl_tolerant(torn).unwrap();
        assert_eq!(parsed.events, events[..2]);
        let tail = parsed.torn_tail.expect("fragment reported");
        assert!(full.lines().nth(2).unwrap().starts_with(&tail));
    }

    #[test]
    fn tolerant_parse_of_clean_log_has_no_tail() {
        let events: Vec<Event> = (0..3).map(ev).collect();
        let mut sink = JsonlSink::new(Vec::new());
        for e in &events {
            sink.record(e);
        }
        let full = String::from_utf8(sink.finish().unwrap()).unwrap();
        let parsed = parse_jsonl_tolerant(&full).unwrap();
        assert_eq!(parsed.events, events);
        assert_eq!(parsed.torn_tail, None);
        // Trailing blank lines do not count as a torn tail.
        let padded = format!("{full}\n\n");
        assert_eq!(parse_jsonl_tolerant(&padded).unwrap().torn_tail, None);
        // The empty log parses to nothing.
        let empty = parse_jsonl_tolerant("").unwrap();
        assert!(empty.events.is_empty() && empty.torn_tail.is_none());
    }

    #[test]
    fn tolerant_parse_of_only_a_torn_record_is_empty_with_warning() {
        // A run that crashed during its very first write leaves a file
        // holding nothing but a fragment. That is still a torn tail —
        // not mid-log corruption — so the parse succeeds with zero
        // events and the fragment surfaced for the caller to warn on.
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&ev(0));
        let full = String::from_utf8(sink.finish().unwrap()).unwrap();
        let torn = &full[..full.len() / 2];
        assert!(parse_jsonl(torn).is_err());
        let parsed = parse_jsonl_tolerant(torn).unwrap();
        assert!(parsed.events.is_empty(), "no whole record survived");
        assert_eq!(parsed.torn_tail.as_deref(), Some(torn.trim_end()));
    }

    #[test]
    fn tolerant_parse_still_rejects_mid_file_corruption() {
        let good = serde_json::to_string(&ev(1)).unwrap();
        let text = format!("{good}\nnot json at all\n{good}\n");
        let err = parse_jsonl_tolerant(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn tolerant_parse_skips_unknown_event_kinds_with_count() {
        // Forward compatibility: a log written by a newer engine may
        // hold event kinds this build has never heard of. They are
        // well-formed JSON, so they are counted and skipped — anywhere
        // in the log, not just at the tail — instead of failing the
        // whole parse.
        let good = serde_json::to_string(&ev(1)).unwrap();
        let text = format!(
            "{good}\n\
             {{\"TeleportDone\":{{\"at\":9,\"worker\":3}}}}\n\
             {good}\n\
             {{\"AnotherFutureKind\":null}}\n"
        );
        let parsed = parse_jsonl_tolerant(&text).unwrap();
        assert_eq!(parsed.events, vec![ev(1), ev(1)]);
        assert_eq!(parsed.unknown_events, 2);
        assert_eq!(parsed.torn_tail, None);
        // The strict parser still refuses foreign records outright.
        assert!(parse_jsonl(&text).is_err());
        // Unknown kinds and a torn tail can coexist: the torn final
        // fragment is not valid JSON, so it is reported as torn while
        // the foreign record is counted.
        let both = format!("{good}\n{{\"FutureKind\":1}}\n{{\"Shed\":{{\"at");
        let parsed = parse_jsonl_tolerant(&both).unwrap();
        assert_eq!(parsed.events, vec![ev(1)]);
        assert_eq!(parsed.unknown_events, 1);
        assert!(parsed.torn_tail.is_some());
    }

    #[test]
    fn tolerant_parse_reports_the_torn_tail_byte_offset() {
        let mut sink = JsonlSink::new(Vec::new());
        for t in 0..3 {
            sink.record(&ev(t));
        }
        let full = String::from_utf8(sink.finish().unwrap()).unwrap();
        let cut = full.len() - 9;
        let torn = &full[..cut];
        let parsed = parse_jsonl_tolerant(torn).unwrap();
        let at = parsed.torn_tail_offset.expect("offset reported");
        // The offset points at the start of the torn record: truncating
        // there leaves exactly the whole-record prefix.
        assert_eq!(&torn[..at], {
            let two_lines: usize = full.lines().take(2).map(|l| l.len() + 1).sum();
            &full[..two_lines]
        });
        assert_eq!(&torn[at..], parsed.torn_tail.as_deref().unwrap());
        // Clean logs report no offset.
        assert_eq!(parse_jsonl_tolerant(&full).unwrap().torn_tail_offset, None);
    }

    /// A writer that fails once `ok_lines` whole lines have gone
    /// through (a record may arrive as several `write` calls).
    struct FlakyWriter {
        ok_lines: usize,
        seen: usize,
    }

    impl Write for FlakyWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.seen >= self.ok_lines {
                return Err(io::Error::other("disk full"));
            }
            self.seen += buf.iter().filter(|&&b| b == b'\n').count();
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_latches_and_surfaces_write_failures() {
        let mut sink = JsonlSink::new(FlakyWriter {
            ok_lines: 2,
            seen: 0,
        });
        assert!(!sink.write_failed());
        for t in 0..5 {
            sink.record(&ev(t));
        }
        assert!(sink.write_failed());
        assert_eq!(sink.lines(), 2, "only the successful writes count");
        let err = sink.take_error().expect("first error surfaced");
        assert_eq!(err.to_string(), "disk full");
        // Taking the error does not un-fail the sink.
        assert!(sink.write_failed());
        assert!(sink.take_error().is_none(), "error moves out once");
        sink.record(&ev(9));
        assert_eq!(sink.lines(), 2, "failed sinks drop further records");
    }

    #[test]
    fn schema_headers_are_surfaced_not_counted() {
        let good = serde_json::to_string(&ev(1)).unwrap();
        let header = serde_json::to_string(&StreamHeader::telemetry()).unwrap();
        let text = format!("{header}\n{good}\n{good}\n");
        // The tolerant parser surfaces the version; the strict parser
        // skips the header as metadata.
        let parsed = parse_jsonl_tolerant(&text).unwrap();
        assert_eq!(parsed.schema_version, Some(JSONL_SCHEMA_VERSION));
        assert_eq!(parsed.events, vec![ev(1), ev(1)]);
        assert_eq!(parsed.unknown_events, 0);
        assert_eq!(parse_jsonl(&text).unwrap(), vec![ev(1), ev(1)]);
        // Headerless v0 logs parse with no version.
        let v0 = format!("{good}\n");
        assert_eq!(parse_jsonl_tolerant(&v0).unwrap().schema_version, None);
        // A foreign stream's header is a future record, not ours.
        let foreign = "{\"Schema\":{\"stream\":\"decisions\",\"version\":1}}";
        let text = format!("{foreign}\n{good}\n");
        let parsed = parse_jsonl_tolerant(&text).unwrap();
        assert_eq!(parsed.schema_version, None);
        assert_eq!(parsed.unknown_events, 1);
    }

    #[test]
    fn create_writes_the_header_and_resume_skips_it() {
        let dir = std::env::temp_dir().join(format!("ramsis-sink-hdr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(&ev(0));
        sink.record(&ev(1));
        assert_eq!(sink.lines(), 2, "header is not a record");
        drop(sink.finish().unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"Schema\":"), "{text}");
        let parsed = parse_jsonl_tolerant(&text).unwrap();
        assert_eq!(parsed.schema_version, Some(JSONL_SCHEMA_VERSION));
        assert_eq!(parsed.events, vec![ev(0), ev(1)]);
        // Resuming after 1 record keeps the header and the first
        // record, discarding the second.
        let mut resumed = JsonlSink::resume_at(&path, 1).unwrap();
        assert_eq!(resumed.lines(), 1);
        resumed.record(&ev(1));
        drop(resumed.finish().unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_at_heals_the_torn_tail_and_continues_the_log() {
        let dir = std::env::temp_dir().join(format!("ramsis-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");

        // A "killed" run: three whole records plus a torn fragment.
        let mut sink = JsonlSink::create(&path).unwrap();
        for t in 0..3 {
            sink.record(&ev(t));
        }
        drop(sink.finish().unwrap());
        let clean = std::fs::read_to_string(&path).unwrap();
        let mut torn = clean.clone();
        torn.push_str("{\"Shed\":{\"at");
        std::fs::write(&path, &torn).unwrap();

        // Resume from a checkpoint taken after 2 events: the third
        // record AND the fragment are both past the checkpoint, so
        // truncation discards them before appending.
        let mut resumed = JsonlSink::resume_at(&path, 2).unwrap();
        assert_eq!(resumed.lines(), 2);
        resumed.record(&ev(2));
        drop(resumed.finish().unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), clean);

        // A checkpoint past the log's whole records is refused.
        std::fs::write(&path, &torn).unwrap();
        let err = JsonlSink::resume_at(&path, 4).unwrap_err();
        assert!(err.to_string().contains("3 whole records"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampling_header_round_trips_and_is_not_an_event() {
        let dir = std::env::temp_dir().join(format!("ramsis-sink-smp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sampled.jsonl");
        let mut sink = JsonlSink::create_sampled(&path, 0.01, 0xFEED).unwrap();
        sink.record(&ev(0));
        assert_eq!(sink.lines(), 1, "headers are not records");
        drop(sink.finish().unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_jsonl_tolerant(&text).unwrap();
        assert_eq!(parsed.sample_rate, Some(0.01));
        assert_eq!(parsed.sample_seed, Some(0xFEED));
        assert_eq!(parsed.schema_version, Some(JSONL_SCHEMA_VERSION));
        assert_eq!(parsed.events, vec![ev(0)]);
        assert_eq!(parsed.unknown_events, 0);
        // The strict parser skips both header lines as metadata.
        assert_eq!(parse_jsonl(&text).unwrap(), vec![ev(0)]);
        // Unsampled logs report no rate.
        let plain = parse_jsonl_tolerant("").unwrap();
        assert_eq!(plain.sample_rate, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_previews_are_capped_with_the_rest_only_counted() {
        let good = serde_json::to_string(&ev(1)).unwrap();
        let mut text = format!("{good}\n");
        for i in 0..(UNKNOWN_SAMPLE_CAP + 7) {
            text.push_str(&format!("{{\"FutureKind{i}\":{i}}}\n"));
        }
        let parsed = parse_jsonl_tolerant(&text).unwrap();
        assert_eq!(parsed.unknown_events, (UNKNOWN_SAMPLE_CAP + 7) as u64);
        assert_eq!(parsed.unknown_samples.len(), UNKNOWN_SAMPLE_CAP);
        assert!(parsed.unknown_samples[0].contains("FutureKind0"));
        // Previews are truncated so one giant record cannot flood.
        let long = format!("{{\"Huge\":\"{}\"}}\n", "x".repeat(4000));
        let parsed = parse_jsonl_tolerant(&long).unwrap();
        assert!(parsed.unknown_samples[0].chars().count() <= 80);
    }
}
