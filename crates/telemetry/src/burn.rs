//! Streaming SLO burn-rate monitoring with hysteretic alerting.
//!
//! The violation *budget* is the violation rate the operator accepts
//! (e.g. 1% of completions may miss the SLO). The **burn rate** is how
//! fast that budget is being consumed: the violation rate observed in
//! a sliding window divided by the budget — burn 1.0 spends exactly
//! the budget, burn 10 exhausts a month's budget in three days.
//!
//! [`BurnMonitor`] follows the classic multi-window construction: an
//! alert **enters** only when both a *fast* (short) and a *slow*
//! (long) window burn above the enter threshold — the fast window
//! catches the spike, the slow window confirms it is not a blip — and
//! **exits** when the fast window burns below a lower exit threshold.
//! Both transitions are Schmitt-triggered: the condition must hold
//! continuously for a confirmation interval before the alert toggles,
//! so consecutive alert events are always at least the confirmation
//! interval apart (the no-flap property the property suite pins).
//!
//! The monitor is streaming — feed it completions in simulation-time
//! order via [`BurnMonitor::observe`] — and [`burn_analysis`] runs it
//! over a recorded event stream next to [`crate::analyze::aggregates`]
//! (whose `violations`/`served` counters it must match exactly).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::event::{Event, Nanos};

/// Burn-rate monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnConfig {
    /// The violation budget: the acceptable violation rate, in (0, 1].
    pub budget: f64,
    /// Fast (spike-catching) window length, nanoseconds.
    pub fast_window_ns: Nanos,
    /// Slow (blip-rejecting) window length, nanoseconds; at least the
    /// fast window.
    pub slow_window_ns: Nanos,
    /// Enter when both windows burn at or above this multiple of the
    /// budget.
    pub enter_burn: f64,
    /// Exit when the fast window burns at or below this multiple;
    /// strictly below `enter_burn` (the hysteresis gap).
    pub exit_burn: f64,
    /// Either condition must hold continuously this long before the
    /// alert toggles; at least 1 ns.
    pub confirm_ns: Nanos,
}

impl BurnConfig {
    /// The default monitor for a given budget: 5 s fast / 30 s slow
    /// windows, enter at 2x burn, exit at 1x, 1 s confirmation.
    pub fn for_budget(budget: f64) -> Self {
        Self {
            budget,
            fast_window_ns: 5_000_000_000,
            slow_window_ns: 30_000_000_000,
            enter_burn: 2.0,
            exit_burn: 1.0,
            confirm_ns: 1_000_000_000,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistent field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.budget > 0.0 && self.budget <= 1.0) {
            return Err(format!("budget must be in (0, 1], got {}", self.budget));
        }
        if self.fast_window_ns == 0 || self.slow_window_ns < self.fast_window_ns {
            return Err(format!(
                "windows must satisfy 0 < fast ({}) <= slow ({})",
                self.fast_window_ns, self.slow_window_ns
            ));
        }
        if !(self.enter_burn > self.exit_burn && self.exit_burn >= 0.0) {
            return Err(format!(
                "thresholds must satisfy enter ({}) > exit ({}) >= 0",
                self.enter_burn, self.exit_burn
            ));
        }
        if self.confirm_ns == 0 {
            return Err("confirmation interval must be at least 1 ns".to_string());
        }
        Ok(())
    }
}

/// Alert transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurnAlertKind {
    /// Both windows burned above the enter threshold for the
    /// confirmation interval.
    Enter,
    /// The fast window burned below the exit threshold for the
    /// confirmation interval.
    Exit,
}

/// One alert transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnAlert {
    /// Transition time (the completion that confirmed it).
    pub at: Nanos,
    /// Direction.
    pub kind: BurnAlertKind,
    /// Fast-window burn at the transition.
    pub fast_burn: f64,
    /// Slow-window burn at the transition.
    pub slow_burn: f64,
}

/// End-of-stream summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurnSummary {
    /// Every alert transition, in time order (Enter/Exit alternating,
    /// starting with Enter).
    pub alerts: Vec<BurnAlert>,
    /// Completions observed — must equal the engine's `served`
    /// counter.
    pub completions: u64,
    /// Violations observed — must equal the engine's `violations`
    /// counter.
    pub violations: u64,
    /// Whole-run burn: `(violations / completions) / budget` (0 when
    /// nothing completed).
    pub overall_burn: f64,
    /// The largest fast-window burn observed.
    pub peak_fast_burn: f64,
    /// Total time spent with the alert active (an alert still active
    /// at the last observation counts up to that observation).
    pub time_in_alert_ns: Nanos,
}

/// One sliding violation window over (possibly weighted) completions.
///
/// Weights support burn analysis on query-coherently sampled streams:
/// a kept boring completion stands for `1/rate` real ones, a violation
/// (always kept) for exactly itself. On unsampled streams every weight
/// is 1.0 and the weighted sums are exact integer arithmetic in `f64`,
/// so the unweighted path's behavior is bit-identical to the
/// pre-weighting implementation.
#[derive(Debug, Clone, Default)]
struct Window {
    buf: VecDeque<(Nanos, bool, f64)>,
    w_violations: f64,
    w_total: f64,
}

impl Window {
    /// Admits a completion and evicts everything older than `span`
    /// (the window is the half-open interval `(at - span, at]`).
    fn observe(&mut self, at: Nanos, violated: bool, weight: f64, span: Nanos) {
        self.buf.push_back((at, violated, weight));
        self.w_total += weight;
        if violated {
            self.w_violations += weight;
        }
        while let Some(&(t, v, w)) = self.buf.front() {
            if t + span > at {
                break;
            }
            self.buf.pop_front();
            self.w_total -= w;
            if v {
                self.w_violations -= w;
            }
        }
    }

    /// Weighted violation rate over the window's completions (clamped
    /// at 0 against eviction round-off on weighted streams).
    fn rate(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            (self.w_violations / self.w_total).max(0.0)
        }
    }
}

/// The streaming monitor.
#[derive(Debug, Clone)]
pub struct BurnMonitor {
    cfg: BurnConfig,
    fast: Window,
    slow: Window,
    completions: u64,
    violations: u64,
    w_completions: f64,
    w_violations: f64,
    active: bool,
    above_since: Option<Nanos>,
    below_since: Option<Nanos>,
    entered_at: Option<Nanos>,
    time_in_alert_ns: Nanos,
    peak_fast_burn: f64,
    last_at: Nanos,
    alerts: Vec<BurnAlert>,
}

impl BurnMonitor {
    /// Creates a monitor.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (use
    /// [`BurnConfig::validate`] to check first).
    pub fn new(cfg: BurnConfig) -> Self {
        cfg.validate().expect("valid burn configuration");
        Self {
            cfg,
            fast: Window::default(),
            slow: Window::default(),
            completions: 0,
            violations: 0,
            w_completions: 0.0,
            w_violations: 0.0,
            active: false,
            above_since: None,
            below_since: None,
            entered_at: None,
            time_in_alert_ns: 0,
            peak_fast_burn: 0.0,
            last_at: 0,
            alerts: Vec::new(),
        }
    }

    /// Fast-window burn right now.
    pub fn fast_burn(&self) -> f64 {
        self.fast.rate() / self.cfg.budget
    }

    /// Slow-window burn right now.
    pub fn slow_burn(&self) -> f64 {
        self.slow.rate() / self.cfg.budget
    }

    /// Whether the alert is currently active.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Feeds one completion (in non-decreasing time order) and returns
    /// the alert transition it confirmed, if any.
    pub fn observe(&mut self, at: Nanos, violated: bool) -> Option<BurnAlert> {
        self.observe_weighted(at, violated, 1.0)
    }

    /// Like [`BurnMonitor::observe`], weighting the completion — the
    /// entry point for sampled streams, where a kept boring completion
    /// stands for `1/rate` real ones. With weight 1.0 this *is*
    /// [`BurnMonitor::observe`]: the weighted sums stay exact integer
    /// arithmetic and every threshold comparison sees identical values.
    pub fn observe_weighted(
        &mut self,
        at: Nanos,
        violated: bool,
        weight: f64,
    ) -> Option<BurnAlert> {
        self.completions += 1;
        self.violations += u64::from(violated);
        self.w_completions += weight;
        if violated {
            self.w_violations += weight;
        }
        self.last_at = at;
        self.fast
            .observe(at, violated, weight, self.cfg.fast_window_ns);
        self.slow
            .observe(at, violated, weight, self.cfg.slow_window_ns);
        let fast = self.fast_burn();
        let slow = self.slow_burn();
        self.peak_fast_burn = self.peak_fast_burn.max(fast);

        let alert = if self.active {
            self.above_since = None;
            if fast <= self.cfg.exit_burn {
                let since = *self.below_since.get_or_insert(at);
                (at - since >= self.cfg.confirm_ns).then(|| {
                    self.active = false;
                    self.below_since = None;
                    if let Some(entered) = self.entered_at.take() {
                        self.time_in_alert_ns += at - entered;
                    }
                    BurnAlert {
                        at,
                        kind: BurnAlertKind::Exit,
                        fast_burn: fast,
                        slow_burn: slow,
                    }
                })
            } else {
                self.below_since = None;
                None
            }
        } else {
            self.below_since = None;
            if fast >= self.cfg.enter_burn && slow >= self.cfg.enter_burn {
                let since = *self.above_since.get_or_insert(at);
                (at - since >= self.cfg.confirm_ns).then(|| {
                    self.active = true;
                    self.above_since = None;
                    self.entered_at = Some(at);
                    BurnAlert {
                        at,
                        kind: BurnAlertKind::Enter,
                        fast_burn: fast,
                        slow_burn: slow,
                    }
                })
            } else {
                self.above_since = None;
                None
            }
        };
        if let Some(a) = alert {
            self.alerts.push(a);
        }
        alert
    }

    /// Snapshots the summary (an alert still active counts its time up
    /// to the last observation).
    pub fn summary(&self) -> BurnSummary {
        let overall = if self.completions == 0 {
            0.0
        } else {
            (self.violations as f64 / self.completions as f64) / self.cfg.budget
        };
        let mut time_in_alert_ns = self.time_in_alert_ns;
        if let Some(entered) = self.entered_at {
            time_in_alert_ns += self.last_at - entered;
        }
        BurnSummary {
            alerts: self.alerts.clone(),
            completions: self.completions,
            violations: self.violations,
            overall_burn: overall,
            peak_fast_burn: self.peak_fast_burn,
            time_in_alert_ns,
        }
    }
}

/// Runs the monitor over a recorded event stream (completions only —
/// the same universe as the engine's `served`/`violations` counters,
/// which the summary's counts must match exactly).
pub fn burn_analysis(events: &[Event], cfg: BurnConfig) -> BurnSummary {
    let mut monitor = BurnMonitor::new(cfg);
    for ev in events {
        if let Event::Complete { at, violated, .. } = *ev {
            monitor.observe(at, violated);
        }
    }
    monitor.summary()
}

/// Burn analysis of a sampled stream: the weighted estimates next to
/// the exact kept-substream counts, with explicit provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledBurnSummary {
    /// The monitor's summary over the kept completions. Its
    /// `violations` count is *exact* (violating queries are always
    /// kept); its `completions` count covers the kept substream only.
    /// Alerts fire on the weighted burn rates.
    pub kept: BurnSummary,
    /// The stream's sampling rate (1.0: the summary is exact and
    /// matches [`burn_analysis`]).
    pub sample_rate: f64,
    /// Estimated full-stream completions (Horvitz-Thompson weighted).
    pub est_completions: f64,
    /// Estimated whole-run burn over the estimated completions.
    pub est_overall_burn: f64,
}

/// Runs the monitor over a *sampled* event stream, weighting each kept
/// completion by its query's inverse keep probability (see
/// [`crate::sample::query_weights`]), so window burn rates estimate
/// the full stream's. Violations are always kept, so every alert the
/// full stream's fast spikes would have raised has its violations
/// present here; only the diluting on-time traffic is estimated. On an
/// unsampled stream (`sample_rate` 1.0) this reduces exactly to
/// [`burn_analysis`].
pub fn sampled_burn_analysis(
    events: &[Event],
    cfg: BurnConfig,
    sample_rate: f64,
) -> SampledBurnSummary {
    let weights = crate::sample::query_weights(events, sample_rate);
    let mut monitor = BurnMonitor::new(cfg);
    for ev in events {
        if let Event::Complete {
            at,
            query,
            violated,
            ..
        } = *ev
        {
            let w = weights.get(&query).copied().unwrap_or(1.0);
            monitor.observe_weighted(at, violated, w);
        }
    }
    let est_overall_burn = if monitor.w_completions == 0.0 {
        0.0
    } else {
        (monitor.w_violations / monitor.w_completions) / cfg.budget
    };
    SampledBurnSummary {
        kept: monitor.summary(),
        sample_rate,
        est_completions: monitor.w_completions,
        est_overall_burn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BurnConfig {
        BurnConfig {
            budget: 0.1,
            fast_window_ns: 1_000,
            slow_window_ns: 4_000,
            enter_burn: 2.0,
            exit_burn: 1.0,
            confirm_ns: 100,
        }
    }

    #[test]
    fn validation_rejects_inconsistent_configs() {
        assert!(cfg().validate().is_ok());
        for bad in [
            BurnConfig {
                budget: 0.0,
                ..cfg()
            },
            BurnConfig {
                budget: 1.5,
                ..cfg()
            },
            BurnConfig {
                slow_window_ns: 10,
                ..cfg()
            },
            BurnConfig {
                exit_burn: 3.0,
                ..cfg()
            },
            BurnConfig {
                confirm_ns: 0,
                ..cfg()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn alert_enters_after_confirmation_and_exits_on_recovery() {
        let mut m = BurnMonitor::new(cfg());
        // All violations: burn = (1.0 / 0.1) = 10x in both windows.
        // The first observation arms the trigger; confirmation needs
        // 100 ns of sustained breach.
        assert!(m.observe(0, true).is_none());
        assert!(m.observe(50, true).is_none(), "inside confirmation");
        let enter = m.observe(150, true).expect("confirmed");
        assert_eq!(enter.kind, BurnAlertKind::Enter);
        assert!(m.active());
        // Clean completions pull the fast window to 0 burn; the first
        // clean observation arms the exit, a later one confirms.
        assert!(m.observe(1_200, false).is_none());
        let exit = m.observe(1_350, false).expect("confirmed exit");
        assert_eq!(exit.kind, BurnAlertKind::Exit);
        assert!(!m.active());
        let s = m.summary();
        assert_eq!(s.alerts.len(), 2);
        assert_eq!(s.completions, 5);
        assert_eq!(s.violations, 3);
        assert_eq!(s.time_in_alert_ns, 1_350 - 150);
        assert!(s.peak_fast_burn >= 10.0);
    }

    #[test]
    fn slow_window_rejects_blips() {
        // A short spike breaches the fast window but the slow window
        // (diluted by a clean history) stays below the enter
        // threshold: no alert.
        let mut m = BurnMonitor::new(cfg());
        for t in 0..30u64 {
            assert!(m.observe(t * 100, false).is_none());
        }
        // Two violations inside one fast window: fast burn is high,
        // slow burn is 2/32 / 0.1 = 0.625 < 2.
        assert!(m.observe(3_000, true).is_none());
        assert!(m.observe(3_150, true).is_none());
        assert!(!m.active());
        assert!(m.summary().alerts.is_empty());
    }

    #[test]
    fn interrupted_breaches_do_not_accumulate() {
        let mut m = BurnMonitor::new(cfg());
        // Breach, then recover before confirmation, then breach again:
        // the confirmation clock restarts.
        assert!(m.observe(0, true).is_none());
        for i in 0..20u64 {
            // Clean completions drop the fast burn below enter.
            assert!(m.observe(10 + i, false).is_none());
        }
        assert!(m.observe(2_000, true).is_none(), "re-armed, not confirmed");
        assert!(!m.active());
    }

    #[test]
    fn analysis_matches_direct_counts_and_serializes() {
        let events: Vec<Event> = (0..10u64)
            .map(|q| Event::Complete {
                at: q * 500,
                query: q,
                worker: 0,
                model: 0,
                response_ns: 100,
                violated: q % 2 == 0,
            })
            .collect();
        let s = burn_analysis(&events, cfg());
        assert_eq!(s.completions, 10);
        assert_eq!(s.violations, 5);
        assert!((s.overall_burn - 0.5 / 0.1).abs() < 1e-12);
        let json = serde_json::to_string(&s).unwrap();
        let back: BurnSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    fn completion(q: u64, at: Nanos, violated: bool) -> Event {
        Event::Complete {
            at,
            query: q,
            worker: 0,
            model: 0,
            response_ns: 100,
            violated,
        }
    }

    #[test]
    fn sampled_analysis_at_rate_one_is_exactly_the_plain_analysis() {
        let events: Vec<Event> = (0..200u64)
            .map(|q| completion(q, q * 37, q % 3 == 0))
            .collect();
        let exact = burn_analysis(&events, cfg());
        let sampled = sampled_burn_analysis(&events, cfg(), 1.0);
        assert_eq!(sampled.kept, exact, "rate 1.0 changes nothing");
        assert_eq!(sampled.est_completions, exact.completions as f64);
        assert_eq!(sampled.est_overall_burn, exact.overall_burn);
    }

    #[test]
    fn weighted_estimates_reconstruct_diluted_traffic() {
        // A full stream: 10 violations among 100 completions (burn
        // 10/100/0.1 = 1.0). A 10%-sampled view keeps every violation
        // and roughly a tenth of the boring bulk; the weighted overall
        // burn must land near the full stream's, while the naive rate
        // over kept events alone would be wildly inflated.
        let full: Vec<Event> = (0..100u64)
            .map(|q| completion(q, q * 1_000, q < 10))
            .collect();
        // Keep all 10 violations and exactly 9 boring completions.
        let sampled: Vec<Event> = full
            .iter()
            .filter(|e| match e {
                Event::Complete { query, .. } => *query < 10 || *query % 10 == 0,
                _ => false,
            })
            .cloned()
            .collect();
        let s = sampled_burn_analysis(&sampled, cfg(), 0.1);
        assert_eq!(s.kept.violations, 10, "violations are exact");
        assert_eq!(s.kept.completions, 19);
        assert!((s.est_completions - (10.0 + 9.0 * 10.0)).abs() < 1e-9);
        let est_rate = 10.0 / s.est_completions;
        assert!((s.est_overall_burn - est_rate / 0.1).abs() < 1e-9);
        // The unweighted burn over the kept events would be ~5x.
        assert!(s.est_overall_burn < 2.0);
    }
}
