//! The compact binary event codec: the same [`Event`] stream the JSONL
//! sink writes, at a fraction of the serialization cost and byte size.
//!
//! Layout (DESIGN.md §15):
//!
//! - **File header**: the 4-byte magic `RMTB`, a little-endian `u32`
//!   schema version ([`BIN_SCHEMA_VERSION`]), one flags byte, and —
//!   when the sampled flag is set — the sample rate (`f64` bits, LE)
//!   and sampling seed (`u64`, LE). The header is what format
//!   auto-detection keys on: a JSONL log can never start with `RMTB`
//!   (it would have to be a line of invalid JSON).
//! - **Records**: one per event — a `u8` kind tag (the [`Event`]
//!   variant's declaration index), a varint payload length, then the
//!   payload. Integers are LEB128 varints, signed fields are zigzag
//!   varints, floats are 8 fixed little-endian IEEE-754 bytes, strings
//!   are varint-length-prefixed UTF-8, and sub-enums are one tag byte.
//!
//! The explicit payload length is what buys tolerance: an unknown kind
//! tag from a newer engine is skipped whole (counted, like the JSONL
//! parser's unknown kinds), and a record cut short by a mid-write kill
//! is reported as a torn tail with the byte offset that heals it —
//! truncating the file there leaves exactly the whole-record prefix.
//!
//! Encoding is deterministic (no maps, no float formatting), so a
//! seeded run writes a byte-identical binary log on every replay, and
//! the JSONL⇄binary converters are lossless in both directions.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::{Action, Event, QueueId, ShedCause};
use crate::sink::{ParsedLog, StreamHeader, TelemetrySink, UNKNOWN_SAMPLE_CAP};

/// Magic bytes a binary telemetry stream starts with.
pub const BIN_MAGIC: [u8; 4] = *b"RMTB";

/// Version of the binary record schema written by [`BinSink`]. Bumped
/// when a record's shape changes incompatibly; it tracks the JSONL
/// schema (the record *contents* are the same events).
pub const BIN_SCHEMA_VERSION: u32 = 1;

/// Header flag bit: the stream was written through a sampling sink and
/// carries its rate + seed in the header.
const FLAG_SAMPLED: u8 = 0b0000_0001;

/// True when `bytes` starts with the binary stream magic — the format
/// auto-detection used by `ramsis-cli` for `--telemetry` paths and
/// `telemetry convert` inputs.
pub fn is_binary_stream(bytes: &[u8]) -> bool {
    bytes.len() >= BIN_MAGIC.len() && bytes[..BIN_MAGIC.len()] == BIN_MAGIC
}

// ---------------------------------------------------------------------
// Primitive encoders
// ---------------------------------------------------------------------

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn put_zigzag(buf: &mut Vec<u8>, v: i64) {
    put_varint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_queue(buf: &mut Vec<u8>, q: QueueId) {
    match q {
        QueueId::Central => buf.push(0),
        QueueId::Worker(w) => {
            buf.push(1);
            put_varint(buf, u64::from(w));
        }
        QueueId::Limbo => buf.push(2),
    }
}

fn put_action(buf: &mut Vec<u8>, a: Action) {
    match a {
        Action::Serve { model, batch } => {
            buf.push(0);
            put_varint(buf, u64::from(model));
            put_varint(buf, u64::from(batch));
        }
        Action::Drop { count } => {
            buf.push(1);
            put_varint(buf, u64::from(count));
        }
        Action::Idle => buf.push(2),
    }
}

// ---------------------------------------------------------------------
// Primitive decoders (byte-slice cursor; Err(()) = malformed payload)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn byte(&mut self) -> Result<u8, ()> {
        let b = *self.buf.get(self.pos).ok_or(())?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, ()> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(()); // overlong encoding
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn u32(&mut self) -> Result<u32, ()> {
        u32::try_from(self.varint()?).map_err(|_| ())
    }

    fn zigzag(&mut self) -> Result<i64, ()> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn f64(&mut self) -> Result<f64, ()> {
        let end = self.pos.checked_add(8).ok_or(())?;
        let bytes: [u8; 8] = self.buf.get(self.pos..end).ok_or(())?.try_into().unwrap();
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn bool(&mut self) -> Result<bool, ()> {
        match self.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(()),
        }
    }

    fn string(&mut self) -> Result<String, ()> {
        let len = usize::try_from(self.varint()?).map_err(|_| ())?;
        let end = self.pos.checked_add(len).ok_or(())?;
        let bytes = self.buf.get(self.pos..end).ok_or(())?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| ())
    }

    fn queue(&mut self) -> Result<QueueId, ()> {
        match self.byte()? {
            0 => Ok(QueueId::Central),
            1 => Ok(QueueId::Worker(self.u32()?)),
            2 => Ok(QueueId::Limbo),
            _ => Err(()),
        }
    }

    fn action(&mut self) -> Result<Action, ()> {
        match self.byte()? {
            0 => Ok(Action::Serve {
                model: self.u32()?,
                batch: self.u32()?,
            }),
            1 => Ok(Action::Drop { count: self.u32()? }),
            2 => Ok(Action::Idle),
            _ => Err(()),
        }
    }
}

// ---------------------------------------------------------------------
// Event (de)serialization
// ---------------------------------------------------------------------

/// Kind tags follow [`Event`]'s declaration order; new variants append.
fn kind_of(event: &Event) -> u8 {
    match event {
        Event::Arrival { .. } => 0,
        Event::Enqueue { .. } => 1,
        Event::Dispatch { .. } => 2,
        Event::Complete { .. } => 3,
        Event::Shed { .. } => 4,
        Event::Drop { .. } => 5,
        Event::CrashRequeue { .. } => 6,
        Event::PolicyDecision { .. } => 7,
        Event::RegimeSwap { .. } => 8,
        Event::LazySolve { .. } => 9,
        Event::FallbackEngaged { .. } => 10,
        Event::Timeout { .. } => 11,
        Event::Retry { .. } => 12,
        Event::HedgeIssued { .. } => 13,
        Event::HedgeCancelled { .. } => 14,
        Event::Admission { .. } => 15,
        Event::ScaleUp { .. } => 16,
        Event::ScaleDown { .. } => 17,
        Event::WorkerWarm { .. } => 18,
        Event::DrainComplete { .. } => 19,
        Event::BrownoutEnter { .. } => 20,
        Event::BrownoutExit { .. } => 21,
        Event::ProbeSent { .. } => 22,
        Event::ProbeFailed { .. } => 23,
        Event::Suspect { .. } => 24,
        Event::Reinstate { .. } => 25,
        Event::BreakerOpen { .. } => 26,
        Event::BreakerHalfOpen { .. } => 27,
        Event::BreakerClose { .. } => 28,
    }
}

fn encode_payload(buf: &mut Vec<u8>, event: &Event) {
    match *event {
        Event::Arrival {
            at,
            query,
            deadline,
        } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_varint(buf, deadline);
        }
        Event::Enqueue {
            at,
            query,
            queue,
            depth,
        } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_queue(buf, queue);
            put_varint(buf, u64::from(depth));
        }
        Event::Dispatch {
            at,
            worker,
            model,
            batch,
            depth,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(model));
            put_varint(buf, u64::from(batch));
            put_varint(buf, u64::from(depth));
        }
        Event::Complete {
            at,
            query,
            worker,
            model,
            response_ns,
            violated,
        } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(model));
            put_varint(buf, response_ns);
            put_bool(buf, violated);
        }
        Event::Shed { at, query, cause } => {
            put_varint(buf, at);
            put_varint(buf, query);
            buf.push(match cause {
                ShedCause::Hopeless => 0,
                ShedCause::QueueDepth => 1,
                ShedCause::Policy => 2,
                ShedCause::RetryExhausted => 3,
            });
        }
        Event::Drop { at, query } => {
            put_varint(buf, at);
            put_varint(buf, query);
        }
        Event::CrashRequeue { at, query, from } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_varint(buf, u64::from(from));
        }
        Event::PolicyDecision {
            at,
            worker,
            queued,
            slack_ns,
            action,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(queued));
            put_zigzag(buf, slack_ns);
            put_action(buf, action);
        }
        Event::RegimeSwap {
            at,
            ref from,
            ref to,
            detection_delay_ns,
        } => {
            put_varint(buf, at);
            put_str(buf, from);
            put_str(buf, to);
            put_varint(buf, detection_delay_ns);
        }
        Event::LazySolve { at, ref regime } => {
            put_varint(buf, at);
            put_str(buf, regime);
        }
        Event::FallbackEngaged { at, worker }
        | Event::DrainComplete { at, worker }
        | Event::ProbeSent { at, worker }
        | Event::ProbeFailed { at, worker }
        | Event::BreakerOpen { at, worker }
        | Event::BreakerHalfOpen { at, worker }
        | Event::BreakerClose { at, worker } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
        }
        Event::Timeout {
            at,
            query,
            worker,
            attempt,
        } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(attempt));
        }
        Event::Retry {
            at,
            query,
            attempt,
            delay_ns,
        } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_varint(buf, u64::from(attempt));
            put_varint(buf, delay_ns);
        }
        Event::HedgeIssued {
            at,
            primary,
            hedge,
            model,
            batch,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(primary));
            put_varint(buf, u64::from(hedge));
            put_varint(buf, u64::from(model));
            put_varint(buf, u64::from(batch));
        }
        Event::HedgeCancelled { at, worker, winner } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(winner));
        }
        Event::Admission {
            at,
            query,
            queue,
            depth,
            sojourn_ns,
        } => {
            put_varint(buf, at);
            put_varint(buf, query);
            put_queue(buf, queue);
            put_varint(buf, u64::from(depth));
            put_varint(buf, sojourn_ns);
        }
        Event::ScaleUp { at, worker, live } | Event::WorkerWarm { at, worker, live } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(live));
        }
        Event::ScaleDown {
            at,
            worker,
            live,
            handoffs,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_varint(buf, u64::from(live));
            put_varint(buf, u64::from(handoffs));
        }
        Event::BrownoutEnter {
            at,
            rung,
            load_qps,
            capacity_qps,
        }
        | Event::BrownoutExit {
            at,
            rung,
            load_qps,
            capacity_qps,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(rung));
            put_f64(buf, load_qps);
            put_f64(buf, capacity_qps);
        }
        Event::Suspect {
            at,
            worker,
            genuine,
            lag_ns,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_bool(buf, genuine);
            put_varint(buf, lag_ns);
        }
        Event::Reinstate {
            at,
            worker,
            suspected_ns,
        } => {
            put_varint(buf, at);
            put_varint(buf, u64::from(worker));
            put_varint(buf, suspected_ns);
        }
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Event, ()> {
    let mut c = Cursor::new(payload);
    let event = match kind {
        0 => Event::Arrival {
            at: c.varint()?,
            query: c.varint()?,
            deadline: c.varint()?,
        },
        1 => Event::Enqueue {
            at: c.varint()?,
            query: c.varint()?,
            queue: c.queue()?,
            depth: c.u32()?,
        },
        2 => Event::Dispatch {
            at: c.varint()?,
            worker: c.u32()?,
            model: c.u32()?,
            batch: c.u32()?,
            depth: c.u32()?,
        },
        3 => Event::Complete {
            at: c.varint()?,
            query: c.varint()?,
            worker: c.u32()?,
            model: c.u32()?,
            response_ns: c.varint()?,
            violated: c.bool()?,
        },
        4 => Event::Shed {
            at: c.varint()?,
            query: c.varint()?,
            cause: match c.byte()? {
                0 => ShedCause::Hopeless,
                1 => ShedCause::QueueDepth,
                2 => ShedCause::Policy,
                3 => ShedCause::RetryExhausted,
                _ => return Err(()),
            },
        },
        5 => Event::Drop {
            at: c.varint()?,
            query: c.varint()?,
        },
        6 => Event::CrashRequeue {
            at: c.varint()?,
            query: c.varint()?,
            from: c.u32()?,
        },
        7 => Event::PolicyDecision {
            at: c.varint()?,
            worker: c.u32()?,
            queued: c.u32()?,
            slack_ns: c.zigzag()?,
            action: c.action()?,
        },
        8 => Event::RegimeSwap {
            at: c.varint()?,
            from: c.string()?,
            to: c.string()?,
            detection_delay_ns: c.varint()?,
        },
        9 => Event::LazySolve {
            at: c.varint()?,
            regime: c.string()?,
        },
        10 => Event::FallbackEngaged {
            at: c.varint()?,
            worker: c.u32()?,
        },
        11 => Event::Timeout {
            at: c.varint()?,
            query: c.varint()?,
            worker: c.u32()?,
            attempt: c.u32()?,
        },
        12 => Event::Retry {
            at: c.varint()?,
            query: c.varint()?,
            attempt: c.u32()?,
            delay_ns: c.varint()?,
        },
        13 => Event::HedgeIssued {
            at: c.varint()?,
            primary: c.u32()?,
            hedge: c.u32()?,
            model: c.u32()?,
            batch: c.u32()?,
        },
        14 => Event::HedgeCancelled {
            at: c.varint()?,
            worker: c.u32()?,
            winner: c.u32()?,
        },
        15 => Event::Admission {
            at: c.varint()?,
            query: c.varint()?,
            queue: c.queue()?,
            depth: c.u32()?,
            sojourn_ns: c.varint()?,
        },
        16 => Event::ScaleUp {
            at: c.varint()?,
            worker: c.u32()?,
            live: c.u32()?,
        },
        17 => Event::ScaleDown {
            at: c.varint()?,
            worker: c.u32()?,
            live: c.u32()?,
            handoffs: c.u32()?,
        },
        18 => Event::WorkerWarm {
            at: c.varint()?,
            worker: c.u32()?,
            live: c.u32()?,
        },
        19 => Event::DrainComplete {
            at: c.varint()?,
            worker: c.u32()?,
        },
        20 => Event::BrownoutEnter {
            at: c.varint()?,
            rung: c.u32()?,
            load_qps: c.f64()?,
            capacity_qps: c.f64()?,
        },
        21 => Event::BrownoutExit {
            at: c.varint()?,
            rung: c.u32()?,
            load_qps: c.f64()?,
            capacity_qps: c.f64()?,
        },
        22 => Event::ProbeSent {
            at: c.varint()?,
            worker: c.u32()?,
        },
        23 => Event::ProbeFailed {
            at: c.varint()?,
            worker: c.u32()?,
        },
        24 => Event::Suspect {
            at: c.varint()?,
            worker: c.u32()?,
            genuine: c.bool()?,
            lag_ns: c.varint()?,
        },
        25 => Event::Reinstate {
            at: c.varint()?,
            worker: c.u32()?,
            suspected_ns: c.varint()?,
        },
        26 => Event::BreakerOpen {
            at: c.varint()?,
            worker: c.u32()?,
        },
        27 => Event::BreakerHalfOpen {
            at: c.varint()?,
            worker: c.u32()?,
        },
        28 => Event::BreakerClose {
            at: c.varint()?,
            worker: c.u32()?,
        },
        _ => return Err(()),
    };
    if c.done() {
        Ok(event)
    } else {
        Err(()) // trailing payload bytes: not a record this build wrote
    }
}

/// Appends one whole record (kind, length, payload) to `buf`.
fn encode_record(buf: &mut Vec<u8>, scratch: &mut Vec<u8>, event: &Event) {
    scratch.clear();
    encode_payload(scratch, event);
    buf.push(kind_of(event));
    put_varint(buf, scratch.len() as u64);
    buf.extend_from_slice(scratch);
}

/// Serializes the binary file header.
fn encode_header(sampling: Option<(f64, u64)>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24);
    buf.extend_from_slice(&BIN_MAGIC);
    buf.extend_from_slice(&BIN_SCHEMA_VERSION.to_le_bytes());
    match sampling {
        None => buf.push(0),
        Some((rate, seed)) => {
            buf.push(FLAG_SAMPLED);
            buf.extend_from_slice(&rate.to_bits().to_le_bytes());
            buf.extend_from_slice(&seed.to_le_bytes());
        }
    }
    buf
}

// ---------------------------------------------------------------------
// The sink
// ---------------------------------------------------------------------

/// A sink writing the compact binary record stream to any writer.
///
/// Mirrors [`crate::JsonlSink`]'s contract: deterministic bytes for a
/// seeded run, I/O errors latched and surfaced by [`BinSink::finish`]
/// rather than panicking mid-run. Every constructor writes the file
/// header first, so any stream a `BinSink` produces is auto-detectable
/// by [`is_binary_stream`].
#[derive(Debug)]
pub struct BinSink<W: Write> {
    out: W,
    records: u64,
    error: Option<io::Error>,
    failed: bool,
    /// Reused per-record encode buffer (kind + length + payload), so
    /// steady-state recording allocates nothing.
    buf: Vec<u8>,
    scratch: Vec<u8>,
}

impl BinSink<BufWriter<File>> {
    /// Opens (truncating) `path` for buffered binary output and writes
    /// the unsampled file header.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }

    /// Like [`BinSink::create`], stamping the header with the sampling
    /// rate and seed of the [`crate::SamplingSink`] wrapping this sink.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create_sampled<P: AsRef<Path>>(path: P, rate: f64, seed: u64) -> io::Result<Self> {
        Ok(Self::with_sampling(
            BufWriter::new(File::create(path)?),
            rate,
            seed,
        ))
    }
}

impl<W: Write> BinSink<W> {
    /// Wraps a writer and writes the unsampled header.
    pub fn new(out: W) -> Self {
        Self::with_header(out, None)
    }

    /// Wraps a writer and writes a header carrying sampling metadata.
    pub fn with_sampling(out: W, rate: f64, seed: u64) -> Self {
        Self::with_header(out, Some((rate, seed)))
    }

    fn with_header(out: W, sampling: Option<(f64, u64)>) -> Self {
        let mut sink = Self {
            out,
            records: 0,
            error: None,
            failed: false,
            buf: Vec::with_capacity(64),
            scratch: Vec::with_capacity(64),
        };
        let header = encode_header(sampling);
        if let Err(e) = sink.out.write_all(&header) {
            sink.error = Some(e);
            sink.failed = true;
        }
        sink
    }

    /// Records successfully written so far (the header not counted).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// True once any write or flush has failed; further records are
    /// dropped.
    pub fn write_failed(&self) -> bool {
        self.failed
    }

    /// Takes the latched I/O error, if any; the sink stays failed.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> TelemetrySink for BinSink<W> {
    fn record(&mut self, event: &Event) {
        if self.failed {
            return;
        }
        self.buf.clear();
        encode_record(&mut self.buf, &mut self.scratch, event);
        if let Err(e) = self.out.write_all(&self.buf) {
            self.error = Some(e);
            self.failed = true;
            return;
        }
        self.records += 1;
    }

    fn flush(&mut self) {
        if !self.failed {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
                self.failed = true;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a binary telemetry stream tolerantly — the binary mirror of
/// [`crate::parse_jsonl_tolerant`].
///
/// Whole known records parse into events; unknown kind tags (a stream
/// from a newer engine) are skipped whole and counted, with the first
/// few described in [`ParsedLog::unknown_samples`]; a record cut short
/// by a mid-write kill is reported as the torn tail with the byte
/// offset that heals it. Sampling metadata in the header surfaces as
/// [`ParsedLog::sample_rate`] / [`ParsedLog::sample_seed`].
///
/// # Errors
///
/// Returns a message when the stream does not start with the `RMTB`
/// magic, or a *complete* record's payload is malformed — corruption in
/// the middle of a stream is real damage, never silently skipped.
pub fn parse_bin_tolerant(bytes: &[u8]) -> Result<ParsedLog, String> {
    if !is_binary_stream(bytes) {
        return Err("not a binary telemetry stream (missing RMTB magic)".into());
    }
    let mut pos = BIN_MAGIC.len();
    let header_err = || "binary stream truncated inside its file header".to_string();
    let version_bytes: [u8; 4] = bytes
        .get(pos..pos + 4)
        .ok_or_else(header_err)?
        .try_into()
        .unwrap();
    let version = u32::from_le_bytes(version_bytes);
    pos += 4;
    let flags = *bytes.get(pos).ok_or_else(header_err)?;
    pos += 1;
    let (mut sample_rate, mut sample_seed) = (None, None);
    if flags & FLAG_SAMPLED != 0 {
        let rate_bytes: [u8; 8] = bytes
            .get(pos..pos + 8)
            .ok_or_else(header_err)?
            .try_into()
            .unwrap();
        sample_rate = Some(f64::from_bits(u64::from_le_bytes(rate_bytes)));
        pos += 8;
        let seed_bytes: [u8; 8] = bytes
            .get(pos..pos + 8)
            .ok_or_else(header_err)?
            .try_into()
            .unwrap();
        sample_seed = Some(u64::from_le_bytes(seed_bytes));
        pos += 8;
    }

    let mut events = Vec::new();
    let torn_tail = None;
    let torn_tail_offset = None;
    let mut unknown_events = 0u64;
    let mut unknown_samples: Vec<String> = Vec::new();
    while pos < bytes.len() {
        let record_start = pos;
        let torn = |events, unknown_events, unknown_samples, start: usize| {
            Ok(ParsedLog {
                events,
                torn_tail: Some(format!(
                    "{} trailing bytes of a torn binary record",
                    bytes.len() - start
                )),
                torn_tail_offset: Some(start),
                unknown_events,
                unknown_samples,
                schema_version: Some(version),
                sample_rate,
                sample_seed,
            })
        };
        let kind = bytes[pos];
        pos += 1;
        // Varint payload length; running out of bytes mid-varint is a
        // torn tail, not corruption.
        let mut len: u64 = 0;
        let mut shift = 0u32;
        let len = loop {
            let Some(&b) = bytes.get(pos) else {
                return torn(events, unknown_events, unknown_samples, record_start);
            };
            pos += 1;
            if shift >= 64 {
                return Err(format!(
                    "byte {record_start}: malformed record length (varint overflow)"
                ));
            }
            len |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break len;
            }
            shift += 7;
        };
        let Ok(len) = usize::try_from(len) else {
            return Err(format!("byte {record_start}: absurd record length {len}"));
        };
        let Some(payload) = bytes.get(pos..pos.saturating_add(len)) else {
            return torn(events, unknown_events, unknown_samples, record_start);
        };
        pos += len;
        match decode_payload(kind, payload) {
            Ok(event) => events.push(event),
            Err(()) if kind > 28 => {
                // A kind tag this build has never heard of: a stream
                // from a newer engine. Skip the whole record, count it.
                unknown_events += 1;
                if unknown_samples.len() < UNKNOWN_SAMPLE_CAP {
                    unknown_samples.push(format!("kind {kind} ({len} bytes)"));
                }
            }
            Err(()) => {
                return Err(format!(
                    "byte {record_start}: malformed payload for record kind {kind}"
                ));
            }
        }
    }
    Ok(ParsedLog {
        events,
        torn_tail,
        torn_tail_offset,
        unknown_events,
        unknown_samples,
        schema_version: Some(version),
        sample_rate,
        sample_seed,
    })
}

/// Parses a trace in either encoding: binary streams are recognized by
/// the `RMTB` magic, anything else is treated as (possibly headerless
/// v0) JSONL. Tooling that accepts "a trace file" goes through here so
/// `.bin` and `.jsonl` are interchangeable everywhere.
pub fn parse_tolerant(bytes: &[u8]) -> Result<ParsedLog, String> {
    if is_binary_stream(bytes) {
        parse_bin_tolerant(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| format!("trace is neither RMTB binary nor UTF-8 JSONL: {e}"))?;
        crate::sink::parse_jsonl_tolerant(text)
    }
}

// ---------------------------------------------------------------------
// Lossless converters
// ---------------------------------------------------------------------

/// Serializes events (plus optional sampling metadata) as a complete
/// binary stream — header and all. The exact bytes a [`BinSink`] fed
/// the same events would write.
pub fn write_bin(events: &[Event], sampling: Option<(f64, u64)>) -> Vec<u8> {
    let mut buf = encode_header(sampling);
    let mut scratch = Vec::with_capacity(64);
    for e in events {
        encode_record(&mut buf, &mut scratch, e);
    }
    buf
}

/// Serializes events (plus optional sampling metadata) as a complete
/// v1 JSONL stream — schema header and all. The exact bytes a
/// [`crate::JsonlSink`] opened with `create`/`create_sampled` and fed
/// the same events would write.
pub fn write_jsonl(events: &[Event], sampling: Option<(f64, u64)>) -> String {
    let mut out = String::new();
    out.push_str(&serde_json::to_string(&StreamHeader::telemetry()).expect("header serializes"));
    out.push('\n');
    if let Some((rate, seed)) = sampling {
        out.push_str(
            &serde_json::to_string(&StreamHeader::Sampling { rate, seed })
                .expect("header serializes"),
        );
        out.push('\n');
    }
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("events always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::parse_jsonl_tolerant;

    /// One of every variant — the same exhaustive list the event-model
    /// serde test pins, so a codec gap on any variant fails here.
    fn every_variant() -> Vec<Event> {
        vec![
            Event::Arrival {
                at: 1,
                query: 0,
                deadline: 150_000_001,
            },
            Event::Enqueue {
                at: 1,
                query: 0,
                queue: QueueId::Worker(3),
                depth: 2,
            },
            Event::Enqueue {
                at: 2,
                query: 1,
                queue: QueueId::Central,
                depth: 1,
            },
            Event::Enqueue {
                at: 3,
                query: 2,
                queue: QueueId::Limbo,
                depth: 1,
            },
            Event::Dispatch {
                at: 5,
                worker: 3,
                model: 7,
                batch: 2,
                depth: 2,
            },
            Event::Complete {
                at: 9,
                query: 0,
                worker: 3,
                model: 7,
                response_ns: 8,
                violated: false,
            },
            Event::Shed {
                at: 10,
                query: 4,
                cause: ShedCause::Hopeless,
            },
            Event::Drop { at: 11, query: 5 },
            Event::CrashRequeue {
                at: 12,
                query: 6,
                from: 1,
            },
            Event::PolicyDecision {
                at: 13,
                worker: 0,
                queued: 4,
                slack_ns: -2_000,
                action: Action::Drop { count: 1 },
            },
            Event::PolicyDecision {
                at: 13,
                worker: 1,
                queued: 4,
                slack_ns: i64::MIN,
                action: Action::Serve { model: 2, batch: 8 },
            },
            Event::PolicyDecision {
                at: 13,
                worker: 2,
                queued: 0,
                slack_ns: i64::MAX,
                action: Action::Idle,
            },
            Event::RegimeSwap {
                at: 14,
                from: "le120qps-poisson".into(),
                to: "gt120qps-bursty".into(),
                detection_delay_ns: 2_000_000_000,
            },
            Event::LazySolve {
                at: 15,
                regime: String::new(),
            },
            Event::FallbackEngaged { at: 16, worker: 2 },
            Event::Timeout {
                at: 17,
                query: 7,
                worker: 1,
                attempt: 1,
            },
            Event::Retry {
                at: 17,
                query: 7,
                attempt: 1,
                delay_ns: 5_000_000,
            },
            Event::HedgeIssued {
                at: 18,
                primary: 0,
                hedge: 2,
                model: 3,
                batch: 4,
            },
            Event::HedgeCancelled {
                at: 19,
                worker: 2,
                winner: 0,
            },
            Event::Admission {
                at: 20,
                query: 8,
                queue: QueueId::Worker(1),
                depth: 64,
                sojourn_ns: 30_000_000,
            },
            Event::ScaleUp {
                at: 22,
                worker: 4,
                live: 2,
            },
            Event::ScaleDown {
                at: 23,
                worker: 4,
                live: 1,
                handoffs: 3,
            },
            Event::WorkerWarm {
                at: 24,
                worker: 4,
                live: 3,
            },
            Event::DrainComplete { at: 25, worker: 4 },
            Event::BrownoutEnter {
                at: 26,
                rung: 1,
                load_qps: 420.25,
                capacity_qps: 300.0,
            },
            Event::BrownoutExit {
                at: 27,
                rung: 1,
                load_qps: 0.125,
                capacity_qps: f64::MAX,
            },
            Event::ProbeSent { at: 28, worker: 1 },
            Event::ProbeFailed { at: 29, worker: 1 },
            Event::Suspect {
                at: 30,
                worker: 1,
                genuine: true,
                lag_ns: 40_000_000,
            },
            Event::Reinstate {
                at: 33,
                worker: 2,
                suspected_ns: 2_000_000,
            },
            Event::BreakerOpen { at: 31, worker: 2 },
            Event::BreakerHalfOpen { at: 32, worker: 2 },
            Event::BreakerClose { at: 33, worker: 2 },
            Event::Arrival {
                at: u64::MAX,
                query: u64::MAX,
                deadline: u64::MAX,
            },
        ]
    }

    #[test]
    fn binary_round_trips_every_variant() {
        let events = every_variant();
        let bytes = write_bin(&events, None);
        assert!(is_binary_stream(&bytes));
        let parsed = parse_bin_tolerant(&bytes).unwrap();
        assert_eq!(parsed.events, events);
        assert_eq!(parsed.torn_tail, None);
        assert_eq!(parsed.unknown_events, 0);
        assert_eq!(parsed.schema_version, Some(BIN_SCHEMA_VERSION));
        assert_eq!(parsed.sample_rate, None);
        // Determinism: encoding twice gives identical bytes.
        assert_eq!(bytes, write_bin(&events, None));
    }

    #[test]
    fn bin_sink_matches_write_bin_and_counts_records() {
        let events = every_variant();
        let mut sink = BinSink::new(Vec::new());
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.records(), events.len() as u64);
        let bytes = sink.finish().unwrap();
        assert_eq!(bytes, write_bin(&events, None));
    }

    #[test]
    fn sampling_metadata_survives_the_header() {
        let events = every_variant();
        let bytes = write_bin(&events, Some((0.01, 0xFEED)));
        let parsed = parse_bin_tolerant(&bytes).unwrap();
        assert_eq!(parsed.sample_rate, Some(0.01));
        assert_eq!(parsed.sample_seed, Some(0xFEED));
        assert_eq!(parsed.events, events);
        let mut sink = BinSink::with_sampling(Vec::new(), 0.01, 0xFEED);
        for e in &events {
            sink.record(e);
        }
        assert_eq!(sink.finish().unwrap(), bytes);
    }

    #[test]
    fn torn_tail_is_healed_at_the_reported_offset() {
        let events = every_variant();
        let full = write_bin(&events, None);
        // Cut inside the last record's payload.
        for cut in [full.len() - 1, full.len() - 3] {
            let torn = &full[..cut];
            let parsed = parse_bin_tolerant(torn).unwrap();
            assert_eq!(parsed.events, events[..events.len() - 1], "cut at {cut}");
            let at = parsed.torn_tail_offset.expect("offset reported");
            assert!(parsed.torn_tail.is_some());
            // Truncating at the offset leaves exactly the whole-record
            // prefix: re-parsing it is clean.
            let healed = parse_bin_tolerant(&torn[..at]).unwrap();
            assert_eq!(healed.events, events[..events.len() - 1]);
            assert_eq!(healed.torn_tail, None);
        }
        // A stream cut inside the header is an error, not a torn tail.
        assert!(parse_bin_tolerant(&full[..6]).is_err());
        // A cut right after a whole record is clean.
        let parsed = parse_bin_tolerant(&full).unwrap();
        assert_eq!(parsed.torn_tail, None);
    }

    #[test]
    fn unknown_kinds_are_skipped_counted_and_sampled() {
        let events = vec![every_variant()[0].clone()];
        let mut bytes = write_bin(&events, None);
        // Append 7 records of a future kind (tag 77, 3-byte payload).
        for _ in 0..7 {
            bytes.push(77);
            bytes.push(3);
            bytes.extend_from_slice(&[1, 2, 3]);
        }
        let good = write_bin(&events, None);
        bytes.extend_from_slice(&good[good.len() - (good.len() - 9).min(good.len())..]);
        // Simpler: append one more known record manually.
        let mut scratch = Vec::new();
        let mut rec = Vec::new();
        encode_record(&mut rec, &mut scratch, &events[0]);
        bytes.extend_from_slice(&rec);
        let parsed = parse_bin_tolerant(&bytes).unwrap();
        assert_eq!(parsed.unknown_events, 7);
        assert_eq!(
            parsed.unknown_samples.len(),
            UNKNOWN_SAMPLE_CAP.min(7),
            "samples are capped"
        );
        assert!(parsed.unknown_samples[0].contains("kind 77"));
        assert!(parsed.events.len() >= 2, "known records still parse");
    }

    #[test]
    fn complete_but_malformed_record_is_corruption_not_tolerated() {
        let events = vec![every_variant()[0].clone()];
        let mut bytes = write_bin(&events, None);
        // A known kind (3 = Complete) with a garbage 2-byte payload,
        // followed by a valid record so it is not the tail.
        bytes.push(3);
        bytes.push(2);
        bytes.extend_from_slice(&[0xff, 0xff]);
        let mut scratch = Vec::new();
        let mut rec = Vec::new();
        encode_record(&mut rec, &mut scratch, &events[0]);
        bytes.extend_from_slice(&rec);
        let err = parse_bin_tolerant(&bytes).unwrap_err();
        assert!(err.contains("malformed payload"), "{err}");
    }

    #[test]
    fn jsonl_and_binary_converters_are_lossless() {
        let events = every_variant();
        // JSONL -> binary -> JSONL is byte-identical.
        let jsonl = write_jsonl(&events, None);
        let parsed = parse_jsonl_tolerant(&jsonl).unwrap();
        let bin = write_bin(&parsed.events, None);
        let back = parse_bin_tolerant(&bin).unwrap();
        assert_eq!(write_jsonl(&back.events, None), jsonl);
        // Binary -> JSONL -> binary is byte-identical, sampling
        // metadata included.
        let bin = write_bin(&events, Some((0.1, 7)));
        let parsed = parse_bin_tolerant(&bin).unwrap();
        let sampling = parsed.sample_rate.map(|r| (r, parsed.sample_seed.unwrap()));
        let jsonl = write_jsonl(&parsed.events, sampling);
        let reparsed = parse_jsonl_tolerant(&jsonl).unwrap();
        assert_eq!(reparsed.sample_rate, Some(0.1));
        assert_eq!(reparsed.sample_seed, Some(7));
        let sampling = reparsed
            .sample_rate
            .map(|r| (r, reparsed.sample_seed.unwrap()));
        assert_eq!(write_bin(&reparsed.events, sampling), bin);
    }

    #[test]
    fn binary_is_substantially_smaller_than_jsonl() {
        let events = every_variant();
        let jsonl = write_jsonl(&events, None);
        let bin = write_bin(&events, None);
        assert!(
            bin.len() * 3 < jsonl.len(),
            "binary {} bytes vs JSONL {} bytes",
            bin.len(),
            jsonl.len()
        );
    }

    #[test]
    fn zigzag_and_varint_edge_values_round_trip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            let mut buf = Vec::new();
            put_zigzag(&mut buf, v);
            assert_eq!(Cursor::new(&buf).zigzag().unwrap(), v);
        }
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(Cursor::new(&buf).varint().unwrap(), v);
        }
    }
}
