//! Trace analysis: conservation accounting, event-derived aggregates,
//! and per-window breakdowns.
//!
//! These run over a recorded [`Event`] stream (from a [`crate::VecSink`],
//! a parsed JSONL log, or a ring tail) and reconstruct what the engine's
//! own counters report — the integration tests pin that the two agree
//! exactly, which is what makes the trace trustworthy for
//! miss-attribution.

use std::collections::BTreeMap;

use ramsis_stats::LogHistogram;
use serde::{Deserialize, Serialize};

use crate::event::{Action, Event, Nanos};
use crate::sample::query_weights;

/// Per-query conservation accounting over a trace: every arrival must
/// end in exactly one terminal state (complete, shed, dropped) or still
/// be in flight at the horizon.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Conservation {
    /// Distinct queries that arrived.
    pub arrivals: u64,
    /// Queries that completed service.
    pub completions: u64,
    /// Queries shed by the serving policy.
    pub sheds: u64,
    /// Queries lost to crashes.
    pub drops: u64,
    /// Queries refused at enqueue by admission control.
    pub admissions: u64,
    /// Arrivals with no terminal event (still queued or in service at
    /// the end of the trace).
    pub in_flight: u64,
    /// Accounting anomalies: duplicate arrivals, more than one terminal
    /// event for a query, or a terminal event with no arrival. A sound
    /// trace has zero.
    pub anomalies: u64,
}

impl Conservation {
    /// True when the invariant
    /// `arrivals == completions + sheds + drops + admissions + in_flight`
    /// holds with no per-query anomalies.
    pub fn holds(&self) -> bool {
        self.anomalies == 0
            && self.arrivals
                == self.completions + self.sheds + self.drops + self.admissions + self.in_flight
    }
}

/// Checks conservation over a trace (audit events are ignored).
pub fn conservation(events: &[Event]) -> Conservation {
    // Per query: (arrived count, terminal count).
    let mut queries: BTreeMap<u64, (u32, u32)> = BTreeMap::new();
    let mut c = Conservation::default();
    for e in events {
        match *e {
            Event::Arrival { query, .. } => queries.entry(query).or_insert((0, 0)).0 += 1,
            Event::Complete { query, .. } => {
                c.completions += 1;
                queries.entry(query).or_insert((0, 0)).1 += 1;
            }
            Event::Shed { query, .. } => {
                c.sheds += 1;
                queries.entry(query).or_insert((0, 0)).1 += 1;
            }
            Event::Drop { query, .. } => {
                c.drops += 1;
                queries.entry(query).or_insert((0, 0)).1 += 1;
            }
            Event::Admission { query, .. } => {
                c.admissions += 1;
                queries.entry(query).or_insert((0, 0)).1 += 1;
            }
            // Timeout and Retry are non-terminal lifecycle steps: the
            // query stays accounted for by its eventual Complete, Shed,
            // or in-flight status.
            _ => {}
        }
    }
    for &(arrived, terminal) in queries.values() {
        if arrived > 0 {
            c.arrivals += 1;
        }
        if arrived > 1 || terminal > 1 || (terminal > 0 && arrived == 0) {
            c.anomalies += 1;
        } else if arrived == 1 && terminal == 0 {
            c.in_flight += 1;
        }
    }
    c
}

/// Aggregates reconstructed purely from a trace's lifecycle events —
/// comparable field-for-field with the engine's `SimulationReport`
/// counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EventAggregates {
    /// Queries that arrived.
    pub arrivals: u64,
    /// Queries completed.
    pub served: u64,
    /// Of those, deadline misses.
    pub violations: u64,
    /// Queries shed by policy, lost to crashes, or refused by admission
    /// control (the engine's `dropped` counter folds all three).
    pub dropped: u64,
    /// Queries displaced by crashes and requeued.
    pub crash_requeued: u64,
    /// Dispatch timeouts (one per query per timed-out attempt).
    pub timeouts: u64,
    /// Retries scheduled after a timeout.
    pub retries: u64,
    /// Hedge duplicates issued.
    pub hedges_issued: u64,
    /// Hedged dispatches cancelled (loser of the pair).
    pub hedges_cancelled: u64,
    /// Queries refused at enqueue by admission control (also counted in
    /// [`Self::dropped`]).
    pub admissions: u64,
    /// Exact sum of response times, nanoseconds.
    pub response_sum_ns: u128,
    /// Response-time distribution (log-bucketed, nanoseconds).
    pub response: LogHistogram,
}

impl EventAggregates {
    /// Mean response time in seconds (0 when nothing completed).
    pub fn mean_response_s(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.response_sum_ns as f64 / self.served as f64 / 1e9
        }
    }

    /// Violation rate over completions (0 when nothing completed).
    pub fn violation_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.violations as f64 / self.served as f64
        }
    }
}

/// Reconstructs run aggregates from a trace.
pub fn aggregates(events: &[Event]) -> EventAggregates {
    let mut a = EventAggregates {
        arrivals: 0,
        served: 0,
        violations: 0,
        dropped: 0,
        crash_requeued: 0,
        timeouts: 0,
        retries: 0,
        hedges_issued: 0,
        hedges_cancelled: 0,
        admissions: 0,
        response_sum_ns: 0,
        response: LogHistogram::new(),
    };
    for e in events {
        match *e {
            Event::Arrival { .. } => a.arrivals += 1,
            Event::Complete {
                response_ns,
                violated,
                ..
            } => {
                a.served += 1;
                a.violations += u64::from(violated);
                a.response_sum_ns += response_ns as u128;
                a.response.record(response_ns);
            }
            Event::Shed { .. } | Event::Drop { .. } => a.dropped += 1,
            Event::Admission { .. } => {
                a.admissions += 1;
                a.dropped += 1;
            }
            Event::CrashRequeue { .. } => a.crash_requeued += 1,
            Event::Timeout { .. } => a.timeouts += 1,
            Event::Retry { .. } => a.retries += 1,
            Event::HedgeIssued { .. } => a.hedges_issued += 1,
            Event::HedgeCancelled { .. } => a.hedges_cancelled += 1,
            _ => {}
        }
    }
    a
}

/// Aggregates over a query-coherently sampled stream, split into what
/// is exact and what is a Horvitz-Thompson estimate (DESIGN.md §15).
///
/// Query-coherent sampling only ever removes boring on-time
/// completions, so everything rare — violations, sheds, drops,
/// admission rejections, crash requeues, timeouts, retries, hedges —
/// is present in full and reported *exactly*. The removed population
/// is reconstructed by weighting each hash-kept boring query by
/// `1/rate`; those estimates carry an explicit standard error so
/// tooling can print `≈ N ± σ` instead of passing an estimate off as a
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledAggregates {
    /// Exact aggregates of the kept substream (what [`aggregates`]
    /// returns on the sampled log). All its rare-event counters —
    /// violations, dropped, timeouts, retries, hedges — equal the full
    /// stream's, by the tail-keep rules.
    pub kept: EventAggregates,
    /// The stream's sampling rate (1.0 for an unsampled stream).
    pub sample_rate: f64,
    /// Kept queries present with probability 1: promoted by a
    /// tail-keep rule, or still in flight at the end of the trace.
    pub interesting_queries: u64,
    /// Kept queries present with probability `sample_rate` (hash-kept,
    /// boring on-time completions) — the weighted population.
    pub boring_queries: u64,
    /// Estimated full-stream arrivals:
    /// `interesting + boring / sample_rate`.
    pub est_arrivals: f64,
    /// Estimated full-stream completions.
    pub est_served: f64,
    /// Estimated full-stream response-time sum, nanoseconds.
    pub est_response_sum_ns: f64,
    /// Standard error of the estimated counts:
    /// `sqrt(boring · (1 − rate)) / rate`. Zero when the stream is
    /// complete.
    pub est_std_error: f64,
}

impl SampledAggregates {
    /// True when the estimates are exact (rate 1.0: nothing removed).
    pub fn is_exact(&self) -> bool {
        self.sample_rate >= 1.0
    }

    /// Estimated mean response time in seconds (0 when nothing
    /// completed).
    pub fn est_mean_response_s(&self) -> f64 {
        if self.est_served == 0.0 {
            0.0
        } else {
            self.est_response_sum_ns / self.est_served / 1e9
        }
    }
}

/// Computes sampled-vs-exact aggregates for a stream recorded at
/// `sample_rate` (pass 1.0 for a complete stream; every weight is then
/// 1 and the estimates coincide with the exact counts).
pub fn sampled_aggregates(events: &[Event], sample_rate: f64) -> SampledAggregates {
    let weights = query_weights(events, sample_rate);
    let mut s = SampledAggregates {
        kept: aggregates(events),
        sample_rate,
        interesting_queries: 0,
        boring_queries: 0,
        est_arrivals: 0.0,
        est_served: 0.0,
        est_response_sum_ns: 0.0,
        est_std_error: 0.0,
    };
    for &w in weights.values() {
        if w == 1.0 {
            s.interesting_queries += 1;
        } else {
            s.boring_queries += 1;
        }
    }
    for e in events {
        match *e {
            Event::Arrival { query, .. } => {
                s.est_arrivals += weights.get(&query).copied().unwrap_or(1.0);
            }
            Event::Complete {
                query, response_ns, ..
            } => {
                let w = weights.get(&query).copied().unwrap_or(1.0);
                s.est_served += w;
                s.est_response_sum_ns += w * response_ns as f64;
            }
            _ => {}
        }
    }
    if sample_rate < 1.0 {
        s.est_std_error = (s.boring_queries as f64 * (1.0 - sample_rate)).sqrt() / sample_rate;
    }
    s
}

/// One fixed-length window of a trace's per-window breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window start, nanoseconds from simulation start.
    pub start_ns: Nanos,
    /// Arrivals in the window.
    pub arrivals: u64,
    /// Batches dispatched.
    pub dispatches: u64,
    /// Queries completed.
    pub completions: u64,
    /// Of those, deadline misses.
    pub violations: u64,
    /// Queries shed by policy.
    pub sheds: u64,
    /// Queries lost to crashes.
    pub drops: u64,
    /// `Serve` decisions audited.
    pub decisions_serve: u64,
    /// `Drop` decisions audited.
    pub decisions_drop: u64,
    /// `Idle` decisions audited.
    pub decisions_idle: u64,
    /// Deepest visible queue at any dispatch decision in the window.
    pub max_queue_depth: u32,
    /// Sum of dispatched batch sizes (for mean-batch computation).
    pub batch_sum: u64,
    /// Worker-busy time overlapping the window, nanoseconds (summed
    /// over workers; divide by `workers × window` for utilization).
    pub busy_ns: u64,
    /// Regime hot-swaps committed.
    pub swaps: u64,
    /// Online policy solves.
    pub lazy_solves: u64,
    /// Decisions answered by the fallback policy.
    pub fallbacks: u64,
    /// Dispatch timeouts fired.
    pub timeouts: u64,
    /// Retries scheduled.
    pub retries: u64,
    /// Hedge duplicates issued.
    pub hedges: u64,
    /// Queries refused at enqueue by admission control.
    pub admission_sheds: u64,
    /// Autoscale membership events (scale-ups + scale-downs committed).
    pub scale_actions: u64,
    /// Brownout ladder transitions (enters + exits).
    pub brownout_moves: u64,
    /// Perceived-membership moves (suspicions + reinstatements).
    pub health_moves: u64,
    /// Health probes that went unanswered.
    pub probe_failures: u64,
}

impl WindowStats {
    /// Mean dispatched batch size (0 when nothing dispatched).
    pub fn mean_batch(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.batch_sum as f64 / self.dispatches as f64
        }
    }

    /// Mean worker utilization over the window.
    pub fn utilization(&self, workers: u32, window_ns: Nanos) -> f64 {
        if workers == 0 || window_ns == 0 {
            0.0
        } else {
            self.busy_ns as f64 / (workers as f64 * window_ns as f64)
        }
    }
}

/// Buckets a trace into fixed windows of `window_ns`.
///
/// Busy time is reconstructed from dispatch→completion spans per
/// worker and apportioned to every window each span overlaps; a span
/// cut short by a crash (its batch never completes) is discarded when
/// the worker's next dispatch appears.
///
/// # Panics
///
/// Panics if `window_ns` is zero.
pub fn window_breakdown(events: &[Event], window_ns: Nanos) -> Vec<WindowStats> {
    assert!(window_ns > 0, "window must be positive");
    fn bucket(windows: &mut Vec<WindowStats>, at: Nanos, window_ns: Nanos) -> &mut WindowStats {
        let i = (at / window_ns) as usize;
        if windows.len() <= i {
            for k in windows.len()..=i {
                windows.push(WindowStats {
                    start_ns: k as Nanos * window_ns,
                    ..WindowStats::default()
                });
            }
        }
        &mut windows[i]
    }
    let mut windows: Vec<WindowStats> = Vec::new();
    let mut horizon: Nanos = 0;
    // Per-worker open service span: worker -> start of in-flight batch.
    let mut open: BTreeMap<u32, Nanos> = BTreeMap::new();
    let mut spans: Vec<(Nanos, Nanos)> = Vec::new();
    for e in events {
        horizon = horizon.max(e.at());
        match *e {
            Event::Arrival { at, .. } => bucket(&mut windows, at, window_ns).arrivals += 1,
            Event::Dispatch {
                at,
                worker,
                batch,
                depth,
                ..
            } => {
                let w = bucket(&mut windows, at, window_ns);
                w.dispatches += 1;
                w.batch_sum += u64::from(batch);
                w.max_queue_depth = w.max_queue_depth.max(depth);
                // A still-open span means the previous batch was
                // displaced by a crash; it never completed.
                open.insert(worker, at);
            }
            Event::Complete {
                at,
                worker,
                violated,
                ..
            } => {
                let w = bucket(&mut windows, at, window_ns);
                w.completions += 1;
                w.violations += u64::from(violated);
                if let Some(start) = open.remove(&worker) {
                    spans.push((start, at));
                }
            }
            Event::Shed { at, .. } => bucket(&mut windows, at, window_ns).sheds += 1,
            Event::Drop { at, .. } => bucket(&mut windows, at, window_ns).drops += 1,
            Event::PolicyDecision { at, action, .. } => {
                let w = bucket(&mut windows, at, window_ns);
                match action {
                    Action::Serve { .. } => w.decisions_serve += 1,
                    Action::Drop { .. } => w.decisions_drop += 1,
                    Action::Idle => w.decisions_idle += 1,
                }
            }
            Event::RegimeSwap { at, .. } => bucket(&mut windows, at, window_ns).swaps += 1,
            Event::LazySolve { at, .. } => bucket(&mut windows, at, window_ns).lazy_solves += 1,
            Event::FallbackEngaged { at, .. } => bucket(&mut windows, at, window_ns).fallbacks += 1,
            Event::Timeout { at, worker, .. } => {
                bucket(&mut windows, at, window_ns).timeouts += 1;
                // The worker was busy until the timeout abandoned the
                // dispatch; close the span here so the wasted work
                // still shows up as utilization. A batch emits one
                // Timeout per query — only the first closes the span.
                if let Some(start) = open.remove(&worker) {
                    spans.push((start, at));
                }
            }
            Event::Retry { at, .. } => bucket(&mut windows, at, window_ns).retries += 1,
            Event::HedgeIssued { at, .. } => bucket(&mut windows, at, window_ns).hedges += 1,
            Event::HedgeCancelled { at, worker, .. } => {
                let _ = bucket(&mut windows, at, window_ns);
                if let Some(start) = open.remove(&worker) {
                    spans.push((start, at));
                }
            }
            Event::Admission { at, .. } => bucket(&mut windows, at, window_ns).admission_sheds += 1,
            Event::ScaleUp { at, .. } | Event::ScaleDown { at, .. } => {
                bucket(&mut windows, at, window_ns).scale_actions += 1;
            }
            Event::BrownoutEnter { at, .. } | Event::BrownoutExit { at, .. } => {
                bucket(&mut windows, at, window_ns).brownout_moves += 1;
            }
            Event::Suspect { at, .. } | Event::Reinstate { at, .. } => {
                bucket(&mut windows, at, window_ns).health_moves += 1;
            }
            Event::ProbeFailed { at, .. } => {
                bucket(&mut windows, at, window_ns).probe_failures += 1;
            }
            Event::Enqueue { .. }
            | Event::CrashRequeue { .. }
            | Event::WorkerWarm { .. }
            | Event::DrainComplete { .. }
            | Event::ProbeSent { .. }
            | Event::BreakerOpen { .. }
            | Event::BreakerHalfOpen { .. }
            | Event::BreakerClose { .. } => {}
        }
    }
    // Apportion each completed service span across the windows it
    // overlaps. Ensure the window list covers the horizon first.
    if horizon > 0 {
        let _ = bucket(&mut windows, horizon.saturating_sub(1), window_ns);
    }
    for (start, end) in spans {
        let mut t = start;
        while t < end {
            let i = (t / window_ns) as usize;
            let window_end = (i as Nanos + 1) * window_ns;
            let upto = end.min(window_end);
            if i < windows.len() {
                windows[i].busy_ns += upto - t;
            }
            t = upto;
        }
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{QueueId, ShedCause};

    fn lifecycle(query: u64, at: Nanos, terminal: Option<Event>) -> Vec<Event> {
        let mut v = vec![Event::Arrival {
            at,
            query,
            deadline: at + 100,
        }];
        v.extend(terminal);
        v
    }

    #[test]
    fn conservation_accounts_every_query() {
        let mut events = Vec::new();
        events.extend(lifecycle(
            0,
            0,
            Some(Event::Complete {
                at: 50,
                query: 0,
                worker: 0,
                model: 0,
                response_ns: 50,
                violated: false,
            }),
        ));
        events.extend(lifecycle(
            1,
            10,
            Some(Event::Shed {
                at: 20,
                query: 1,
                cause: ShedCause::QueueDepth,
            }),
        ));
        events.extend(lifecycle(2, 20, Some(Event::Drop { at: 30, query: 2 })));
        events.extend(lifecycle(3, 30, None)); // in flight
        events.extend(lifecycle(
            4,
            40,
            Some(Event::Admission {
                at: 40,
                query: 4,
                queue: QueueId::Worker(0),
                depth: 64,
                sojourn_ns: 25_000_000,
            }),
        ));
        let c = conservation(&events);
        assert_eq!(
            c,
            Conservation {
                arrivals: 5,
                completions: 1,
                sheds: 1,
                drops: 1,
                admissions: 1,
                in_flight: 1,
                anomalies: 0,
            }
        );
        assert!(c.holds());
    }

    #[test]
    fn timeout_and_retry_are_non_terminal() {
        // A query that times out, retries, and completes is conserved as
        // one arrival + one completion — the intermediate resilience
        // events neither terminate it nor count as anomalies.
        let events = [
            Event::Arrival {
                at: 0,
                query: 0,
                deadline: 100,
            },
            Event::Timeout {
                at: 40,
                query: 0,
                worker: 0,
                attempt: 1,
            },
            Event::Retry {
                at: 40,
                query: 0,
                attempt: 1,
                delay_ns: 10,
            },
            Event::Complete {
                at: 90,
                query: 0,
                worker: 1,
                model: 0,
                response_ns: 90,
                violated: false,
            },
        ];
        let c = conservation(&events);
        assert!(c.holds(), "{c:?}");
        assert_eq!(c.arrivals, 1);
        assert_eq!(c.completions, 1);
        assert_eq!(c.in_flight, 0);
        let a = aggregates(&events);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.retries, 1);
        assert_eq!(a.dropped, 0);
    }

    #[test]
    fn admission_refusal_twice_for_same_query_is_anomalous() {
        let events = [
            Event::Arrival {
                at: 0,
                query: 0,
                deadline: 100,
            },
            Event::Admission {
                at: 0,
                query: 0,
                queue: QueueId::Central,
                depth: 9,
                sojourn_ns: 0,
            },
            Event::Admission {
                at: 1,
                query: 0,
                queue: QueueId::Central,
                depth: 9,
                sojourn_ns: 0,
            },
        ];
        assert!(!conservation(&events).holds());
    }

    #[test]
    fn conservation_flags_double_service_and_orphans() {
        let twice = [
            Event::Arrival {
                at: 0,
                query: 0,
                deadline: 100,
            },
            Event::Complete {
                at: 10,
                query: 0,
                worker: 0,
                model: 0,
                response_ns: 10,
                violated: false,
            },
            Event::Complete {
                at: 20,
                query: 0,
                worker: 1,
                model: 0,
                response_ns: 20,
                violated: false,
            },
        ];
        assert!(!conservation(&twice).holds());
        let orphan = [Event::Drop { at: 5, query: 9 }];
        assert!(!conservation(&orphan).holds());
    }

    #[test]
    fn aggregates_match_hand_count() {
        let events = [
            Event::Arrival {
                at: 0,
                query: 0,
                deadline: 100,
            },
            Event::Arrival {
                at: 5,
                query: 1,
                deadline: 105,
            },
            Event::Complete {
                at: 90,
                query: 0,
                worker: 0,
                model: 2,
                response_ns: 90,
                violated: false,
            },
            Event::Complete {
                at: 200,
                query: 1,
                worker: 0,
                model: 2,
                response_ns: 195,
                violated: true,
            },
        ];
        let a = aggregates(&events);
        assert_eq!(a.arrivals, 2);
        assert_eq!(a.served, 2);
        assert_eq!(a.violations, 1);
        assert_eq!(a.response_sum_ns, 285);
        assert_eq!(a.response.count(), 2);
        assert!((a.violation_rate() - 0.5).abs() < 1e-12);
        assert!((a.mean_response_s() - 142.5e-9).abs() < 1e-18);
    }

    #[test]
    fn windows_bucket_and_apportion_busy_time() {
        let events = [
            Event::Arrival {
                at: 100,
                query: 0,
                deadline: 1_100,
            },
            Event::Dispatch {
                at: 500,
                worker: 0,
                model: 1,
                batch: 2,
                depth: 3,
            },
            // Span 500..2_500 crosses two window edges (window = 1_000).
            Event::Complete {
                at: 2_500,
                query: 0,
                worker: 0,
                model: 1,
                response_ns: 2_400,
                violated: true,
            },
        ];
        let w = window_breakdown(&events, 1_000);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].arrivals, 1);
        assert_eq!(w[0].dispatches, 1);
        assert_eq!(w[0].max_queue_depth, 3);
        assert_eq!(w[0].busy_ns, 500);
        assert_eq!(w[1].busy_ns, 1_000);
        assert_eq!(w[2].busy_ns, 500);
        assert_eq!(w[2].completions, 1);
        assert_eq!(w[2].violations, 1);
        assert!((w[0].mean_batch() - 2.0).abs() < 1e-12);
        assert!((w[1].utilization(1, 1_000) - 1.0).abs() < 1e-12);
        // Total busy equals the span length.
        let busy: u64 = w.iter().map(|x| x.busy_ns).sum();
        assert_eq!(busy, 2_000);
    }

    #[test]
    fn crash_displaced_span_is_discarded() {
        let events = [
            Event::Dispatch {
                at: 0,
                worker: 0,
                model: 0,
                batch: 1,
                depth: 1,
            },
            // No completion (crash) — next dispatch replaces the span.
            Event::Dispatch {
                at: 5_000,
                worker: 0,
                model: 0,
                batch: 1,
                depth: 1,
            },
            Event::Complete {
                at: 6_000,
                query: 0,
                worker: 0,
                model: 0,
                response_ns: 6_000,
                violated: true,
            },
        ];
        let w = window_breakdown(&events, 1_000);
        let busy: u64 = w.iter().map(|x| x.busy_ns).sum();
        assert_eq!(busy, 1_000, "only the completed span counts");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = window_breakdown(&[], 0);
    }

    #[test]
    fn sampled_aggregates_split_exact_from_estimated() {
        // A sampled view: 2 violating queries (kept with probability
        // 1) and 3 boring hash-kept ones at rate 0.25 (each standing
        // for 4).
        let mut events = Vec::new();
        for q in 0..5u64 {
            events.extend(lifecycle(q, q * 10, None));
            events.push(Event::Complete {
                at: q * 10 + 5,
                query: q,
                worker: 0,
                model: 0,
                response_ns: 5,
                violated: q < 2,
            });
        }
        let s = sampled_aggregates(&events, 0.25);
        assert_eq!(s.kept.violations, 2, "violations are exact");
        assert_eq!(s.interesting_queries, 2);
        assert_eq!(s.boring_queries, 3);
        assert!(!s.is_exact());
        assert!((s.est_arrivals - (2.0 + 3.0 * 4.0)).abs() < 1e-9);
        assert!((s.est_served - 14.0).abs() < 1e-9);
        assert!((s.est_response_sum_ns - 14.0 * 5.0).abs() < 1e-9);
        let expect_sigma = (3.0f64 * 0.75).sqrt() / 0.25;
        assert!((s.est_std_error - expect_sigma).abs() < 1e-9);
        assert!((s.est_mean_response_s() - 5e-9).abs() < 1e-18);
        // Rate 1.0: everything exact, estimates coincide with counts.
        let exact = sampled_aggregates(&events, 1.0);
        assert!(exact.is_exact());
        assert_eq!(exact.est_arrivals, exact.kept.arrivals as f64);
        assert_eq!(exact.est_served, exact.kept.served as f64);
        assert_eq!(exact.est_std_error, 0.0);
        assert_eq!(exact.boring_queries, 0, "every weight is 1 at rate 1.0");
    }
}
