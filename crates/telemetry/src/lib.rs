//! Telemetry substrate for the RAMSIS workspace (DESIGN.md §8).
//!
//! The simulator's end-of-run [`SimulationReport`] says *what* happened
//! — violation rate, accuracy, percentiles — but not *why*: which
//! arrival burst built the queue, which policy decision shed, which
//! regime swap came late. This crate provides the missing substrate:
//!
//! - an [`Event`] model covering the full query lifecycle (arrival →
//!   enqueue → dispatch → complete, plus shed / drop / crash-requeue)
//!   and a decision audit log (policy decisions, regime swaps, lazy
//!   solves, fallback engagements), all stamped with deterministic
//!   simulation time — a seeded run replays to a byte-identical stream;
//! - the [`TelemetrySink`] trait with a zero-cost [`NullSink`] default,
//!   an unbounded [`VecSink`], a bounded [`RingSink`], and a
//!   deterministic [`JsonlSink`] event log;
//! - trace analysis: [`conservation`] accounting (every arrival ends in
//!   exactly one terminal state), event-derived [`aggregates`] that
//!   must match the engine's own counters, and a per-window
//!   [`window_breakdown`] for miss attribution;
//! - performance observability (DESIGN.md §10): a self-[`profile`]
//!   layer — phase timers, hot-path counters, flame-table reports —
//!   threaded through the engine's hot loop, and [`spans`]
//!   reconstruction folding an event stream into per-query critical
//!   paths whose segments sum *exactly* to each measured response
//!   time;
//! - decision provenance (DESIGN.md §13): the [`decisions`] module
//!   records every routing/model-selection decision — candidate set,
//!   chosen action, reason code — on its own JSONL stream, and the
//!   [`burn`] module raises hysteretic multi-window SLO burn-rate
//!   alerts over the completion stream.
//!
//! The crate sits below the simulator in the dependency graph; the
//! engine emits into `&mut dyn TelemetrySink` and checks
//! [`TelemetrySink::enabled`] once per run so the untraced path costs
//! one predictable branch per emission site.
//!
//! [`SimulationReport`]: https://docs.rs/ramsis-sim

pub mod analyze;
pub mod burn;
pub mod codec;
pub mod decisions;
pub mod event;
pub mod profile;
pub mod sample;
pub mod sink;
pub mod spans;

pub use analyze::{aggregates, conservation, sampled_aggregates, window_breakdown};
pub use analyze::{Conservation, EventAggregates, SampledAggregates, WindowStats};
pub use burn::{
    burn_analysis, sampled_burn_analysis, BurnAlert, BurnAlertKind, BurnConfig, BurnMonitor,
    BurnSummary, SampledBurnSummary,
};
pub use codec::{
    is_binary_stream, parse_bin_tolerant, parse_tolerant, write_bin, write_jsonl, BinSink,
    BIN_MAGIC, BIN_SCHEMA_VERSION,
};
pub use decisions::{
    parse_decisions_tolerant, CandidateAction, ChosenAction, DecisionRecord, DecisionSink,
    DecisionState, JsonlDecisionSink, NullDecisionSink, ParsedDecisions, ReasonCode,
    VecDecisionSink, DECISION_STREAM,
};
pub use event::{Action, Event, Nanos, QueueId, ShedCause};
pub use profile::{
    CounterStat, GaugeId, GaugeStat, HotCounter, Phase, PhaseStat, ProfileReport, Profiler,
    SolverProfile,
};
pub use sample::{query_weights, SamplePolicy, SamplingSink};
pub use sink::{
    parse_jsonl, parse_jsonl_tolerant, JsonlSink, NullSink, ParsedLog, RingSink, StreamHeader,
    TelemetrySink, VecSink, JSONL_SCHEMA_VERSION, TELEMETRY_STREAM, UNKNOWN_SAMPLE_CAP,
};
pub use spans::{
    critical_path, reconstruct_spans, reconstruct_spans_sampled, CriticalPathReport, QuerySpan,
    SegmentStats, SpanLog, SpanOutcome,
};
