//! Self-profiling: where the *engine's own* wall-clock time goes.
//!
//! The event log ([`crate::event`]) records what the system decided;
//! this module records what those decisions *cost*. A [`Profiler`] is
//! threaded through the simulator's hot loop and accumulates three
//! kinds of evidence:
//!
//! - **scoped phase timers** ([`Phase`]): monotonic wall-clock spans
//!   per engine phase (arrival handling, dispatch, policy selection,
//!   …). Wall time lives strictly *outside* the deterministic
//!   simulation clock — a profiled run's simulated behavior is
//!   bit-identical to an unprofiled one (asserted in the integration
//!   suite);
//! - **hot-path counters** ([`HotCounter`]): heap pushes/pops, stale
//!   epoch discards, dispatches, policy lookups, retry/hedge
//!   bookkeeping — fixed-size array increments, no allocation;
//! - **gauges** ([`GaugeId`]): peak/mean event-heap depth and visible
//!   queue depth at dispatch.
//!
//! The disabled profiler ([`Profiler::off`]) reduces every call site to
//! one predictable branch, mirroring the [`crate::sink::NullSink`]
//! contract for event tracing. [`Profiler::report`] snapshots
//! everything into a serializable [`ProfileReport`] that also renders
//! as a text flame-table ([`ProfileReport::flame_table`]).
//!
//! Offline solver cost is folded in through [`SolverProfile`] — a
//! summary of a per-sweep convergence trace recorded by the MDP
//! crate's traced solvers.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// An engine phase whose wall-clock time is attributed separately.
///
/// Phases nest (an arrival *contains* routing, which *contains*
/// dispatch, which *contains* policy selection); the flame-table's
/// `self` column subtracts child time from each phase's total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Run preparation: arrival sampling, queue/cluster construction.
    Setup,
    /// An `Arrival` heap event (estimator + scheme notification,
    /// routing, first dispatch).
    Arrival,
    /// A `WorkerDone` heap event (hedge settlement, metrics, refill
    /// dispatch).
    Completion,
    /// A dispatch-timeout heap event (retry/shed bookkeeping).
    Timeout,
    /// A hedge-due heap event (duplicate dispatch issue).
    Hedge,
    /// A backed-off query re-entering routing.
    Retry,
    /// An injected fault action (crash, recovery, slowdown edge).
    Fault,
    /// Routing one query to a queue (admission check included).
    Route,
    /// The dispatch loop: decision requests until a worker serves,
    /// idles, or drains its queue.
    Dispatch,
    /// The scheme's `select` call alone.
    PolicySelect,
    /// End-of-run metrics assembly.
    Report,
    /// An offline MDP solve (policy generation / lazy solve).
    Solve,
    /// A mid-run checkpoint: state capture plus the recorder's write.
    Checkpoint,
    /// Decision-provenance recording: building a `DecisionRecord`
    /// (candidate enumeration included) and handing it to the sink.
    Decision,
}

impl Phase {
    /// Number of phases (array sizing).
    pub const COUNT: usize = 14;

    /// All phases, in declaration order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Setup,
        Phase::Arrival,
        Phase::Completion,
        Phase::Timeout,
        Phase::Hedge,
        Phase::Retry,
        Phase::Fault,
        Phase::Route,
        Phase::Dispatch,
        Phase::PolicySelect,
        Phase::Report,
        Phase::Solve,
        Phase::Checkpoint,
        Phase::Decision,
    ];

    /// Stable snake-case name (JSON key and flame-table label).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Arrival => "arrival",
            Phase::Completion => "completion",
            Phase::Timeout => "timeout",
            Phase::Hedge => "hedge",
            Phase::Retry => "retry",
            Phase::Fault => "fault",
            Phase::Route => "route",
            Phase::Dispatch => "dispatch",
            Phase::PolicySelect => "policy_select",
            Phase::Report => "report",
            Phase::Solve => "solve",
            Phase::Checkpoint => "checkpoint",
            Phase::Decision => "decision",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// A hot-path counter: one array slot, incremented inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotCounter {
    /// Events pushed onto the simulation heap.
    HeapPushes,
    /// Events popped off the simulation heap (events processed).
    HeapPops,
    /// Popped events discarded by the epoch staleness check.
    StaleEvents,
    /// Batches started (one per `Serve` selection acted on).
    Dispatches,
    /// Scheme decision requests (`select` calls).
    PolicyLookups,
    /// Timeouts that fired against a live (non-hedged) dispatch.
    TimeoutsFired,
    /// Retries scheduled after a timeout (budget granted).
    RetriesScheduled,
    /// Timed-out queries abandoned (attempt cap or budget refusal).
    RetriesAbandoned,
    /// Hedge duplicates issued.
    HedgesIssued,
    /// Hedged dispatches cancelled (losing side, timeout, or crash).
    HedgesCancelled,
}

impl HotCounter {
    /// Number of counters (array sizing).
    pub const COUNT: usize = 10;

    /// All counters, in declaration order.
    pub const ALL: [HotCounter; HotCounter::COUNT] = [
        HotCounter::HeapPushes,
        HotCounter::HeapPops,
        HotCounter::StaleEvents,
        HotCounter::Dispatches,
        HotCounter::PolicyLookups,
        HotCounter::TimeoutsFired,
        HotCounter::RetriesScheduled,
        HotCounter::RetriesAbandoned,
        HotCounter::HedgesIssued,
        HotCounter::HedgesCancelled,
    ];

    /// Stable snake-case name (JSON key).
    pub fn name(self) -> &'static str {
        match self {
            HotCounter::HeapPushes => "heap_pushes",
            HotCounter::HeapPops => "heap_pops",
            HotCounter::StaleEvents => "stale_events",
            HotCounter::Dispatches => "dispatches",
            HotCounter::PolicyLookups => "policy_lookups",
            HotCounter::TimeoutsFired => "timeouts_fired",
            HotCounter::RetriesScheduled => "retries_scheduled",
            HotCounter::RetriesAbandoned => "retries_abandoned",
            HotCounter::HedgesIssued => "hedges_issued",
            HotCounter::HedgesCancelled => "hedges_cancelled",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// A sampled depth gauge (peak and mean are reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GaugeId {
    /// Simulation event-heap depth, sampled at each pop.
    HeapDepth,
    /// Visible queue depth at each dispatch decision.
    QueueDepth,
}

impl GaugeId {
    /// Number of gauges (array sizing).
    pub const COUNT: usize = 2;

    /// All gauges, in declaration order.
    pub const ALL: [GaugeId; GaugeId::COUNT] = [GaugeId::HeapDepth, GaugeId::QueueDepth];

    /// Stable snake-case name (JSON key).
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::HeapDepth => "heap_depth",
            GaugeId::QueueDepth => "queue_depth",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhaseFrame {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct GaugeFrame {
    peak: u64,
    sum: u64,
    samples: u64,
}

/// The engine's self-profiler.
///
/// All methods early-return when the profiler is off, so threading one
/// through the hot loop costs a single predictable branch per site —
/// the same contract as telemetry's `NullSink`. When on, phase
/// enter/exit reads a monotonic [`Instant`]; counters and gauges are
/// fixed-array updates. Nothing allocates on the hot path (the phase
/// stack is pre-reserved).
#[derive(Debug)]
pub struct Profiler {
    on: bool,
    run_started: Option<Instant>,
    wall_ns: u64,
    stack: Vec<(Phase, Instant)>,
    frames: [PhaseFrame; Phase::COUNT],
    counters: [u64; HotCounter::COUNT],
    gauges: [GaugeFrame; GaugeId::COUNT],
    solvers: Vec<SolverProfile>,
}

impl Profiler {
    /// An enabled profiler.
    pub fn on() -> Self {
        Self::new(true)
    }

    /// A disabled profiler: every call is a no-op branch.
    pub fn off() -> Self {
        Self::new(false)
    }

    fn new(on: bool) -> Self {
        Self {
            on,
            run_started: None,
            wall_ns: 0,
            stack: Vec::with_capacity(16),
            frames: [PhaseFrame::default(); Phase::COUNT],
            counters: [0; HotCounter::COUNT],
            gauges: [GaugeFrame::default(); GaugeId::COUNT],
            solvers: Vec::new(),
        }
    }

    /// Whether profiling is active.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Marks the start of a profiled run (wall-clock anchor). A no-op
    /// when a run is already open, so nested entry points may each
    /// call it and the outermost anchor wins.
    #[inline]
    pub fn run_begin(&mut self) {
        if self.on && self.run_started.is_none() {
            self.run_started = Some(Instant::now());
        }
    }

    /// Marks the end of a profiled run; wall time accumulates across
    /// multiple `run_begin`/`run_end` pairs.
    #[inline]
    pub fn run_end(&mut self) {
        if self.on {
            if let Some(t0) = self.run_started.take() {
                self.wall_ns += t0.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Opens a phase scope. Every `enter` must be matched by an
    /// [`Self::exit`] of the same phase on every control path.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        if self.on {
            self.stack.push((phase, Instant::now()));
        }
    }

    /// Closes the innermost phase scope, attributing elapsed time to
    /// `phase` and charging it as child time to the enclosing scope.
    #[inline]
    pub fn exit(&mut self, phase: Phase) {
        if !self.on {
            return;
        }
        let Some((top, t0)) = self.stack.pop() else {
            debug_assert!(false, "exit({}) with empty phase stack", phase.name());
            return;
        };
        debug_assert!(
            top == phase,
            "exit({}) does not match innermost scope {}",
            phase.name(),
            top.name()
        );
        let dt = t0.elapsed().as_nanos() as u64;
        let f = &mut self.frames[top.idx()];
        f.calls += 1;
        f.total_ns += dt;
        if let Some(&(parent, _)) = self.stack.last() {
            self.frames[parent.idx()].child_ns += dt;
        }
    }

    /// Increments a hot-path counter by one.
    #[inline]
    pub fn incr(&mut self, c: HotCounter) {
        if self.on {
            self.counters[c.idx()] += 1;
        }
    }

    /// Increments a hot-path counter by `n`.
    #[inline]
    pub fn incr_by(&mut self, c: HotCounter, n: u64) {
        if self.on {
            self.counters[c.idx()] += n;
        }
    }

    /// Records one gauge sample.
    #[inline]
    pub fn gauge(&mut self, g: GaugeId, v: u64) {
        if self.on {
            let f = &mut self.gauges[g.idx()];
            f.peak = f.peak.max(v);
            f.sum = f.sum.saturating_add(v);
            f.samples += 1;
        }
    }

    /// Folds one offline solve's convergence summary into the profile.
    /// Solves are never on the hot path, so this may allocate.
    pub fn record_solver(&mut self, s: SolverProfile) {
        if self.on {
            self.solvers.push(s);
        }
    }

    /// Snapshots everything into a serializable report.
    pub fn report(&self) -> ProfileReport {
        let phases: Vec<PhaseStat> = Phase::ALL
            .iter()
            .filter(|p| self.frames[p.idx()].calls > 0)
            .map(|&p| {
                let f = &self.frames[p.idx()];
                PhaseStat {
                    phase: p.name().to_owned(),
                    calls: f.calls,
                    total_ns: f.total_ns,
                    self_ns: f.total_ns.saturating_sub(f.child_ns),
                }
            })
            .collect();
        let counters: Vec<CounterStat> = HotCounter::ALL
            .iter()
            .map(|&c| CounterStat {
                counter: c.name().to_owned(),
                value: self.counters[c.idx()],
            })
            .collect();
        let gauges: Vec<GaugeStat> = GaugeId::ALL
            .iter()
            .map(|&g| {
                let f = &self.gauges[g.idx()];
                GaugeStat {
                    gauge: g.name().to_owned(),
                    peak: f.peak,
                    mean: if f.samples == 0 {
                        0.0
                    } else {
                        f.sum as f64 / f.samples as f64
                    },
                    samples: f.samples,
                }
            })
            .collect();
        let events = self.counters[HotCounter::HeapPops.idx()];
        let wall_s = self.wall_ns as f64 / 1e9;
        ProfileReport {
            enabled: self.on,
            wall_ns: self.wall_ns,
            events_processed: events,
            events_per_sec: if wall_s > 0.0 {
                events as f64 / wall_s
            } else {
                0.0
            },
            phases,
            counters,
            gauges,
            solvers: self.solvers.clone(),
        }
    }
}

/// One phase's accumulated timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase name ([`Phase::name`]).
    pub phase: String,
    /// Times the phase was entered.
    pub calls: u64,
    /// Total wall time inside the phase, nested children included.
    pub total_ns: u64,
    /// Wall time net of nested profiled phases (`total - children`).
    pub self_ns: u64,
}

/// One hot-path counter's final value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    /// Counter name ([`HotCounter::name`]).
    pub counter: String,
    /// Final count.
    pub value: u64,
}

/// One gauge's peak/mean summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// Gauge name ([`GaugeId::name`]).
    pub gauge: String,
    /// Largest sampled value.
    pub peak: u64,
    /// Mean of all samples (0 with no samples).
    pub mean: f64,
    /// Number of samples taken.
    pub samples: u64,
}

/// Summary of one offline MDP solve, distilled from a per-sweep
/// convergence trace (the MDP crate's traced solvers produce the
/// trace; its `profile()` adapter builds this).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverProfile {
    /// Solver name (e.g. `"value-iteration"`).
    pub method: String,
    /// Whether the residual crossed the stopping threshold.
    pub converged: bool,
    /// Sweeps performed.
    pub sweeps: u64,
    /// Total states backed up across all sweeps.
    pub states_touched: u64,
    /// Total wall-clock solve time, seconds.
    pub total_s: f64,
    /// Mean per-sweep wall time, seconds (0 with no sweeps).
    pub mean_sweep_s: f64,
    /// Slowest single sweep, seconds.
    pub max_sweep_s: f64,
    /// Residual after the final sweep (`INFINITY` when no sweep ran).
    pub final_residual: f64,
}

/// Everything the profiler saw, as data: phase timings, hot-path
/// counters, gauges, and solver summaries. Serializes to JSON for
/// `BENCH_perf.json`-style artifacts and renders as a text flame-table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// False when produced by a disabled profiler (all zeros).
    pub enabled: bool,
    /// Total profiled wall time, nanoseconds.
    pub wall_ns: u64,
    /// Heap events processed (`heap_pops`).
    pub events_processed: u64,
    /// Events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Per-phase timings (phases with at least one call).
    pub phases: Vec<PhaseStat>,
    /// Every hot-path counter, in declaration order.
    pub counters: Vec<CounterStat>,
    /// Every gauge, in declaration order.
    pub gauges: Vec<GaugeStat>,
    /// One entry per recorded offline solve.
    pub solvers: Vec<SolverProfile>,
}

impl ProfileReport {
    /// A named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.counter == name)
            .map_or(0, |c| c.value)
    }

    /// A named gauge's peak (0 when absent).
    pub fn gauge_peak(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|g| g.gauge == name)
            .map_or(0, |g| g.peak)
    }

    /// Renders the per-phase timings as a text flame-table: phases
    /// sorted by total time, with self time (net of nested phases) and
    /// its share of the profiled wall clock.
    pub fn flame_table(&self) -> String {
        let mut rows: Vec<&PhaseStat> = self.phases.iter().collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.phase.cmp(&b.phase)));
        let wall = self.wall_ns.max(1) as f64;
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>12} {:>7}\n",
            "phase", "calls", "total ms", "self ms", "self %"
        ));
        for r in rows {
            out.push_str(&format!(
                "{:<14} {:>12} {:>12.3} {:>12.3} {:>7.2}\n",
                r.phase,
                r.calls,
                r.total_ns as f64 / 1e6,
                r.self_ns as f64 / 1e6,
                100.0 * r.self_ns as f64 / wall,
            ));
        }
        out.push_str(&format!(
            "wall {:.3} ms, {} events, {:.2} M events/s\n",
            self.wall_ns as f64 / 1e6,
            self.events_processed,
            self.events_per_sec / 1e6,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_inert() {
        let mut p = Profiler::off();
        assert!(!p.is_on());
        p.run_begin();
        p.enter(Phase::Arrival);
        p.incr(HotCounter::HeapPops);
        p.gauge(GaugeId::HeapDepth, 42);
        p.record_solver(SolverProfile {
            method: "vi".into(),
            converged: true,
            sweeps: 1,
            states_touched: 1,
            total_s: 0.1,
            mean_sweep_s: 0.1,
            max_sweep_s: 0.1,
            final_residual: 0.0,
        });
        p.exit(Phase::Arrival);
        p.run_end();
        let r = p.report();
        assert!(!r.enabled);
        assert_eq!(r.wall_ns, 0);
        assert_eq!(r.events_processed, 0);
        assert!(r.phases.is_empty());
        assert!(r.solvers.is_empty());
        assert!(r.counters.iter().all(|c| c.value == 0));
        assert!(r.gauges.iter().all(|g| g.samples == 0));
    }

    #[test]
    fn nesting_attributes_child_time_to_self_column() {
        let mut p = Profiler::on();
        p.run_begin();
        p.enter(Phase::Arrival);
        p.enter(Phase::Route);
        p.enter(Phase::Dispatch);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.exit(Phase::Dispatch);
        p.exit(Phase::Route);
        p.exit(Phase::Arrival);
        p.run_end();
        let r = p.report();
        let get = |n: &str| r.phases.iter().find(|s| s.phase == n).unwrap().clone();
        let (arrival, route, dispatch) = (get("arrival"), get("route"), get("dispatch"));
        // Totals telescope: each parent's total covers its child.
        assert!(arrival.total_ns >= route.total_ns);
        assert!(route.total_ns >= dispatch.total_ns);
        // The sleep lands in dispatch's self time, not the parents'.
        assert!(dispatch.self_ns >= 2_000_000, "{}", dispatch.self_ns);
        assert!(arrival.self_ns < arrival.total_ns);
        assert_eq!(arrival.self_ns, arrival.total_ns - route.total_ns);
        assert!(r.wall_ns >= dispatch.total_ns);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let mut p = Profiler::on();
        p.incr(HotCounter::HeapPushes);
        p.incr_by(HotCounter::HeapPushes, 4);
        p.incr(HotCounter::HeapPops);
        p.gauge(GaugeId::QueueDepth, 3);
        p.gauge(GaugeId::QueueDepth, 9);
        p.gauge(GaugeId::QueueDepth, 6);
        let r = p.report();
        assert_eq!(r.counter("heap_pushes"), 5);
        assert_eq!(r.counter("heap_pops"), 1);
        assert_eq!(r.counter("no_such"), 0);
        let g = r.gauges.iter().find(|g| g.gauge == "queue_depth").unwrap();
        assert_eq!(g.peak, 9);
        assert_eq!(g.samples, 3);
        assert!((g.mean - 6.0).abs() < 1e-12);
        assert_eq!(r.gauge_peak("queue_depth"), 9);
    }

    #[test]
    fn report_serde_round_trips() {
        let mut p = Profiler::on();
        p.run_begin();
        p.enter(Phase::Solve);
        p.exit(Phase::Solve);
        p.incr(HotCounter::Dispatches);
        p.gauge(GaugeId::HeapDepth, 7);
        p.record_solver(SolverProfile {
            method: "value-iteration".into(),
            converged: true,
            sweeps: 12,
            states_touched: 1200,
            total_s: 0.5,
            mean_sweep_s: 0.04,
            max_sweep_s: 0.1,
            final_residual: 1e-10,
        });
        p.run_end();
        let r = p.report();
        let json = serde_json::to_string(&r).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn flame_table_lists_phases_by_total() {
        let mut p = Profiler::on();
        p.run_begin();
        p.enter(Phase::Arrival);
        std::thread::sleep(std::time::Duration::from_millis(1));
        p.exit(Phase::Arrival);
        p.enter(Phase::Report);
        p.exit(Phase::Report);
        p.incr_by(HotCounter::HeapPops, 2);
        p.run_end();
        let table = p.report().flame_table();
        assert!(table.contains("arrival"), "{table}");
        assert!(table.contains("report"), "{table}");
        let (a, b) = (
            table.find("arrival").unwrap(),
            table.find("report").unwrap(),
        );
        assert!(a < b, "longest phase first:\n{table}");
        assert!(table.contains("2 events"), "{table}");
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.extend(HotCounter::ALL.iter().map(|c| c.name()));
        names.extend(GaugeId::ALL.iter().map(|g| g.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate profile key");
        assert_eq!(Phase::ALL.len(), Phase::COUNT);
        assert_eq!(HotCounter::ALL.len(), HotCounter::COUNT);
        assert_eq!(GaugeId::ALL.len(), GaugeId::COUNT);
    }
}
