//! The structured event model: one [`Event`] per observable step of a
//! query's lifecycle, plus audit events for every policy-level action.
//!
//! Events are stamped with deterministic simulation time (integer
//! nanoseconds — never a wall clock), so a seeded run emits a
//! byte-identical stream on every replay. Serialization goes through
//! the workspace's serde stand-in: an event renders as an
//! externally-tagged JSON object, e.g.
//! `{"Arrival":{"at":1000,"query":0,"deadline":150001000}}`.

use serde::{Deserialize, Serialize};

/// Simulation time in integer nanoseconds (mirrors the simulator's
/// clock without depending on it — telemetry sits below the simulator
/// in the crate graph).
pub type Nanos = u64;

/// Which queue a query was placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueId {
    /// The shared central queue (eager-pulling baselines).
    Central,
    /// A per-worker queue (RAMSIS routing).
    Worker(u32),
    /// The stranded-query limbo: no live worker existed at routing time
    /// (full outage under `CrashPolicy::RequeueToSurvivors`).
    Limbo,
}

/// Why a query was shed without service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedCause {
    /// Its deadline was unreachable even on the fastest model at
    /// batch 1 (`ShedPolicy::Hopeless`).
    Hopeless,
    /// It was trimmed to cap the queue depth
    /// (`ShedPolicy::QueueDepth`).
    QueueDepth,
    /// The serving policy's own drop reformulation (§4.3.1) or any
    /// scheme that does not report a finer cause.
    Policy,
    /// Its dispatch timed out and the resilience layer's retry budget
    /// or attempt cap refused another try.
    RetryExhausted,
}

/// A scheme's answer to one decision request (mirror of the
/// simulator's `Selection`, flattened for the audit log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Serve `batch` queries on `model`.
    Serve {
        /// Catalog index of the selected model.
        model: u32,
        /// Batch size chosen.
        batch: u32,
    },
    /// Shed `count` earliest-deadline queries.
    Drop {
        /// Number of queries shed.
        count: u32,
    },
    /// Leave the worker idle until the next event.
    Idle,
}

/// One observable step in the serving pipeline.
///
/// The first seven variants trace the query lifecycle; the rest audit
/// policy-level decisions. Every variant's first field is its
/// simulation timestamp (see [`Event::at`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A query arrived at the serving system.
    Arrival {
        /// Arrival time.
        at: Nanos,
        /// Query id (the arrival index — unique per run).
        query: u64,
        /// Absolute deadline (`at + SLO`).
        deadline: Nanos,
    },
    /// The query was placed in a queue.
    Enqueue {
        /// Enqueue time (equals the arrival time; requeues after a
        /// crash are separate [`Event::CrashRequeue`] events).
        at: Nanos,
        /// Query id.
        query: u64,
        /// Destination queue.
        queue: QueueId,
        /// Queue depth after the push.
        depth: u32,
    },
    /// A worker started serving a batch.
    Dispatch {
        /// Service start time.
        at: Nanos,
        /// Serving worker.
        worker: u32,
        /// Catalog index of the model run.
        model: u32,
        /// Batch size drained from the queue.
        batch: u32,
        /// Visible queue depth just before the drain.
        depth: u32,
    },
    /// A query's batch finished; one event per query in the batch.
    Complete {
        /// Completion time.
        at: Nanos,
        /// Query id.
        query: u64,
        /// Worker that served it.
        worker: u32,
        /// Model that served it.
        model: u32,
        /// End-to-end response time (`at - arrival`).
        response_ns: Nanos,
        /// Whether the completion missed the query's deadline.
        violated: bool,
    },
    /// A query was shed by the serving policy without service.
    Shed {
        /// Shed time.
        at: Nanos,
        /// Query id.
        query: u64,
        /// Why it was shed.
        cause: ShedCause,
    },
    /// A query was lost to a crash (`CrashPolicy::Drop`).
    Drop {
        /// Drop time.
        at: Nanos,
        /// Query id.
        query: u64,
    },
    /// A query displaced by a worker crash was requeued to survivors.
    CrashRequeue {
        /// Requeue time (the crash time).
        at: Nanos,
        /// Query id.
        query: u64,
        /// The crashed worker it was displaced from.
        from: u32,
    },
    /// One scheme decision, with the state it saw (audit).
    PolicyDecision {
        /// Decision time.
        at: Nanos,
        /// Worker the decision was made for.
        worker: u32,
        /// Queries visible to the worker.
        queued: u32,
        /// Slack of the earliest deadline, nanoseconds (negative when
        /// already blown).
        slack_ns: i64,
        /// The action taken.
        action: Action,
    },
    /// An adaptive scheme committed a policy hot-swap (audit).
    RegimeSwap {
        /// Commit time.
        at: Nanos,
        /// Regime label swapped away from.
        from: String,
        /// Regime label swapped to.
        to: String,
        /// Detection latency of the drift detector.
        detection_delay_ns: Nanos,
    },
    /// A missing in-grid regime was solved online (audit).
    LazySolve {
        /// Solve time (simulated; the solve itself is off the
        /// simulated clock).
        at: Nanos,
        /// Label of the regime solved.
        regime: String,
    },
    /// A decision was answered by the fallback policy (audit).
    FallbackEngaged {
        /// Decision time.
        at: Nanos,
        /// Worker the fallback served.
        worker: u32,
    },
    /// A query's dispatch exceeded its SLO-derived timeout and was
    /// abandoned; one event per query in the batch. Non-terminal: the
    /// query either retries ([`Event::Retry`]), is shed
    /// ([`Event::Shed`] with [`ShedCause::RetryExhausted`]), or — when
    /// the timed-out dispatch had a hedge twin — stays in flight there.
    Timeout {
        /// Timeout firing time.
        at: Nanos,
        /// Query id.
        query: u64,
        /// Worker whose dispatch was abandoned.
        worker: u32,
        /// Dispatch attempts that have now timed out for this query.
        attempt: u32,
    },
    /// A timed-out query was scheduled for re-dispatch after backoff.
    Retry {
        /// Scheduling time (the timeout firing time).
        at: Nanos,
        /// Query id.
        query: u64,
        /// Which retry this is (1 = first re-dispatch).
        attempt: u32,
        /// Backoff delay before the query re-enters routing.
        delay_ns: Nanos,
    },
    /// A slow in-flight batch was duplicated to a second worker
    /// (audit).
    HedgeIssued {
        /// Hedge issue time.
        at: Nanos,
        /// Worker running the original dispatch.
        primary: u32,
        /// Worker the duplicate was issued to.
        hedge: u32,
        /// Catalog index of the model run (same on both sides).
        model: u32,
        /// Batch size duplicated.
        batch: u32,
    },
    /// The losing side of a hedged pair was cancelled (audit).
    HedgeCancelled {
        /// Cancel time.
        at: Nanos,
        /// Worker whose dispatch was cancelled.
        worker: u32,
        /// Worker whose dispatch survives (or won outright).
        winner: u32,
    },
    /// A query was refused at enqueue by admission control (terminal —
    /// the query is shed before any work is done on it).
    Admission {
        /// Rejection time.
        at: Nanos,
        /// Query id.
        query: u64,
        /// Queue that refused it.
        queue: QueueId,
        /// Queue depth at the refusal.
        depth: u32,
        /// Sojourn of the queue head at the refusal (how long the
        /// oldest queued query had been waiting).
        sojourn_ns: Nanos,
    },
    /// The autoscaler sent a worker warming (audit). The worker serves
    /// only after its warm-up latency ([`Event::WorkerWarm`]).
    ScaleUp {
        /// Decision time.
        at: Nanos,
        /// Worker slot being warmed.
        worker: u32,
        /// Live worker count at the decision (the new worker not
        /// included yet).
        live: u32,
    },
    /// The autoscaler sent a worker draining (audit): its queued work
    /// was handed off to survivors and its in-flight batch runs to
    /// completion ([`Event::DrainComplete`]).
    ScaleDown {
        /// Decision time.
        at: Nanos,
        /// Worker being drained (or a cancelled warm-up).
        worker: u32,
        /// Live worker count after the removal.
        live: u32,
        /// Queued queries handed off to survivors (0 for a cancelled
        /// warm-up).
        handoffs: u32,
    },
    /// A warming worker finished its warm-up and went Live (audit).
    WorkerWarm {
        /// The time the worker joined the pool.
        at: Nanos,
        /// Worker that went Live.
        worker: u32,
        /// Live worker count including the new worker.
        live: u32,
    },
    /// A draining worker finished (or had none) its in-flight batch and
    /// left the pool (audit).
    DrainComplete {
        /// The time the worker went Down.
        at: Nanos,
        /// Worker that left the pool.
        worker: u32,
    },
    /// The brownout ladder escalated under sustained overload (audit):
    /// model selection is now degraded by `rung` rungs toward the
    /// fastest model.
    BrownoutEnter {
        /// Escalation time.
        at: Nanos,
        /// The rung now active (1-based).
        rung: u32,
        /// Load estimate that triggered the move.
        load_qps: f64,
        /// Live pool capacity the load was compared against.
        capacity_qps: f64,
    },
    /// The brownout ladder de-escalated one rung (audit).
    BrownoutExit {
        /// De-escalation time.
        at: Nanos,
        /// The rung just left.
        rung: u32,
        /// Load estimate at the move.
        load_qps: f64,
        /// Live pool capacity the load was compared against.
        capacity_qps: f64,
    },
    /// The health subsystem probed a worker (audit).
    ProbeSent {
        /// Probe time.
        at: Nanos,
        /// Worker probed.
        worker: u32,
    },
    /// A probe went unanswered within its timeout (audit).
    ProbeFailed {
        /// The probe's firing time.
        at: Nanos,
        /// Worker that failed to answer.
        worker: u32,
    },
    /// The failure detector ejected a worker from perceived membership
    /// (audit). Scored against ground truth: `genuine` says whether the
    /// worker really was down, and for genuine suspicions `lag_ns` is
    /// the detection latency since the actual failure instant.
    Suspect {
        /// Suspicion time.
        at: Nanos,
        /// Worker ejected.
        worker: u32,
        /// True when the worker really was down (crash / flap outage);
        /// false for a false positive (partition, outlier ejection).
        genuine: bool,
        /// Detection lag behind the actual failure (`0` when the
        /// suspicion is false — there is no failure instant to lag).
        lag_ns: Nanos,
    },
    /// A suspected worker passed its half-open probes and rejoined
    /// perceived membership (audit).
    Reinstate {
        /// Reinstatement time.
        at: Nanos,
        /// Worker reinstated.
        worker: u32,
        /// How long the worker spent suspected.
        suspected_ns: Nanos,
    },
    /// A worker's circuit breaker tripped Closed → Open (or re-opened
    /// from HalfOpen on a failed probe) (audit).
    BreakerOpen {
        /// Transition time.
        at: Nanos,
        /// Worker whose breaker opened.
        worker: u32,
    },
    /// A worker's circuit breaker moved Open → HalfOpen after its
    /// backoff, admitting trial probes (audit).
    BreakerHalfOpen {
        /// Transition time.
        at: Nanos,
        /// Worker whose breaker half-opened.
        worker: u32,
    },
    /// A worker's circuit breaker closed after enough consecutive
    /// half-open probe successes (audit; paired with
    /// [`Event::Reinstate`]).
    BreakerClose {
        /// Transition time.
        at: Nanos,
        /// Worker whose breaker closed.
        worker: u32,
    },
}

impl Event {
    /// The event's simulation timestamp.
    pub fn at(&self) -> Nanos {
        match *self {
            Event::Arrival { at, .. }
            | Event::Enqueue { at, .. }
            | Event::Dispatch { at, .. }
            | Event::Complete { at, .. }
            | Event::Shed { at, .. }
            | Event::Drop { at, .. }
            | Event::CrashRequeue { at, .. }
            | Event::PolicyDecision { at, .. }
            | Event::RegimeSwap { at, .. }
            | Event::LazySolve { at, .. }
            | Event::FallbackEngaged { at, .. }
            | Event::Timeout { at, .. }
            | Event::Retry { at, .. }
            | Event::HedgeIssued { at, .. }
            | Event::HedgeCancelled { at, .. }
            | Event::Admission { at, .. }
            | Event::ScaleUp { at, .. }
            | Event::ScaleDown { at, .. }
            | Event::WorkerWarm { at, .. }
            | Event::DrainComplete { at, .. }
            | Event::BrownoutEnter { at, .. }
            | Event::BrownoutExit { at, .. }
            | Event::ProbeSent { at, .. }
            | Event::ProbeFailed { at, .. }
            | Event::Suspect { at, .. }
            | Event::Reinstate { at, .. }
            | Event::BreakerOpen { at, .. }
            | Event::BreakerHalfOpen { at, .. }
            | Event::BreakerClose { at, .. } => at,
        }
    }

    /// The query id the event is about, for the variants that carry
    /// one. Dispatches (and all audit events) return `None`: the stream
    /// attributes them by worker, not by query.
    pub fn query(&self) -> Option<u64> {
        match *self {
            Event::Arrival { query, .. }
            | Event::Enqueue { query, .. }
            | Event::Complete { query, .. }
            | Event::Shed { query, .. }
            | Event::Drop { query, .. }
            | Event::CrashRequeue { query, .. }
            | Event::Timeout { query, .. }
            | Event::Retry { query, .. }
            | Event::Admission { query, .. } => Some(query),
            _ => None,
        }
    }

    /// True for lifecycle events (the ones conservation accounting
    /// runs over), false for audit events.
    pub fn is_lifecycle(&self) -> bool {
        !matches!(
            self,
            Event::PolicyDecision { .. }
                | Event::RegimeSwap { .. }
                | Event::LazySolve { .. }
                | Event::FallbackEngaged { .. }
                | Event::HedgeIssued { .. }
                | Event::HedgeCancelled { .. }
                | Event::ScaleUp { .. }
                | Event::ScaleDown { .. }
                | Event::WorkerWarm { .. }
                | Event::DrainComplete { .. }
                | Event::BrownoutEnter { .. }
                | Event::BrownoutExit { .. }
                | Event::ProbeSent { .. }
                | Event::ProbeFailed { .. }
                | Event::Suspect { .. }
                | Event::Reinstate { .. }
                | Event::BreakerOpen { .. }
                | Event::BreakerHalfOpen { .. }
                | Event::BreakerClose { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_round_trips_every_variant() {
        let events = vec![
            Event::Arrival {
                at: 1,
                query: 0,
                deadline: 150_000_001,
            },
            Event::Enqueue {
                at: 1,
                query: 0,
                queue: QueueId::Worker(3),
                depth: 2,
            },
            Event::Enqueue {
                at: 2,
                query: 1,
                queue: QueueId::Central,
                depth: 1,
            },
            Event::Enqueue {
                at: 3,
                query: 2,
                queue: QueueId::Limbo,
                depth: 1,
            },
            Event::Dispatch {
                at: 5,
                worker: 3,
                model: 7,
                batch: 2,
                depth: 2,
            },
            Event::Complete {
                at: 9,
                query: 0,
                worker: 3,
                model: 7,
                response_ns: 8,
                violated: false,
            },
            Event::Shed {
                at: 10,
                query: 4,
                cause: ShedCause::Hopeless,
            },
            Event::Drop { at: 11, query: 5 },
            Event::CrashRequeue {
                at: 12,
                query: 6,
                from: 1,
            },
            Event::PolicyDecision {
                at: 13,
                worker: 0,
                queued: 4,
                slack_ns: -2_000,
                action: Action::Drop { count: 1 },
            },
            Event::RegimeSwap {
                at: 14,
                from: "le120qps-poisson".into(),
                to: "gt120qps-bursty".into(),
                detection_delay_ns: 2_000_000_000,
            },
            Event::LazySolve {
                at: 15,
                regime: "gt120qps-bursty".into(),
            },
            Event::FallbackEngaged { at: 16, worker: 2 },
            Event::Timeout {
                at: 17,
                query: 7,
                worker: 1,
                attempt: 1,
            },
            Event::Retry {
                at: 17,
                query: 7,
                attempt: 1,
                delay_ns: 5_000_000,
            },
            Event::HedgeIssued {
                at: 18,
                primary: 0,
                hedge: 2,
                model: 3,
                batch: 4,
            },
            Event::HedgeCancelled {
                at: 19,
                worker: 2,
                winner: 0,
            },
            Event::Admission {
                at: 20,
                query: 8,
                queue: QueueId::Worker(1),
                depth: 64,
                sojourn_ns: 30_000_000,
            },
            Event::Shed {
                at: 21,
                query: 9,
                cause: ShedCause::RetryExhausted,
            },
            Event::ScaleUp {
                at: 22,
                worker: 4,
                live: 2,
            },
            Event::ScaleDown {
                at: 23,
                worker: 4,
                live: 1,
                handoffs: 3,
            },
            Event::WorkerWarm {
                at: 24,
                worker: 4,
                live: 3,
            },
            Event::DrainComplete { at: 25, worker: 4 },
            Event::BrownoutEnter {
                at: 26,
                rung: 1,
                load_qps: 420.0,
                capacity_qps: 300.0,
            },
            Event::BrownoutExit {
                at: 27,
                rung: 1,
                load_qps: 180.0,
                capacity_qps: 300.0,
            },
            Event::ProbeSent { at: 28, worker: 1 },
            Event::ProbeFailed { at: 29, worker: 1 },
            Event::Suspect {
                at: 30,
                worker: 1,
                genuine: true,
                lag_ns: 40_000_000,
            },
            Event::Suspect {
                at: 31,
                worker: 2,
                genuine: false,
                lag_ns: 0,
            },
            Event::BreakerOpen { at: 31, worker: 2 },
            Event::BreakerHalfOpen { at: 32, worker: 2 },
            Event::BreakerClose { at: 33, worker: 2 },
            Event::Reinstate {
                at: 33,
                worker: 2,
                suspected_ns: 2_000_000,
            },
        ];
        for e in &events {
            let json = serde_json::to_string(e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, e, "{json}");
            // Determinism: re-serializing gives identical bytes.
            assert_eq!(json, serde_json::to_string(&back).unwrap());
        }
    }

    #[test]
    fn timestamps_and_lifecycle_split() {
        let e = Event::Shed {
            at: 42,
            query: 1,
            cause: ShedCause::Policy,
        };
        assert_eq!(e.at(), 42);
        assert!(e.is_lifecycle());
        let a = Event::FallbackEngaged { at: 7, worker: 0 };
        assert_eq!(a.at(), 7);
        assert!(!a.is_lifecycle());
        // Resilience events: timeouts/retries/admissions are lifecycle
        // (they move a query through its state machine), hedge audit
        // events are not.
        let t = Event::Timeout {
            at: 8,
            query: 0,
            worker: 0,
            attempt: 1,
        };
        assert!(t.is_lifecycle());
        let adm = Event::Admission {
            at: 9,
            query: 0,
            queue: QueueId::Central,
            depth: 1,
            sojourn_ns: 0,
        };
        assert!(adm.is_lifecycle());
        let h = Event::HedgeIssued {
            at: 10,
            primary: 0,
            hedge: 1,
            model: 0,
            batch: 1,
        };
        assert!(!h.is_lifecycle());
        // Autoscale events are audit: they narrate membership and
        // degradation, not a query's own state machine.
        let s = Event::ScaleUp {
            at: 11,
            worker: 2,
            live: 3,
        };
        assert_eq!(s.at(), 11);
        assert!(!s.is_lifecycle());
        let b = Event::BrownoutEnter {
            at: 12,
            rung: 2,
            load_qps: 500.0,
            capacity_qps: 300.0,
        };
        assert!(!b.is_lifecycle());
        // Health events are audit too: they narrate perceived
        // membership, never a query's own state machine.
        let sus = Event::Suspect {
            at: 13,
            worker: 0,
            genuine: true,
            lag_ns: 1_000_000,
        };
        assert_eq!(sus.at(), 13);
        assert!(!sus.is_lifecycle());
        let p = Event::ProbeFailed { at: 14, worker: 0 };
        assert!(!p.is_lifecycle());
        let r = Event::Reinstate {
            at: 15,
            worker: 0,
            suspected_ns: 2_000_000,
        };
        assert!(!r.is_lifecycle());
    }
}
