//! Decision provenance: one [`DecisionRecord`] per routing /
//! model-selection decision the engine makes.
//!
//! The lifecycle stream ([`crate::event`]) records a decision's
//! *consequences* — dispatches, completions, sheds. This module records
//! the decision *itself*: the MDP state coordinates the policy saw, the
//! candidate actions it could have taken (with each one's expected
//! slack and value), the action it chose, and a [`ReasonCode`] saying
//! which path produced it. Records carry the engine's processed-event
//! count at emission ([`DecisionRecord::event`]) so a record can be
//! joined against a checkpoint's `events_done` and the run branched
//! cheaply for counterfactual replay.
//!
//! The recording contract mirrors the tracer/profiler pattern: the
//! engine reads [`DecisionSink::enabled`] once per run, and with the
//! default [`NullDecisionSink`] every emission site costs one
//! predictable branch — a run with recording off is bit-identical
//! (report and telemetry stream) to one on an engine without the
//! subsystem. Decision indices (`k`) are counted *unconditionally*, so
//! a replay can force an alternative action at decision `k` whether or
//! not the original run recorded anything.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::event::Nanos;
use crate::sink::{StreamHeader, JSONL_SCHEMA_VERSION};

/// The stream tag decision logs carry in their schema header.
pub const DECISION_STREAM: &str = "decisions";

/// Which engine path produced a decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReasonCode {
    /// A plain policy-set lookup answered the decision.
    PolicyLookup,
    /// The scheme's fallback policy answered (no pre-solved policy
    /// covered the live-worker count or anticipated load).
    Fallback,
    /// The brownout ladder remapped the policy's model choice; the
    /// record's `chosen` keeps the policy's raw pick and
    /// [`DecisionRecord::effective`] carries the degraded action
    /// actually dispatched.
    DegradedRung,
    /// The resilience layer duplicated a slow in-flight batch to a
    /// second worker.
    Hedge,
    /// The resilience layer scheduled a timed-out query for
    /// re-dispatch after backoff.
    Retry,
    /// The query (or batch prefix) was shed: a policy `Drop` decision,
    /// or retry exhaustion.
    Shed,
}

impl ReasonCode {
    /// Stable snake-case label (tables and aggregation keys).
    pub fn name(self) -> &'static str {
        match self {
            ReasonCode::PolicyLookup => "policy_lookup",
            ReasonCode::Fallback => "fallback",
            ReasonCode::DegradedRung => "degraded_rung",
            ReasonCode::Hedge => "hedge",
            ReasonCode::Retry => "retry",
            ReasonCode::Shed => "shed",
        }
    }
}

/// One action the policy could have taken, with its expected outcome
/// under the worker profile's deterministic (p95) latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateAction {
    /// Catalog index of the candidate model.
    pub model: u32,
    /// Batch size the expectation was computed at.
    pub batch: u32,
    /// Expected slack at completion: the earliest queued deadline's
    /// slack minus the profiled batch latency (negative = this action
    /// is expected to violate).
    pub expected_slack_ns: i64,
    /// The action's value: the model's profiled accuracy (the paper's
    /// per-query objective).
    pub value: f64,
}

/// The MDP state coordinates a selection-site decision was made under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionState {
    /// Anticipated load from the configured monitor, QPS.
    pub load_qps: f64,
    /// Queries visible to the deciding worker.
    pub queued: u32,
    /// Slack of the earliest deadline among them, nanoseconds
    /// (negative when already blown).
    pub slack_ns: i64,
    /// Live (non-crashed) workers at the decision.
    pub live_workers: u32,
}

/// The action a decision committed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChosenAction {
    /// Serve `batch` queries on `model` — the scheme's raw pick (the
    /// action counterfactual replay forces to reproduce a decision);
    /// when an active brownout rung degraded it,
    /// [`DecisionRecord::effective`] carries what actually dispatched.
    Serve {
        /// Catalog index of the dispatched model.
        model: u32,
        /// Batch size dispatched.
        batch: u32,
    },
    /// Shed `count` earliest-deadline queries.
    Shed {
        /// Queries shed.
        count: u32,
    },
    /// Leave the worker idle until the next event.
    Idle,
    /// Duplicate the in-flight batch to `target`.
    Hedge {
        /// Catalog index of the duplicated model.
        model: u32,
        /// Batch size duplicated.
        batch: u32,
        /// Worker the duplicate was issued to.
        target: u32,
    },
    /// Re-dispatch a timed-out query after `delay_ns` backoff.
    Retry {
        /// Which retry this is (1 = first re-dispatch).
        attempt: u32,
        /// Backoff before the query re-enters routing.
        delay_ns: u64,
    },
}

/// One recorded decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Decision index within the run (0-based, counted across every
    /// emission site whether or not recording is on). The key
    /// counterfactual replay forces on.
    pub k: u64,
    /// Simulation time of the decision.
    pub at: Nanos,
    /// Engine heap events fully processed before this decision — the
    /// join key against a checkpoint's `events_done` (a snapshot taken
    /// at `events_done = N` precedes every record with `event >= N`).
    pub event: u64,
    /// The earliest affected query id (queue head for selection-site
    /// decisions, the timed-out or hedged query otherwise); `None`
    /// when no single query anchors the decision.
    pub query: Option<u64>,
    /// Worker the decision was made for (the hedge *target* for
    /// [`ChosenAction::Hedge`]).
    pub worker: u32,
    /// State coordinates at selection sites; `None` for hedge/retry
    /// sites, which fire outside a selection context.
    pub state: Option<DecisionState>,
    /// The traffic-regime label the scheme operated under, if any.
    pub regime: Option<String>,
    /// The candidate set weighed at selection sites (one entry per
    /// catalog model), empty elsewhere.
    pub candidates: Vec<CandidateAction>,
    /// The action committed — the scheme's raw pick, before any
    /// brownout degradation. Forcing this exact action at decision `k`
    /// in a counterfactual replay reproduces the original run.
    pub chosen: ChosenAction,
    /// The action actually dispatched when it differs from `chosen`
    /// (an active brownout rung degraded the model); `None` otherwise.
    pub effective: Option<ChosenAction>,
    /// Which engine path produced it.
    pub reason: ReasonCode,
}

/// A consumer of decision records (mirror of
/// [`crate::sink::TelemetrySink`]).
pub trait DecisionSink {
    /// Whether the sink wants records at all. The engine reads this
    /// once per run and skips record construction when `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record.
    fn record(&mut self, record: &DecisionRecord);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullDecisionSink;

impl DecisionSink for NullDecisionSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _record: &DecisionRecord) {}
}

/// An unbounded in-memory sink (tests, replay harnesses, `why`).
#[derive(Debug, Clone, Default)]
pub struct VecDecisionSink {
    records: Vec<DecisionRecord>,
}

impl VecDecisionSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded decisions, in emission order.
    pub fn records(&self) -> &[DecisionRecord] {
        &self.records
    }

    /// Consumes the sink, returning its records.
    pub fn into_records(self) -> Vec<DecisionRecord> {
        self.records
    }
}

impl DecisionSink for VecDecisionSink {
    fn record(&mut self, record: &DecisionRecord) {
        self.records.push(record.clone());
    }
}

/// A sink writing one decision per line (JSONL), deterministic bytes,
/// I/O errors latched (mirror of [`crate::sink::JsonlSink`]). Files
/// opened with [`JsonlDecisionSink::create`] start with a
/// `{"Schema":{"stream":"decisions",...}}` header record.
#[derive(Debug)]
pub struct JsonlDecisionSink<W: Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
    failed: bool,
}

impl JsonlDecisionSink<BufWriter<File>> {
    /// Opens (truncating) `path` and writes the schema header.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut sink = Self::new(BufWriter::new(File::create(path)?));
        sink.write_line(
            &serde_json::to_string(&StreamHeader::decisions()).expect("header serializes"),
        );
        sink.lines = 0; // the header is metadata, not a record
        Ok(sink)
    }
}

impl<W: Write> JsonlDecisionSink<W> {
    /// Wraps an arbitrary writer (no header written).
    pub fn new(out: W) -> Self {
        Self {
            out,
            lines: 0,
            error: None,
            failed: false,
        }
    }

    /// Records successfully written so far (the header not counted).
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// True once any write or flush has failed; further records are
    /// dropped.
    pub fn write_failed(&self) -> bool {
        self.failed
    }

    /// Takes the latched I/O error, if any; the sink stays failed.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    fn write_line(&mut self, line: &str) {
        if self.failed {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
            self.failed = true;
            return;
        }
        self.lines += 1;
    }

    /// Flushes and returns the writer, or the first latched I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write or flush error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> DecisionSink for JsonlDecisionSink<W> {
    fn record(&mut self, record: &DecisionRecord) {
        let line = serde_json::to_string(record).expect("decision records always serialize");
        self.write_line(&line);
    }

    fn flush(&mut self) {
        if !self.failed {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
                self.failed = true;
            }
        }
    }
}

/// A decision log parsed tolerantly (mirror of
/// [`crate::sink::ParsedLog`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDecisions {
    /// Every successfully parsed record, in log order.
    pub records: Vec<DecisionRecord>,
    /// The unparseable final line of a truncated log, verbatim.
    pub torn_tail: Option<String>,
    /// Well-formed JSON lines that are not known decision records
    /// (logs from a newer engine); skipped, not fatal.
    pub unknown_records: u64,
    /// The schema header's version; `None` for headerless v0 logs.
    pub schema_version: Option<u32>,
}

/// Parses a decision JSONL log, tolerating a torn final record, a
/// missing (v0) schema header, and unknown record shapes from newer
/// engines.
///
/// # Errors
///
/// Returns a message naming the offending line when a non-final line
/// is not valid JSON — mid-log corruption is never silently skipped.
pub fn parse_decisions_tolerant(text: &str) -> Result<ParsedDecisions, String> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut records = Vec::with_capacity(lines.len());
    let mut torn_tail = None;
    let mut unknown_records = 0;
    let mut schema_version = None;
    let last = lines.len().saturating_sub(1);
    for (k, (i, l)) in lines.iter().enumerate() {
        if let Ok(StreamHeader::Schema { stream, version }) = serde_json::from_str(l) {
            if schema_version.is_none() && stream == DECISION_STREAM {
                schema_version = Some(version);
            } else {
                unknown_records += 1;
            }
            continue;
        }
        match serde_json::from_str(l) {
            Ok(r) => records.push(r),
            Err(_) if serde_json::from_str::<serde::Value>(l).is_ok() => unknown_records += 1,
            Err(_) if k == last => torn_tail = Some((*l).to_string()),
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(ParsedDecisions {
        records,
        torn_tail,
        unknown_records,
        schema_version,
    })
}

impl StreamHeader {
    /// The header a decision log starts with.
    pub fn decisions() -> Self {
        StreamHeader::Schema {
            stream: DECISION_STREAM.to_string(),
            version: JSONL_SCHEMA_VERSION,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: u64) -> DecisionRecord {
        DecisionRecord {
            k,
            at: 1_000 * k,
            event: 3 * k,
            query: Some(k),
            worker: 0,
            state: Some(DecisionState {
                load_qps: 120.5,
                queued: 4,
                slack_ns: -2_000,
                live_workers: 3,
            }),
            regime: Some("gt120qps".to_string()),
            candidates: vec![CandidateAction {
                model: 2,
                batch: 4,
                expected_slack_ns: 7_500_000,
                value: 0.761,
            }],
            chosen: ChosenAction::Serve { model: 2, batch: 4 },
            effective: None,
            reason: ReasonCode::PolicyLookup,
        }
    }

    #[test]
    fn records_round_trip_deterministically() {
        let variants = vec![
            rec(0),
            DecisionRecord {
                query: None,
                state: None,
                regime: None,
                candidates: Vec::new(),
                chosen: ChosenAction::Idle,
                reason: ReasonCode::Fallback,
                ..rec(1)
            },
            DecisionRecord {
                chosen: ChosenAction::Shed { count: 2 },
                reason: ReasonCode::Shed,
                ..rec(2)
            },
            DecisionRecord {
                chosen: ChosenAction::Hedge {
                    model: 1,
                    batch: 2,
                    target: 5,
                },
                reason: ReasonCode::Hedge,
                ..rec(3)
            },
            DecisionRecord {
                chosen: ChosenAction::Retry {
                    attempt: 2,
                    delay_ns: 5_000_000,
                },
                reason: ReasonCode::Retry,
                ..rec(4)
            },
            DecisionRecord {
                chosen: ChosenAction::Serve { model: 3, batch: 1 },
                effective: Some(ChosenAction::Serve { model: 0, batch: 1 }),
                reason: ReasonCode::DegradedRung,
                ..rec(5)
            },
        ];
        for r in &variants {
            let json = serde_json::to_string(r).unwrap();
            let back: DecisionRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, r, "{json}");
            assert_eq!(json, serde_json::to_string(&back).unwrap());
        }
    }

    #[test]
    fn reason_names_are_unique_and_stable() {
        let all = [
            ReasonCode::PolicyLookup,
            ReasonCode::Fallback,
            ReasonCode::DegradedRung,
            ReasonCode::Hedge,
            ReasonCode::Retry,
            ReasonCode::Shed,
        ];
        let names: Vec<&str> = all.iter().map(|r| r.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert_eq!(names[0], "policy_lookup");
    }

    #[test]
    fn null_sink_is_disabled_and_vec_sink_keeps_order() {
        let mut null = NullDecisionSink;
        assert!(!null.enabled());
        null.record(&rec(0));
        let mut v = VecDecisionSink::new();
        assert!(v.enabled());
        for k in 0..4 {
            v.record(&rec(k));
        }
        let ks: Vec<u64> = v.records().iter().map(|r| r.k).collect();
        assert_eq!(ks, [0, 1, 2, 3]);
        assert_eq!(v.into_records().len(), 4);
    }

    #[test]
    fn jsonl_writes_header_and_round_trips() {
        let mut sink = JsonlDecisionSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        // Headerless (v0) text parses with no version.
        let parsed = parse_decisions_tolerant(&text).unwrap();
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.schema_version, None);
        // With the header prepended, the version is surfaced.
        let header = serde_json::to_string(&StreamHeader::decisions()).unwrap();
        let v1 = format!("{header}\n{text}");
        let parsed = parse_decisions_tolerant(&v1).unwrap();
        assert_eq!(parsed.records.len(), 2);
        assert_eq!(parsed.schema_version, Some(JSONL_SCHEMA_VERSION));
        assert_eq!(parsed.unknown_records, 0);
        assert_eq!(parsed.torn_tail, None);
    }

    #[test]
    fn tolerant_parse_reports_tears_and_unknowns() {
        let good = serde_json::to_string(&rec(7)).unwrap();
        let text = format!("{good}\n{{\"FutureDecisionKind\":1}}\n{{\"k\":9,\"at");
        let parsed = parse_decisions_tolerant(&text).unwrap();
        assert_eq!(parsed.records, vec![rec(7)]);
        assert_eq!(parsed.unknown_records, 1);
        assert!(parsed.torn_tail.is_some());
        // Mid-log garbage is real corruption.
        let bad = format!("{good}\nnot json\n{good}\n");
        assert!(parse_decisions_tolerant(&bad)
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn create_writes_schema_header_first() {
        let dir = std::env::temp_dir().join(format!("ramsis-dec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("decisions.jsonl");
        let mut sink = JsonlDecisionSink::create(&path).unwrap();
        sink.record(&rec(0));
        assert_eq!(sink.lines(), 1, "header is not a record");
        drop(sink.finish().unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"Schema\":"), "{text}");
        let parsed = parse_decisions_tolerant(&text).unwrap();
        assert_eq!(parsed.schema_version, Some(JSONL_SCHEMA_VERSION));
        assert_eq!(parsed.records, vec![rec(0)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
