//! Summary statistics for profiling and metrics collection.
//!
//! The profiler reduces 100 latency samples per (model, batch size) to a
//! 95th percentile (paper Figs. 3 and 9); the simulator reports accuracy
//! and violation-rate aggregates; and the load monitor of §6 tracks query
//! load as a moving average over a 500 ms window. This module provides
//! those primitives.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

// Hand-written deserialization: an empty accumulator holds the ±∞
// sentinels in `min`/`max`, which JSON cannot carry (non-finite floats
// serialize as null and read back as NaN). `count == 0` implies exactly
// those sentinels, so they are reconstructed rather than read — every
// reachable accumulator round-trips bit-exactly.
impl Deserialize for OnlineStats {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            v.field(name)
                .ok_or_else(|| DeError::missing_field("OnlineStats", name))
        };
        let count = u64::from_value(field("count")?)?;
        let (min, max) = if count == 0 {
            (f64::INFINITY, f64::NEG_INFINITY)
        } else {
            (
                f64::from_value(field("min")?)?,
                f64::from_value(field("max")?)?,
            )
        };
        Ok(Self {
            count,
            mean: f64::from_value(field("mean")?)?,
            m2: f64::from_value(field("m2")?)?,
            min,
            max,
        })
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact percentile calculator over a retained sample set.
///
/// Retains all pushed values; `percentile(p)` sorts lazily on demand.
/// Uses the *nearest-rank* definition (`ceil(p/100 · n)`-th smallest),
/// matching the artifact's "95th percentile of 100 invocations" usage.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Creates the sample set from existing values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Self {
            values,
            sorted: false,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile for `p ∈ [0, 100]`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or any sample is NaN.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must be in [0, 100], got {p}"
        );
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.values[rank.clamp(1, n) - 1])
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }
}

/// Fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo < hi,
            "histogram range must be non-empty, got [{lo}, {hi})"
        );
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records an observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Bucket counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Time-windowed event-rate estimator — the load monitor of paper §6.
///
/// Tracks query load as the number of arrivals over a sliding window
/// (500 ms in the paper, following [38, 57]), expressed in events per
/// second. Timestamps must be fed in non-decreasing order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: f64,
    events: VecDeque<f64>,
}

impl MovingAverage {
    /// Creates a monitor with the given window length in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive and finite.
    pub fn new(window: f64) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive and finite, got {window}"
        );
        Self {
            window,
            events: VecDeque::new(),
        }
    }

    /// Records an event at time `now` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the most recent recorded event.
    pub fn record(&mut self, now: f64) {
        if let Some(&last) = self.events.back() {
            assert!(
                now >= last,
                "events must be recorded in order: {now} < {last}"
            );
        }
        self.events.push_back(now);
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        while let Some(&front) = self.events.front() {
            if now - front > self.window {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Estimated event rate (events per second) as of time `now`.
    pub fn rate(&mut self, now: f64) -> f64 {
        self.evict(now);
        self.events.len() as f64 / self.window
    }

    /// Number of events currently inside the window.
    pub fn in_window(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut p = Percentiles::from_values((1..=100).map(|i| i as f64).collect());
        assert_eq!(p.percentile(95.0), Some(95.0));
        assert_eq!(p.percentile(99.0), Some(99.0));
        assert_eq!(p.percentile(100.0), Some(100.0));
        assert_eq!(p.percentile(0.0), Some(1.0));
        assert_eq!(p.percentile(50.0), Some(50.0));
    }

    #[test]
    fn percentiles_single_value() {
        let mut p = Percentiles::from_values(vec![42.0]);
        for q in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(p.percentile(q), Some(42.0));
        }
    }

    #[test]
    fn percentiles_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(95.0), None);
        assert_eq!(p.mean(), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn percentiles_rejects_out_of_range() {
        let mut p = Percentiles::from_values(vec![1.0]);
        let _ = p.percentile(101.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn moving_average_tracks_rate() {
        let mut m = MovingAverage::new(0.5);
        // 100 events over 1 second => steady state 50 in any 500 ms window.
        for i in 0..100 {
            m.record(i as f64 * 0.01);
        }
        let rate = m.rate(0.99);
        assert!((rate - 100.0).abs() <= 4.0, "rate={rate}");
        // After a long silence the window drains.
        assert_eq!(m.rate(10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn moving_average_rejects_time_travel() {
        let mut m = MovingAverage::new(1.0);
        m.record(5.0);
        m.record(4.0);
    }
}
