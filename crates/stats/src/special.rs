//! Special functions needed by the count distributions.
//!
//! Only a handful of functions are required — `ln Γ`, `ln k!`, the
//! regularized incomplete gamma (Poisson CDF), and `erf` (normal CDF) —
//! so they are implemented here rather than pulling in a special-function
//! crate. Accuracy targets are ~1e-13 relative error for `ln_gamma` and
//! ~1e-7 absolute for `erf`, which is far below the 1e-12 tail-mass
//! truncation used when building count tables.

/// Lanczos coefficients for `g = 7`, `n = 9` (Boost/GSL standard set).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`. Returns
/// `f64::INFINITY` at the poles (`x = 0, -1, -2, ...`) and `f64::NAN` for
/// other non-positive or non-finite inputs.
///
/// # Examples
///
/// ```
/// use ramsis_stats::special::ln_gamma;
/// // Γ(5) = 24.
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// // Γ(0.5) = sqrt(pi).
/// assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        // Poles at the non-positive integers; elsewhere use reflection.
        if x == x.floor() {
            return f64::INFINITY;
        }
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let reflected = std::f64::consts::PI / (std::f64::consts::PI * x).sin();
        return reflected.abs().ln() - ln_gamma(1.0 - x);
    }
    if x < 0.5 {
        let reflected = std::f64::consts::PI / (std::f64::consts::PI * x).sin();
        return reflected.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Size of the exact `ln k!` lookup table.
const LN_FACTORIAL_TABLE_LEN: usize = 256;

/// Precomputed `ln k!` for `k < 256`, filled on first use.
fn ln_factorial_table() -> &'static [f64; LN_FACTORIAL_TABLE_LEN] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; LN_FACTORIAL_TABLE_LEN]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0.0; LN_FACTORIAL_TABLE_LEN];
        let mut acc = 0.0f64;
        for (k, slot) in t.iter_mut().enumerate() {
            if k > 0 {
                acc += (k as f64).ln();
            }
            *slot = acc;
        }
        t
    })
}

/// Natural logarithm of the factorial, `ln k!`.
///
/// Exact (accumulated in `f64`) for `k < 256`, `ln Γ(k + 1)` beyond.
///
/// # Examples
///
/// ```
/// use ramsis_stats::special::ln_factorial;
/// assert_eq!(ln_factorial(0), 0.0);
/// assert!((ln_factorial(4) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(k: u64) -> f64 {
    if (k as usize) < LN_FACTORIAL_TABLE_LEN {
        ln_factorial_table()[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Error function `erf(x)`, accurate to ~1.5e-7 (Abramowitz & Stegun 7.1.26).
///
/// Used only for the truncated-normal latency sampler and normal-tail
/// bounds, where single-precision accuracy is ample.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0`, `x ≥ 0`.
///
/// Computed by series expansion for `x < a + 1` and continued fraction
/// otherwise (Numerical Recipes `gammp`). The Poisson CDF is
/// `P(X ≤ k) = Q(k + 1, μ) = 1 − P(k + 1, μ)`.
///
/// # Panics
///
/// Panics if `a ≤ 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x), then complement.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Stable `ln(exp(a) + exp(b))`.
pub fn ln_add_exp(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for k in 1u32..20 {
            fact *= k as f64;
            let rel = (ln_gamma(k as f64 + 1.0) - fact.ln()).abs() / fact.ln().max(1.0);
            assert!(rel < 1e-13, "k={k} rel={rel}");
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-12);
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < 1e-12);
        assert!((ln_gamma(2.5) - (3.0 * sqrt_pi / 4.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_poles_and_nan() {
        assert_eq!(ln_gamma(0.0), f64::INFINITY);
        assert_eq!(ln_gamma(-3.0), f64::INFINITY);
        assert!(ln_gamma(f64::NAN).is_nan());
    }

    #[test]
    fn ln_gamma_reflection() {
        // Γ(−0.5) = −2√π.
        let expected = (2.0 * std::f64::consts::PI.sqrt()).ln();
        assert!((ln_gamma(-0.5) - expected).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_table_and_tail_agree() {
        for k in [200u64, 255, 256, 300, 10_000] {
            let via_gamma = ln_gamma(k as f64 + 1.0);
            let via_fn = ln_factorial(k);
            let rel = (via_fn - via_gamma).abs() / via_gamma;
            assert!(rel < 1e-12, "k={k} rel={rel}");
        }
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [0.1f64, 0.5, 1.0, 2.0, 3.5] {
            let s = normal_cdf(x) + normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-10, "x={x} sum={s}");
        }
    }

    #[test]
    fn reg_lower_gamma_is_poisson_cdf() {
        // P(X <= k) for Poisson(mu) equals 1 - P(k+1, mu).
        let mu = 4.2f64;
        let mut cdf = 0.0;
        let mut ln_pmf = -mu; // k = 0 term.
        for k in 0u64..15 {
            if k > 0 {
                ln_pmf = k as f64 * mu.ln() - mu - ln_factorial(k);
            }
            cdf += ln_pmf.exp();
            let via_gamma = 1.0 - reg_lower_gamma(k as f64 + 1.0, mu);
            assert!((cdf - via_gamma).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn reg_lower_gamma_limits() {
        assert_eq!(reg_lower_gamma(3.0, 0.0), 0.0);
        assert!((reg_lower_gamma(1.0, 50.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn reg_lower_gamma_rejects_bad_a() {
        let _ = reg_lower_gamma(0.0, 1.0);
    }

    #[test]
    fn ln_add_exp_matches_direct() {
        for (a, b) in [
            (0.0f64, 0.0f64),
            (-1.0, -2.0),
            (-700.0, -701.0),
            (3.0, -4.0),
        ] {
            let direct = (a.exp() + b.exp()).ln();
            assert!((ln_add_exp(a, b) - direct).abs() < 1e-10);
        }
        assert_eq!(ln_add_exp(f64::NEG_INFINITY, -1.0), -1.0);
    }
}
