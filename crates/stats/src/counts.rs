//! Arrival-count distributions `PF(k, T)` and truncated count tables.
//!
//! The RAMSIS problem model (paper §3.1.1) is parameterized by a *query
//! arrival distribution* `PF(k, T)`: the probability of `k` arrivals at
//! the central queue during an interval of length `T`. The transition
//! probabilities of §4.4 assume the process has *independent and
//! stationary increments*, so the joint probability over non-overlapping
//! intervals factors into products of `PF` terms. Both processes provided
//! here satisfy that property: the Poisson process (the paper's
//! experimental choice) and the negative-binomial Lévy process (an
//! over-dispersed alternative, standing in for the paper's "e.g. the
//! Gamma distribution could be used" remark).
//!
//! Because transition construction evaluates `PF` over many contiguous
//! `k` ranges, the primary interface is [`CountTable`]: a truncated pmf
//! with precomputed cumulative sums supporting O(1) range-mass queries.

use serde::{Deserialize, Serialize};

use crate::special::{ln_factorial, ln_gamma};

/// A stationary, independent-increment arrival process at the central queue.
///
/// Implementors define the count distribution `PF(k, T)` of paper §3.1.1.
/// All durations are in seconds.
pub trait ArrivalProcess: Send + Sync {
    /// Mean arrival rate in queries per second.
    fn rate(&self) -> f64;

    /// Natural log of `PF(k, t)`; `-inf` where the pmf is zero.
    fn ln_pf(&self, k: u64, t: f64) -> f64;

    /// Variance of the count over an interval of length `t`.
    fn count_variance(&self, t: f64) -> f64;

    /// Human-readable process name (for reports and serialized policies).
    fn name(&self) -> &'static str;

    /// `PF(k, t)` in linear space.
    fn pf(&self, k: u64, t: f64) -> f64 {
        self.ln_pf(k, t).exp()
    }

    /// Mean count over an interval of length `t`.
    fn count_mean(&self, t: f64) -> f64 {
        self.rate() * t
    }

    /// Builds a truncated count table for interval length `t`.
    ///
    /// The table covers every `k` whose excluded tail mass is below
    /// `tail_eps` on each side (so total truncated mass ≤ `2·tail_eps`
    /// up to the Gaussian tail bound used to pick the window).
    fn table(&self, t: f64, tail_eps: f64) -> CountTable {
        CountTable::build(self, t, tail_eps)
    }
}

/// The Poisson arrival process — the paper's experimental choice
/// (§3.1.1, citing [17, 37, 38, 54, 57]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a Poisson process with the given arrival rate (QPS).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or non-finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "Poisson rate must be finite and non-negative, got {rate}"
        );
        Self { rate }
    }

    /// Alias of [`Self::new`] reading naturally at call sites
    /// (`PoissonProcess::per_second(400.0)`).
    pub fn per_second(rate: f64) -> Self {
        Self::new(rate)
    }
}

impl ArrivalProcess for PoissonProcess {
    fn rate(&self) -> f64 {
        self.rate
    }

    fn ln_pf(&self, k: u64, t: f64) -> f64 {
        let mu = self.rate * t;
        if mu <= 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        k as f64 * mu.ln() - mu - ln_factorial(k)
    }

    fn count_variance(&self, t: f64) -> f64 {
        self.rate * t
    }

    fn name(&self) -> &'static str {
        "poisson"
    }
}

/// A negative-binomial Lévy arrival process: over-dispersed counts with
/// variance-to-mean ratio `dispersion > 1`.
///
/// The NB Lévy process is a compound Poisson process (logarithmic jump
/// sizes), so it has independent stationary increments as §4.4 requires.
/// The count over an interval of length `t` is
/// `NB(r = λ·t / (c − 1), p = 1/c)` where `c` is the dispersion, giving
/// mean `λ·t` and variance `c·λ·t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NegativeBinomialProcess {
    rate: f64,
    dispersion: f64,
}

impl NegativeBinomialProcess {
    /// Creates an over-dispersed process with the given rate (QPS) and
    /// variance-to-mean ratio.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative/non-finite or `dispersion ≤ 1`.
    pub fn new(rate: f64, dispersion: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rate must be finite and non-negative, got {rate}"
        );
        assert!(
            dispersion.is_finite() && dispersion > 1.0,
            "dispersion must exceed 1 (use PoissonProcess for 1), got {dispersion}"
        );
        Self { rate, dispersion }
    }

    /// The variance-to-mean ratio.
    pub fn dispersion(&self) -> f64 {
        self.dispersion
    }
}

impl ArrivalProcess for NegativeBinomialProcess {
    fn rate(&self) -> f64 {
        self.rate
    }

    fn ln_pf(&self, k: u64, t: f64) -> f64 {
        let mu = self.rate * t;
        if mu <= 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        let p = 1.0 / self.dispersion;
        let r = mu / (self.dispersion - 1.0);
        ln_gamma(k as f64 + r) - ln_gamma(r) - ln_factorial(k)
            + k as f64 * (1.0 - p).ln()
            + r * p.ln()
    }

    fn count_variance(&self, t: f64) -> f64 {
        self.dispersion * self.rate * t
    }

    fn name(&self) -> &'static str {
        "negative-binomial"
    }
}

/// A truncated arrival-count pmf over one interval length, with cumulative
/// sums for O(1) range-mass queries.
///
/// Counts outside the stored window carry (numerically) zero mass; queries
/// there return 0 for the pmf, and the CDF saturates at the stored mass.
#[derive(Debug, Clone, PartialEq)]
pub struct CountTable {
    /// First count with stored mass.
    offset: u64,
    /// `pmf[i]` is `PF(offset + i, t)`.
    pmf: Vec<f64>,
    /// `cum[i] = Σ_{j ≤ i} pmf[j]`.
    cum: Vec<f64>,
    /// Interval length the table was built for.
    interval: f64,
}

impl CountTable {
    /// Builds the table for `process` over an interval of length `t`.
    ///
    /// The window is `mean ± (z·σ + 40)` with `z` chosen from `tail_eps`
    /// by a Gaussian tail bound; the additive constant covers the
    /// small-mean regime where the Gaussian approximation is loose.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite, or `tail_eps` is not in
    /// `(0, 0.5)`.
    pub fn build(process: &(impl ArrivalProcess + ?Sized), t: f64, tail_eps: f64) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "interval must be non-negative, got {t}"
        );
        assert!(
            tail_eps > 0.0 && tail_eps < 0.5,
            "tail_eps must be in (0, 0.5), got {tail_eps}"
        );
        let mean = process.count_mean(t);
        if mean <= 0.0 {
            // Zero-length interval (or zero rate): exactly zero arrivals.
            return Self {
                offset: 0,
                pmf: vec![1.0],
                cum: vec![1.0],
                interval: t,
            };
        }
        let sigma = process.count_variance(t).sqrt();
        // Inverse Gaussian tail: eps = exp(-z^2 / 2) / 2 => z = sqrt(-2 ln(2 eps)).
        let z = (-2.0 * (2.0 * tail_eps).ln()).sqrt();
        let half_width = z * sigma + 40.0;
        let lo = (mean - half_width).floor().max(0.0) as u64;
        let hi = (mean + half_width).ceil() as u64;
        let len = (hi - lo + 1) as usize;
        let mut pmf = Vec::with_capacity(len);
        let mut cum = Vec::with_capacity(len);
        let mut acc = 0.0;
        for k in lo..=hi {
            let p = process.pf(k, t);
            acc += p;
            pmf.push(p);
            cum.push(acc);
        }
        Self {
            offset: lo,
            pmf,
            cum,
            interval: t,
        }
    }

    /// The interval length this table was built for.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Smallest count with stored mass.
    pub fn min_count(&self) -> u64 {
        self.offset
    }

    /// Largest count with stored mass.
    pub fn max_count(&self) -> u64 {
        self.offset + (self.pmf.len() as u64 - 1)
    }

    /// Total stored probability mass (≈ 1 up to the truncation tolerance).
    pub fn total_mass(&self) -> f64 {
        *self.cum.last().expect("table is never empty")
    }

    /// `PF(k, t)`; zero outside the stored window.
    pub fn pmf(&self, k: u64) -> f64 {
        if k < self.offset {
            return 0.0;
        }
        self.pmf
            .get((k - self.offset) as usize)
            .copied()
            .unwrap_or(0.0)
    }

    /// `P(X ≤ k)`; zero below the window, saturating above it.
    pub fn cdf(&self, k: u64) -> f64 {
        if k < self.offset {
            return 0.0;
        }
        let i = (k - self.offset) as usize;
        if i >= self.cum.len() {
            self.total_mass()
        } else {
            self.cum[i]
        }
    }

    /// Probability mass on the inclusive count range `[lo, hi]`.
    ///
    /// Returns 0 when `lo > hi` (empty range), which the transition
    /// builder relies on for vacuous interval constraints.
    pub fn mass_in(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let upper = self.cdf(hi);
        let lower = if lo == 0 { 0.0 } else { self.cdf(lo - 1) };
        (upper - lower).max(0.0)
    }

    /// Iterates over `(k, PF(k, t))` pairs with non-negligible mass,
    /// clipped to the inclusive range `[lo, hi]`.
    pub fn iter_range(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u64, f64)> + '_ {
        let start = lo.max(self.offset);
        let end = hi.min(self.max_count());
        let idx0 = (start.saturating_sub(self.offset)) as usize;
        let take = if start > end {
            0
        } else {
            (end - start + 1) as usize
        };
        self.pmf[..]
            .iter()
            .enumerate()
            .skip(idx0)
            .take(take)
            .map(move |(i, &p)| (self.offset + i as u64, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_pmf_naive(k: u64, mu: f64) -> f64 {
        // Direct product form, valid for small k and mu.
        let mut p = (-mu).exp();
        for i in 1..=k {
            p *= mu / i as f64;
        }
        p
    }

    #[test]
    fn poisson_pf_matches_naive() {
        let p = PoissonProcess::new(50.0);
        for k in 0u64..30 {
            let naive = poisson_pmf_naive(k, 50.0 * 0.1);
            assert!((p.pf(k, 0.1) - naive).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn poisson_zero_interval_is_degenerate() {
        let p = PoissonProcess::new(100.0);
        assert_eq!(p.pf(0, 0.0), 1.0);
        assert_eq!(p.pf(3, 0.0), 0.0);
    }

    #[test]
    fn poisson_large_mean_is_stable() {
        // 4,000 QPS over 500 ms: mean 2,000 — must not overflow/underflow
        // around the mode.
        let p = PoissonProcess::new(4_000.0);
        let at_mode = p.pf(2_000, 0.5);
        assert!(at_mode > 0.0 && at_mode < 1.0);
        // Rough Stirling check: pmf at mode ≈ 1/sqrt(2 pi mu).
        let stirling = 1.0 / (2.0 * std::f64::consts::PI * 2_000.0).sqrt();
        assert!((at_mode - stirling).abs() / stirling < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn poisson_rejects_negative_rate() {
        let _ = PoissonProcess::new(-1.0);
    }

    #[test]
    fn negbin_mean_and_variance() {
        let p = NegativeBinomialProcess::new(200.0, 3.0);
        let t = 0.25;
        let table = p.table(t, 1e-12);
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (k, q) in table.iter_range(0, table.max_count()) {
            mean += k as f64 * q;
            m2 += (k as f64) * (k as f64) * q;
        }
        let var = m2 - mean * mean;
        assert!((mean - 50.0).abs() < 0.01, "mean={mean}");
        assert!((var - 150.0).abs() < 0.5, "var={var}");
    }

    #[test]
    #[should_panic(expected = "dispersion must exceed 1")]
    fn negbin_rejects_unit_dispersion() {
        let _ = NegativeBinomialProcess::new(10.0, 1.0);
    }

    #[test]
    fn table_mass_is_complete() {
        for rate in [0.5f64, 10.0, 500.0, 4_000.0] {
            for t in [0.001f64, 0.05, 0.5] {
                let table = PoissonProcess::new(rate).table(t, 1e-12);
                let defect = (1.0 - table.total_mass()).abs();
                assert!(defect < 1e-9, "rate={rate} t={t} defect={defect}");
            }
        }
    }

    #[test]
    fn table_degenerate_zero_interval() {
        let table = PoissonProcess::new(1_000.0).table(0.0, 1e-12);
        assert_eq!(table.pmf(0), 1.0);
        assert_eq!(table.pmf(1), 0.0);
        assert_eq!(table.mass_in(0, 0), 1.0);
        assert_eq!(table.mass_in(1, 10), 0.0);
    }

    #[test]
    fn table_mass_in_matches_sum() {
        let table = PoissonProcess::new(300.0).table(0.1, 1e-12);
        let (lo, hi) = (20u64, 40u64);
        let direct: f64 = (lo..=hi).map(|k| table.pmf(k)).sum();
        assert!((table.mass_in(lo, hi) - direct).abs() < 1e-12);
        // Empty and out-of-window ranges.
        assert_eq!(table.mass_in(10, 5), 0.0);
        assert!(table.mass_in(0, 1) < 1e-9);
    }

    #[test]
    fn table_cdf_is_monotone() {
        let table = PoissonProcess::new(123.0).table(0.07, 1e-12);
        let mut prev = 0.0;
        for k in 0..=table.max_count() + 5 {
            let c = table.cdf(k);
            assert!(c >= prev - 1e-15, "k={k}");
            prev = c;
        }
        assert!((prev - table.total_mass()).abs() < 1e-15);
    }

    #[test]
    fn iter_range_clips() {
        let table = PoissonProcess::new(100.0).table(0.1, 1e-12);
        let n_all = table.iter_range(0, u64::MAX).count();
        assert_eq!(n_all, (table.max_count() - table.min_count() + 1) as usize);
        assert_eq!(table.iter_range(5, 4).count(), 0);
        let window: Vec<_> = table.iter_range(8, 12).collect();
        assert!(window.len() <= 5);
        for (k, p) in window {
            assert!((8..=12).contains(&k));
            assert_eq!(p, table.pmf(k));
        }
    }

    #[test]
    fn poisson_increments_convolve() {
        // Independent increments: PF(k, t1 + t2) = Σ_j PF(j, t1) PF(k − j, t2).
        let p = PoissonProcess::new(40.0);
        let (t1, t2) = (0.03, 0.07);
        for k in 0u64..12 {
            let direct = p.pf(k, t1 + t2);
            let conv: f64 = (0..=k).map(|j| p.pf(j, t1) * p.pf(k - j, t2)).sum();
            assert!((direct - conv).abs() < 1e-12, "k={k}");
        }
    }
}
