//! Streaming (constant-memory) metric primitives for hot paths.
//!
//! The simulator originally kept *every* response-time sample in a
//! [`crate::Percentiles`] vector and sorted it at report time — fine
//! for a 30-second run, hostile to the production north-star where a
//! single run completes millions of queries. This module provides the
//! replacements: a [`Counter`], a [`Gauge`], and a log-bucketed
//! [`LogHistogram`] in the spirit of HdrHistogram — bounded memory,
//! O(1) record, mergeable snapshots, and percentiles with a known
//! relative error. A [`MetricsRegistry`] bundles named instances for
//! ad-hoc aggregation (the CLI's trace renderer uses one).
//!
//! Everything here is deterministic: no wall clock, no randomness, and
//! identical inputs produce identical serialized snapshots.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Number of sub-bucket bits: each power-of-two range is split into
/// `2^SUB_BITS` equal-width buckets, bounding the relative error of any
/// recorded value (and hence any percentile) by `2^-(SUB_BITS + 1)`
/// with midpoint representatives — under 0.8%.
const SUB_BITS: u32 = 6;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Bucket-array length covering the full `u64` range: the first
/// `2^SUB_BITS` values exactly, then one doubling range of `2^SUB_BITS`
/// sub-buckets per mantissa shift (shift runs 0..=63 − SUB_BITS).
const N_BUCKETS: usize = (SUB_COUNT + (64 - SUB_BITS as u64) * SUB_COUNT) as usize;

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Folds another counter in.
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Gauge(f64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self(0.0)
    }

    /// Sets the current value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Log-bucketed histogram over `u64` values (HdrHistogram-style).
///
/// Values below `2^6` are recorded exactly; above that each
/// power-of-two range is split into 64 sub-buckets, so any percentile
/// is reported with relative error below `2^-7 ≈ 0.8%`. Memory is a
/// fixed ~30 KB regardless of the number of observations, `record` is
/// O(1), and two histograms [`merge`](Self::merge) by bucket-wise
/// addition — partial runs aggregate without re-observing anything.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUB_COUNT {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        let mantissa = (v >> shift) - SUB_COUNT;
        (SUB_COUNT as u32 + shift * SUB_COUNT as u32 + mantissa as u32) as usize
    }

    /// The value range bucket `i` covers, as `(lo, width)` — the top
    /// bucket's exclusive end would overflow `u64`.
    fn bucket_range(i: usize) -> (u64, u64) {
        let i = i as u64;
        if i < SUB_COUNT {
            return (i, 1);
        }
        let shift = (i - SUB_COUNT) / SUB_COUNT;
        let mantissa = SUB_COUNT + (i - SUB_COUNT) % SUB_COUNT;
        (mantissa << shift, 1 << shift)
    }

    /// Midpoint representative of bucket `i`.
    fn bucket_mid(i: usize) -> u64 {
        let (lo, width) = Self::bucket_range(i);
        lo + width / 2
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded values (sums are kept exactly);
    /// 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank percentile for `p ∈ [0, 100]`, reported as the
    /// containing bucket's midpoint (exact below 64; relative error
    /// < 0.8% above). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&p),
            "percentile must be in [0, 100], got {p}"
        );
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        // The extremes are tracked exactly; report them as such.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp into the truly observed range so p0/p100 are
                // exact and representatives never overshoot.
                return Some(Self::bucket_mid(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds another histogram in (bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket_midpoint, count)` pairs, in value
    /// order — the mergeable snapshot the exporters serialize.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_mid(i), c))
            .collect()
    }
}

// Sparse hand-written serialization: only non-zero buckets travel, as
// `(index, count)` pairs, and the exact u128 sum is split into two u64
// halves (the vendored serde stand-in's data model has no u128).
impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<(u32, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect();
        Value::Object(vec![
            ("buckets".to_owned(), buckets.to_value()),
            ("sum_hi".to_owned(), ((self.sum >> 64) as u64).to_value()),
            ("sum_lo".to_owned(), (self.sum as u64).to_value()),
            ("min".to_owned(), self.min.to_value()),
            ("max".to_owned(), self.max.to_value()),
        ])
    }
}

impl Deserialize for LogHistogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            v.field(name)
                .ok_or_else(|| DeError::missing_field("LogHistogram", name))
        };
        let buckets = Vec::<(u32, u64)>::from_value(field("buckets")?)?;
        let mut h = LogHistogram::new();
        for (i, c) in buckets {
            let i = i as usize;
            if i >= N_BUCKETS {
                return Err(DeError(format!(
                    "LogHistogram: bucket index {i} out of range"
                )));
            }
            h.counts[i] = c;
            h.count += c;
        }
        let hi = u64::from_value(field("sum_hi")?)?;
        let lo = u64::from_value(field("sum_lo")?)?;
        h.sum = ((hi as u128) << 64) | lo as u128;
        h.min = u64::from_value(field("min")?)?;
        h.max = u64::from_value(field("max")?)?;
        Ok(h)
    }
}

/// A named bundle of counters, gauges, and histograms.
///
/// Keys are `BTreeMap`-ordered so iteration (and serialization) order
/// is deterministic. Two registries from parallel shards merge
/// key-wise.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created zeroed on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_owned()).or_default()
    }

    /// The gauge named `name`, created zeroed on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_owned()).or_default()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut LogHistogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Counter value, 0 when absent (read-only lookup).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry key-wise (counters add, gauges take the
    /// other's value when present, histograms merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(63));
        // Every percentile lands exactly on a recorded small value.
        for p in [1.0f64, 25.0, 50.0, 75.0, 100.0] {
            let rank = ((p / 100.0) * 64.0).ceil() as u64;
            assert_eq!(h.percentile(p), Some(rank - 1), "p={p}");
        }
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        // Log-spaced values spanning nine decades.
        let mut h = LogHistogram::new();
        let mut exact: Vec<u64> = Vec::new();
        let mut v = 1u64;
        while v < 1_000_000_000 {
            h.record(v);
            exact.push(v);
            v = (v as f64 * 1.37).ceil() as u64;
        }
        for p in [5.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let rank = (((p / 100.0) * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let want = exact[rank - 1] as f64;
            let got = h.percentile(p).unwrap() as f64;
            let rel = (got - want).abs() / want;
            assert!(
                rel < 1.0 / 128.0,
                "p={p}: got {got}, exact {want}, rel {rel}"
            );
        }
    }

    #[test]
    fn mean_is_exact_and_percentiles_monotone() {
        let mut h = LogHistogram::new();
        let mut sum = 0u64;
        for i in 1..=10_000u64 {
            let v = i * 977;
            h.record(v);
            sum += v;
        }
        assert!((h.mean() - sum as f64 / 10_000.0).abs() < 1e-6);
        let mut last = 0;
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= last, "p={p}: {v} < {last}");
            last = v;
        }
        assert_eq!(h.percentile(100.0), Some(h.max().unwrap()));
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn rejects_out_of_range_percentile() {
        let _ = LogHistogram::new().percentile(101.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let values: Vec<u64> = (0..5_000u64).map(|i| (i * i) % 777_777 + 1).collect();
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for &v in &values {
            all.record(v);
        }
        for &v in &values[..1_234] {
            a.record(v);
        }
        for &v in &values[1_234..] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.percentile(95.0), all.percentile(95.0));
    }

    #[test]
    fn serde_round_trip_is_lossless() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 63, 64, 1_000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
        // Identical inputs give identical bytes (determinism contract).
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn p0_and_p100_are_exact_tracked_extremes() {
        // The extreme quantiles must bypass bucket midpoints entirely:
        // whatever was recorded, p0 is the exact min and p100 the exact
        // max, even when both land mid-bucket.
        let mut h = LogHistogram::new();
        for v in [1_000_003u64, 999_999_937, 17, 4_294_967_311] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(17));
        assert_eq!(h.percentile(100.0), Some(4_294_967_311));
        assert_eq!(h.percentile(0.0), h.min());
        assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn single_sample_answers_every_quantile_with_itself() {
        let mut h = LogHistogram::new();
        h.record(123_456_789);
        for p in [0.0, 0.1, 25.0, 50.0, 75.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), Some(123_456_789), "p={p}");
        }
        assert!((h.mean() - 123_456_789.0).abs() < 1e-6);
    }

    proptest::proptest! {
        /// Quantiles are monotone in q: for any observation set and any
        /// ordered pair of probabilities, percentile(p_lo) <=
        /// percentile(p_hi), and both stay within [min, max].
        #[test]
        fn percentiles_monotone_in_q(
            values in proptest::collection::vec(0u64..u64::MAX, 1..200),
            ps in proptest::collection::vec(0.0f64..100.0, 2..8),
        ) {
            // The generator's range is half-open; pin both endpoints so
            // the exact-extreme paths are exercised in every case.
            let mut ps = ps;
            ps.push(0.0);
            ps.push(100.0);
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record(v);
            }
            ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last = h.min().unwrap();
            for &p in &ps {
                let q = h.percentile(p).unwrap();
                proptest::prop_assert!(q >= last, "p={p}: {q} < {last}");
                proptest::prop_assert!(q >= h.min().unwrap() && q <= h.max().unwrap());
                last = q;
            }
        }
    }

    #[test]
    fn registry_named_metrics_and_merge() {
        let mut r = MetricsRegistry::new();
        r.counter("sheds").add(3);
        r.counter("sheds").inc();
        r.gauge("depth").set(4.5);
        r.histogram("latency").record(100);
        assert_eq!(r.counter_value("sheds"), 4);
        assert_eq!(r.counter_value("absent"), 0);
        assert_eq!(r.gauge("depth").get(), 4.5);

        let mut other = MetricsRegistry::new();
        other.counter("sheds").add(6);
        other.counter("drops").inc();
        other.histogram("latency").record(200);
        r.merge(&other);
        assert_eq!(r.counter_value("sheds"), 10);
        assert_eq!(r.counter_value("drops"), 1);
        assert_eq!(r.histogram("latency").count(), 2);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["drops", "sheds"]);
    }
}
