//! Random-variate samplers used by the workload generator and simulator.
//!
//! The workload crate samples query inter-arrival times (exponential for
//! Poisson traffic, gamma for the renewal-process alternative of §3.1.1),
//! and the simulator's "prototype implementation" mode samples stochastic
//! inference latencies from a truncated normal around each model's profile
//! mean (§7.3.1 reports a ~10 ms standard deviation). All samplers take a
//! generic [`rand::Rng`] so experiments are reproducible from a seed.

use rand::Rng;

/// Samples an exponential variate with the given rate (events per second).
///
/// Uses inversion on a `(0, 1]` uniform so the result is always finite
/// and strictly positive.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "exponential rate must be positive and finite, got {rate}"
    );
    // 1 − U is in (0, 1], avoiding ln(0).
    let u = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Samples a gamma variate with the given `shape` and `scale`.
///
/// Uses the Marsaglia–Tsang squeeze method for `shape ≥ 1` and the
/// boosting transformation `Γ(a) = Γ(a + 1) · U^{1/a}` for `shape < 1`.
///
/// # Panics
///
/// Panics if `shape` or `scale` is not strictly positive and finite.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive and finite, got {shape}"
    );
    assert!(
        scale.is_finite() && scale > 0.0,
        "gamma scale must be positive and finite, got {scale}"
    );
    if shape < 1.0 {
        // Boost: sample shape + 1 then multiply by U^{1/shape}.
        let boosted = sample_gamma(rng, shape + 1.0, scale);
        let u: f64 = 1.0 - rng.gen::<f64>();
        return boosted * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        // Squeeze test, then the full log test.
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v * scale;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v * scale;
        }
    }
}

/// Samples a standard normal variate via the polar Box–Muller method.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Samples a normal variate truncated to `[lo, hi]` by rejection.
///
/// Intended for mild truncation (the latency sampler truncates at a few
/// standard deviations), where rejection is efficient. Falls back to
/// clamping after 10,000 rejections so adversarial bounds cannot hang the
/// simulator.
///
/// # Panics
///
/// Panics if `sigma` is negative/non-finite or `lo > hi`.
pub fn sample_truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(
        sigma.is_finite() && sigma >= 0.0,
        "sigma must be non-negative and finite, got {sigma}"
    );
    assert!(
        lo <= hi,
        "truncation bounds must satisfy lo <= hi, got [{lo}, {hi}]"
    );
    if sigma == 0.0 {
        return mean.clamp(lo, hi);
    }
    for _ in 0..10_000 {
        let x = mean + sigma * sample_standard_normal(rng);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0x52414D_534953) // "RAMSIS"
    }

    const N: usize = 200_000;

    #[test]
    fn exponential_moments() {
        let mut rng = rng();
        let rate = 4.0;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..N {
            let x = sample_exponential(&mut rng, rate);
            assert!(x > 0.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / N as f64;
        let var = sq / N as f64 - mean * mean;
        assert!((mean - 0.25).abs() < 0.005, "mean={mean}");
        assert!((var - 0.0625).abs() < 0.005, "var={var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_rate() {
        let mut rng = rng();
        let _ = sample_exponential(&mut rng, 0.0);
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = rng();
        let (shape, scale) = (3.0, 2.0);
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..N {
            let x = sample_gamma(&mut rng, shape, scale);
            assert!(x > 0.0);
            sum += x;
            sq += x * x;
        }
        let mean = sum / N as f64;
        let var = sq / N as f64 - mean * mean;
        assert!((mean - 6.0).abs() < 0.05, "mean={mean}");
        assert!((var - 12.0).abs() < 0.4, "var={var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = rng();
        let (shape, scale) = (0.5, 1.0);
        let mut sum = 0.0;
        for _ in 0..N {
            sum += sample_gamma(&mut rng, shape, scale);
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng();
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..N {
            let x = sample_standard_normal(&mut rng);
            sum += x;
            sq += x * x;
        }
        let mean = sum / N as f64;
        let var = sq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = rng();
        for _ in 0..50_000 {
            let x = sample_truncated_normal(&mut rng, 0.1, 0.01, 0.05, 0.15);
            assert!((0.05..=0.15).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_zero_sigma_clamps() {
        let mut rng = rng();
        assert_eq!(sample_truncated_normal(&mut rng, 5.0, 0.0, 0.0, 1.0), 1.0);
        assert_eq!(sample_truncated_normal(&mut rng, 0.5, 0.0, 0.0, 1.0), 0.5);
    }

    #[test]
    fn truncated_normal_extreme_bounds_terminate() {
        let mut rng = rng();
        // Bounds 50 sigma away from the mean: rejection will never hit,
        // so the clamp fallback must kick in.
        let x = sample_truncated_normal(&mut rng, 0.0, 1.0, 50.0, 60.0);
        assert_eq!(x, 50.0);
    }
}
