//! Numerical substrate for the RAMSIS workspace.
//!
//! The RAMSIS MDP (paper §4.4) is built from an arrival-count distribution
//! `PF(k, T)` — the probability that `k` queries arrive at the central
//! queue during an interval of length `T`. Evaluating transition
//! probabilities requires `PF` at large counts (thousands of arrivals per
//! interval at 4,000 QPS), so every distribution here is computed in the
//! log domain via [`special::ln_gamma`] and exposed through truncated
//! [`counts::CountTable`]s with cumulative sums.
//!
//! The crate also provides the sampling primitives used by the workload
//! generator and simulator (exponential, gamma, truncated normal) and the
//! summary statistics (percentiles, Welford accumulators, windowed moving
//! averages) used by the metrics pipeline and the 500 ms load monitor.
//!
//! Everything is `std`-only, deterministic given a seeded RNG, and free of
//! `unsafe`.

pub mod counts;
pub mod sampling;
pub mod special;
pub mod streaming;
pub mod summary;

pub use counts::{ArrivalProcess, CountTable, NegativeBinomialProcess, PoissonProcess};
pub use sampling::{sample_exponential, sample_gamma, sample_truncated_normal};
pub use streaming::{Counter, Gauge, LogHistogram, MetricsRegistry};
pub use summary::{Histogram, MovingAverage, OnlineStats, Percentiles};
