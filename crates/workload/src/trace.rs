//! Piecewise-constant query-load traces.
//!
//! A [`Trace`] is a sequence of `(duration, QPS)` intervals — the load
//! signal the paper's experiments are driven by. The artifact stores its
//! five-minute Twitter trace as a text file with one average-QPS value
//! per ten-second interval (`twitter_trace/twitter_04_25_norm.txt`);
//! [`Trace::parse_artifact_text`] reads that format and
//! [`Trace::to_artifact_text`] writes it, so a real trace file can be
//! dropped in. Because the original archive is not redistributable here,
//! [`Trace::twitter_like`] synthesizes a trace with the same format,
//! length, load range (1,617–3,905 QPS), diurnal ramp, and spikes.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How a trace was produced — recorded in experiment outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Constant query load for a fixed duration (§7.2).
    Constant,
    /// The production-trace workload of §7.1 (real file or synthesized).
    Production,
    /// Anything user-supplied.
    Custom,
}

/// A piecewise-constant query-load signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    kind: TraceKind,
    /// `(interval length seconds, average QPS)` segments.
    segments: Vec<(f64, f64)>,
}

impl Trace {
    /// Artifact convention: one QPS sample per ten-second interval.
    pub const ARTIFACT_INTERVAL_S: f64 = 10.0;

    /// The QPS range of the paper's five-minute Twitter trace.
    pub const TWITTER_MIN_QPS: f64 = 1_617.0;
    /// See [`Self::TWITTER_MIN_QPS`].
    pub const TWITTER_MAX_QPS: f64 = 3_905.0;

    /// A constant-load trace (§7.2 uses 30-second windows).
    ///
    /// # Panics
    ///
    /// Panics if `qps` is negative or `duration_s` is not positive.
    pub fn constant(qps: f64, duration_s: f64) -> Self {
        assert!(
            qps >= 0.0 && qps.is_finite(),
            "QPS must be non-negative, got {qps}"
        );
        assert!(
            duration_s > 0.0 && duration_s.is_finite(),
            "duration must be positive, got {duration_s}"
        );
        Self {
            kind: TraceKind::Constant,
            segments: vec![(duration_s, qps)],
        }
    }

    /// Builds a trace from per-interval QPS samples of equal length.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, any sample is negative, or
    /// `interval_s` is not positive.
    pub fn from_interval_qps(samples: &[f64], interval_s: f64, kind: TraceKind) -> Self {
        assert!(!samples.is_empty(), "trace needs at least one interval");
        assert!(
            interval_s > 0.0,
            "interval must be positive, got {interval_s}"
        );
        for &q in samples {
            assert!(
                q >= 0.0 && q.is_finite(),
                "QPS must be non-negative, got {q}"
            );
        }
        Self {
            kind,
            segments: samples.iter().map(|&q| (interval_s, q)).collect(),
        }
    }

    /// Parses the artifact's text format: one average-QPS value per line,
    /// each describing a ten-second interval. Blank lines and `#`
    /// comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, or of an empty
    /// file.
    pub fn parse_artifact_text(text: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let q: f64 = line
                .parse()
                .map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
            if !(q.is_finite() && q >= 0.0) {
                return Err(format!(
                    "line {}: QPS must be non-negative, got {q}",
                    lineno + 1
                ));
            }
            samples.push(q);
        }
        if samples.is_empty() {
            return Err("trace file contains no samples".to_owned());
        }
        Ok(Self::from_interval_qps(
            &samples,
            Self::ARTIFACT_INTERVAL_S,
            TraceKind::Production,
        ))
    }

    /// Writes the trace back in the artifact's text format.
    ///
    /// Only valid for traces whose segments all have the artifact's
    /// ten-second length.
    ///
    /// # Panics
    ///
    /// Panics if any segment has a non-artifact interval length.
    pub fn to_artifact_text(&self) -> String {
        let mut out = String::new();
        for &(len, qps) in &self.segments {
            assert!(
                (len - Self::ARTIFACT_INTERVAL_S).abs() < 1e-9,
                "artifact format requires ten-second intervals, got {len}"
            );
            out.push_str(&format!("{qps}\n"));
        }
        out
    }

    /// Synthesizes a five-minute Twitter-like production trace.
    ///
    /// Thirty ten-second intervals whose loads follow a diurnal-style
    /// ramp with seeded jitter and occasional spikes, affinely mapped so
    /// the minimum and maximum exactly match the paper's 1,617 and 3,905
    /// QPS. Substitutes for the archived `twitter_04_25_norm.txt` (see
    /// DESIGN.md §2).
    pub fn twitter_like(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = 30;
        let mut shape = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / (n - 1) as f64;
            // Diurnal-style rise and fall compressed into the window.
            let diurnal = (std::f64::consts::PI * t).sin();
            // Random walk jitter.
            let jitter = rng.gen_range(-0.12..0.12);
            // Unexpected spikes (the trace "exhibits ... unexpected
            // spikes in query load", §7): ~10% of intervals jump.
            let spike = if rng.gen_bool(0.1) {
                rng.gen_range(0.2..0.45)
            } else {
                0.0
            };
            shape.push((diurnal + jitter + spike).clamp(0.0, 1.6));
        }
        // Affine map so min/max hit the paper's range exactly.
        let lo = shape.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = shape.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let samples: Vec<f64> = shape
            .iter()
            .map(|&s| {
                let t = (s - lo) / (hi - lo);
                (Self::TWITTER_MIN_QPS + t * (Self::TWITTER_MAX_QPS - Self::TWITTER_MIN_QPS))
                    .round()
            })
            .collect();
        let mut trace =
            Self::from_interval_qps(&samples, Self::ARTIFACT_INTERVAL_S, TraceKind::Production);
        trace.kind = TraceKind::Production;
        trace
    }

    /// How this trace was produced.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Total trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.segments.iter().map(|&(len, _)| len).sum()
    }

    /// The `(duration, QPS)` segments.
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }

    /// The load at time `t` (seconds); the last segment's load at or
    /// beyond the end, the first segment's before zero.
    pub fn qps_at(&self, t: f64) -> f64 {
        let mut acc = 0.0;
        for &(len, qps) in &self.segments {
            acc += len;
            if t < acc {
                return qps;
            }
        }
        self.segments.last().expect("trace is never empty").1
    }

    /// Minimum segment load.
    pub fn min_qps(&self) -> f64 {
        self.segments
            .iter()
            .map(|&(_, q)| q)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum segment load.
    pub fn max_qps(&self) -> f64 {
        self.segments
            .iter()
            .map(|&(_, q)| q)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Expected number of queries over the whole trace (`Σ len · qps`).
    pub fn expected_queries(&self) -> f64 {
        self.segments.iter().map(|&(len, q)| len * q).sum()
    }

    /// Compresses the trace in *time* by `factor`, keeping the loads:
    /// the paper's methodology for its production workload ("We scale
    /// the Twitter trace down to five minutes (from one day) for our
    /// experiments, as is done in prior work \[38\]", §7). A 24-hour trace
    /// compressed by 288 plays the same load curve in five minutes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn time_compressed(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compression factor must be positive, got {factor}"
        );
        Self {
            kind: self.kind,
            segments: self
                .segments
                .iter()
                .map(|&(len, q)| (len / factor, q))
                .collect(),
        }
    }

    /// Rescales every load by `factor` (e.g. to stress a configuration).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "scale factor must be non-negative, got {factor}"
        );
        Self {
            kind: self.kind,
            segments: self
                .segments
                .iter()
                .map(|&(len, q)| (len, q * factor))
                .collect(),
        }
    }

    /// Rescales the load by `factor` only inside `[from_s, to_s)`,
    /// splitting segments at the boundaries so loads outside the window
    /// are untouched (fault-injection arrival surges). The window is
    /// clipped to the trace; a window entirely outside it returns the
    /// trace unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite, or the window is
    /// inverted or non-finite.
    pub fn scaled_between(&self, from_s: f64, to_s: f64, factor: f64) -> Self {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "scale factor must be non-negative, got {factor}"
        );
        assert!(
            from_s.is_finite() && to_s.is_finite() && to_s > from_s,
            "need a finite window with from < to, got [{from_s}, {to_s})"
        );
        let mut segments = Vec::with_capacity(self.segments.len() + 2);
        let mut start = 0.0;
        for &(len, q) in &self.segments {
            let end = start + len;
            // Portion of this segment inside the surge window.
            let lo = from_s.max(start);
            let hi = to_s.min(end);
            if hi <= lo {
                segments.push((len, q));
            } else {
                if lo > start {
                    segments.push((lo - start, q));
                }
                segments.push((hi - lo, q * factor));
                if end > hi {
                    segments.push((end - hi, q));
                }
            }
            start = end;
        }
        Self {
            kind: self.kind,
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_basics() {
        let t = Trace::constant(400.0, 30.0);
        assert_eq!(t.kind(), TraceKind::Constant);
        assert_eq!(t.duration(), 30.0);
        assert_eq!(t.qps_at(0.0), 400.0);
        assert_eq!(t.qps_at(29.999), 400.0);
        assert_eq!(t.qps_at(31.0), 400.0);
        assert_eq!(t.expected_queries(), 12_000.0);
        assert_eq!(t.min_qps(), 400.0);
        assert_eq!(t.max_qps(), 400.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let _ = Trace::constant(400.0, 0.0);
    }

    #[test]
    fn qps_at_respects_boundaries() {
        let t = Trace::from_interval_qps(&[100.0, 200.0, 300.0], 10.0, TraceKind::Custom);
        assert_eq!(t.qps_at(0.0), 100.0);
        assert_eq!(t.qps_at(9.999), 100.0);
        assert_eq!(t.qps_at(10.0), 200.0);
        assert_eq!(t.qps_at(25.0), 300.0);
        assert_eq!(t.qps_at(100.0), 300.0);
    }

    #[test]
    fn twitter_like_matches_paper_envelope() {
        let t = Trace::twitter_like(7);
        assert_eq!(
            t.segments().len(),
            30,
            "five minutes of ten-second intervals"
        );
        assert!((t.duration() - 300.0).abs() < 1e-9);
        assert_eq!(t.min_qps(), Trace::TWITTER_MIN_QPS);
        assert_eq!(t.max_qps(), Trace::TWITTER_MAX_QPS);
        // Expected total queries in the paper's order of magnitude
        // (the artifact reports 554,395 sampled arrivals).
        let total = t.expected_queries();
        assert!(total > 500_000.0 && total < 1_200_000.0, "total={total}");
    }

    #[test]
    fn twitter_like_is_seeded() {
        assert_eq!(Trace::twitter_like(1), Trace::twitter_like(1));
        assert_ne!(Trace::twitter_like(1), Trace::twitter_like(2));
    }

    #[test]
    fn artifact_text_round_trip() {
        let t = Trace::twitter_like(3);
        let text = t.to_artifact_text();
        let back = Trace::parse_artifact_text(&text).unwrap();
        assert_eq!(t.segments(), back.segments());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let t = Trace::parse_artifact_text("# header\n1617\n\n2000.5\n").unwrap();
        assert_eq!(t.segments().len(), 2);
        assert_eq!(t.qps_at(0.0), 1617.0);
        assert_eq!(t.qps_at(10.0), 2000.5);
    }

    #[test]
    fn parse_reports_bad_lines() {
        let err = Trace::parse_artifact_text("100\nnot-a-number\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Trace::parse_artifact_text("-5\n").unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        assert!(Trace::parse_artifact_text("# only comments\n").is_err());
    }

    #[test]
    fn time_compression_preserves_loads() {
        // A "day" of three 8-hour phases compressed to 72 seconds.
        let day =
            Trace::from_interval_qps(&[1_000.0, 3_000.0, 2_000.0], 28_800.0, TraceKind::Custom);
        let five_min = day.time_compressed(1_200.0);
        assert!((five_min.duration() - 72.0).abs() < 1e-9);
        assert_eq!(five_min.min_qps(), 1_000.0);
        assert_eq!(five_min.max_qps(), 3_000.0);
        // The load curve shape is preserved at compressed time points.
        assert_eq!(five_min.qps_at(10.0), day.qps_at(12_000.0));
        assert_eq!(five_min.qps_at(30.0), day.qps_at(36_000.0));
        // Expected queries shrink by the factor.
        assert!((five_min.expected_queries() * 1_200.0 - day.expected_queries()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "compression factor must be positive")]
    fn time_compression_rejects_zero() {
        let _ = Trace::constant(10.0, 10.0).time_compressed(0.0);
    }

    #[test]
    fn scaled_trace() {
        let t = Trace::constant(100.0, 10.0).scaled(2.5);
        assert_eq!(t.qps_at(0.0), 250.0);
        assert_eq!(t.expected_queries(), 2_500.0);
    }

    #[test]
    fn scaled_between_splits_at_boundaries() {
        let t = Trace::from_interval_qps(&[100.0, 100.0, 100.0], 10.0, TraceKind::Custom);
        let surged = t.scaled_between(5.0, 25.0, 3.0);
        // Total duration and out-of-window loads are unchanged.
        assert!((surged.duration() - 30.0).abs() < 1e-9);
        assert_eq!(surged.qps_at(0.0), 100.0);
        assert_eq!(surged.qps_at(4.999), 100.0);
        assert_eq!(surged.qps_at(5.0), 300.0);
        assert_eq!(surged.qps_at(15.0), 300.0);
        assert_eq!(surged.qps_at(24.999), 300.0);
        assert_eq!(surged.qps_at(25.0), 100.0);
        // Expected queries: 10 s untouched + 20 s tripled.
        assert!((surged.expected_queries() - (1_000.0 + 6_000.0)).abs() < 1e-9);
    }

    #[test]
    fn scaled_between_outside_trace_is_identity() {
        let t = Trace::constant(100.0, 10.0);
        let surged = t.scaled_between(50.0, 60.0, 3.0);
        assert_eq!(surged.segments(), t.segments());
        // Window clipped to the trace tail.
        let tail = t.scaled_between(8.0, 60.0, 2.0);
        assert_eq!(tail.qps_at(7.0), 100.0);
        assert_eq!(tail.qps_at(9.0), 200.0);
        assert!((tail.duration() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "from < to")]
    fn scaled_between_rejects_inverted_window() {
        let _ = Trace::constant(10.0, 10.0).scaled_between(5.0, 5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "ten-second intervals")]
    fn artifact_text_rejects_foreign_intervals() {
        let t = Trace::constant(100.0, 30.0);
        let _ = t.to_artifact_text();
    }
}
