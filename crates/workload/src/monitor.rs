//! Query-load estimation (the load monitor of paper §3.2.2 and §6).
//!
//! Online, RAMSIS and the baselines pick a policy / model according to
//! the *anticipated* query load. The paper's implementation "tracks query
//! load via a moving average over a window of 500 milliseconds [38, 57]"
//! and shares that monitor between RAMSIS and the baselines; the
//! constant-load experiments of §7.2 instead assume "the load monitor
//! perfectly predicts the query load" — provided here as
//! [`OracleMonitor`].

use ramsis_stats::summary::MovingAverage;

use crate::trace::Trace;

/// A query-load estimator fed with arrival events.
pub trait LoadEstimator {
    /// Records a query arrival at time `now` (seconds).
    fn record_arrival(&mut self, now: f64);

    /// The anticipated query load (QPS) as of time `now`.
    fn estimate(&mut self, now: f64) -> f64;
}

/// The 500 ms moving-average monitor of §6.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    window: MovingAverage,
}

impl LoadMonitor {
    /// The paper's monitoring window.
    pub const DEFAULT_WINDOW_S: f64 = 0.5;

    /// Creates a monitor with the paper's 500 ms window.
    pub fn new() -> Self {
        Self::with_window(Self::DEFAULT_WINDOW_S)
    }

    /// Creates a monitor with a custom window length in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not strictly positive and finite.
    pub fn with_window(window_s: f64) -> Self {
        Self {
            window: MovingAverage::new(window_s),
        }
    }
}

impl Default for LoadMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadEstimator for LoadMonitor {
    fn record_arrival(&mut self, now: f64) {
        self.window.record(now);
    }

    fn estimate(&mut self, now: f64) -> f64 {
        self.window.rate(now)
    }
}

/// A perfect-knowledge monitor that reads the true load off the trace —
/// the assumption of §7.2's constant-load experiments ("to focus our
/// evaluation on comparing the best possible performance of all
/// evaluated MS&S approaches").
#[derive(Debug, Clone)]
pub struct OracleMonitor {
    trace: Trace,
}

impl OracleMonitor {
    /// Creates an oracle over the given trace.
    pub fn new(trace: Trace) -> Self {
        Self { trace }
    }
}

impl LoadEstimator for OracleMonitor {
    fn record_arrival(&mut self, _now: f64) {}

    fn estimate(&mut self, now: f64) -> f64 {
        self.trace.qps_at(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::sample_poisson_arrivals;
    use crate::trace::TraceKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moving_average_tracks_poisson_stream() {
        let trace = Trace::constant(2_000.0, 5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        for &t in &arrivals {
            mon.record_arrival(t);
        }
        let est = mon.estimate(5.0);
        // 2,000 QPS over a 500 ms window: Poisson(1,000) has sigma ~32;
        // stay within 5 sigma in rate units (sigma_rate ~ 63 QPS).
        assert!((est - 2_000.0).abs() < 320.0, "est={est}");
    }

    #[test]
    fn moving_average_reacts_to_load_change() {
        let trace = Trace::from_interval_qps(&[500.0, 4_000.0], 10.0, TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        let mut est_low = 0.0;
        let mut est_high = 0.0;
        for &t in &arrivals {
            mon.record_arrival(t);
            if (9.4..9.5).contains(&t) {
                est_low = mon.estimate(t);
            }
            if (19.4..19.5).contains(&t) {
                est_high = mon.estimate(t);
            }
        }
        assert!(est_low < 1_000.0, "est_low={est_low}");
        assert!(est_high > 3_000.0, "est_high={est_high}");
    }

    #[test]
    fn oracle_reads_the_trace() {
        let trace = Trace::from_interval_qps(&[100.0, 900.0], 10.0, TraceKind::Custom);
        let mut mon = OracleMonitor::new(trace);
        assert_eq!(mon.estimate(5.0), 100.0);
        assert_eq!(mon.estimate(15.0), 900.0);
        // Arrivals are ignored.
        mon.record_arrival(5.0);
        assert_eq!(mon.estimate(5.0), 100.0);
    }

    #[test]
    fn custom_window_changes_smoothing() {
        let mut fast = LoadMonitor::with_window(0.1);
        let mut slow = LoadMonitor::with_window(2.0);
        // A burst of 100 arrivals at t = 0, then silence.
        for i in 0..100 {
            let t = i as f64 * 1e-4;
            fast.record_arrival(t);
            slow.record_arrival(t);
        }
        // At t = 0.5 the fast window has drained, the slow one has not.
        assert_eq!(fast.estimate(0.5), 0.0);
        assert!(slow.estimate(0.5) > 0.0);
    }
}
