//! Query-load estimation (the load monitor of paper §3.2.2 and §6).
//!
//! Online, RAMSIS and the baselines pick a policy / model according to
//! the *anticipated* query load. The paper's implementation "tracks query
//! load via a moving average over a window of 500 milliseconds [38, 57]"
//! and shares that monitor between RAMSIS and the baselines; the
//! constant-load experiments of §7.2 instead assume "the load monitor
//! perfectly predicts the query load" — provided here as
//! [`OracleMonitor`].

use ramsis_stats::summary::MovingAverage;

use crate::trace::Trace;

/// A query-load estimator fed with arrival events.
pub trait LoadEstimator {
    /// Records a query arrival at time `now` (seconds).
    fn record_arrival(&mut self, now: f64);

    /// The anticipated query load (QPS) as of time `now`.
    fn estimate(&mut self, now: f64) -> f64;

    /// The observed-to-planned load ratio at `now`, for estimators that
    /// carry a planned trace to compare against ([`DivergenceMonitor`]).
    /// `None` for plain estimators with no notion of a plan.
    fn divergence(&mut self, now: f64) -> Option<f64> {
        let _ = now;
        None
    }

    /// The load trend (QPS per second) at `now`, for estimators that can
    /// measure one — the autoscaler uses it to anticipate warm-up lag.
    /// `None` while there is no meaningful trend (default, and during
    /// warm-up).
    fn trend_qps_per_s(&mut self, now: f64) -> Option<f64> {
        let _ = now;
        None
    }

    /// Serializable internal state for checkpoint/resume. `None`
    /// (the default) declares the estimator unsupported: a simulation
    /// run with checkpointing enabled refuses to start rather than
    /// silently producing unresumable snapshots. Stateless estimators
    /// return `Some(Value::Null)`.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        None
    }

    /// Restores state captured by [`Self::checkpoint_state`] onto a
    /// freshly constructed estimator.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch between the state
    /// tree and this estimator.
    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        let _ = state;
        Err("estimator does not support checkpoint restore".to_string())
    }
}

/// The 500 ms moving-average monitor of §6.
///
/// Monitoring starts at `t = 0` (the simulation origin). Before one
/// full window has elapsed, dividing the in-window count by the full
/// window length would systematically *under*-estimate the load (at
/// `t = window / 2` a steady stream fills only half the window), so the
/// estimate divides by the elapsed time instead until
/// [`Self::warmed_up`] turns true.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    window: MovingAverage,
    window_s: f64,
    /// A second, longer window recorded in parallel; comparing its rate
    /// against the primary window's yields the load trend. Never
    /// consulted by [`LoadEstimator::estimate`], so adding it changed no
    /// estimate.
    trend_window: MovingAverage,
}

impl LoadMonitor {
    /// The paper's monitoring window.
    pub const DEFAULT_WINDOW_S: f64 = 0.5;

    /// Fraction of the window the elapsed-time divisor is floored at
    /// during warm-up, so the first few arrivals cannot produce a
    /// near-division-by-zero estimate.
    pub const MIN_WARMUP_FRACTION: f64 = 0.05;

    /// The trend window is this many times the estimation window.
    pub const TREND_WINDOW_FACTOR: f64 = 4.0;

    /// Creates a monitor with the paper's 500 ms window.
    pub fn new() -> Self {
        Self::with_window(Self::DEFAULT_WINDOW_S)
    }

    /// Creates a monitor with a custom window length in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not strictly positive and finite.
    pub fn with_window(window_s: f64) -> Self {
        Self {
            window: MovingAverage::new(window_s),
            window_s,
            trend_window: MovingAverage::new(window_s * Self::TREND_WINDOW_FACTOR),
        }
    }

    /// Whether a full monitoring window has elapsed since `t = 0`, i.e.
    /// the estimate is the steady-state moving average rather than the
    /// elapsed-time-scaled warm-up value.
    pub fn warmed_up(&self, now: f64) -> bool {
        now >= self.window_s
    }
}

impl Default for LoadMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl LoadEstimator for LoadMonitor {
    fn record_arrival(&mut self, now: f64) {
        self.window.record(now);
        self.trend_window.record(now);
    }

    fn estimate(&mut self, now: f64) -> f64 {
        let raw = self.window.rate(now);
        if self.warmed_up(now) {
            return raw;
        }
        // Warm-up: the window spans [0, now), not a full window_s.
        let effective = now.max(self.window_s * Self::MIN_WARMUP_FRACTION);
        raw * self.window_s / effective
    }

    /// Finite difference between the short and long moving averages:
    /// their rates are centered `(trend_window - window) / 2` seconds
    /// apart, so the difference over that gap is the slope. `None`
    /// before a full trend window has elapsed.
    fn trend_qps_per_s(&mut self, now: f64) -> Option<f64> {
        let long_s = self.window_s * Self::TREND_WINDOW_FACTOR;
        if now < long_s {
            return None;
        }
        let short = self.window.rate(now);
        let long = self.trend_window.rate(now);
        let gap_s = (long_s - self.window_s) / 2.0;
        Some((short - long) / gap_s)
    }

    /// Both moving-average windows (the window lengths live in the
    /// constructor arguments, but the event queues are run state).
    fn checkpoint_state(&self) -> Option<serde::Value> {
        use serde::Serialize;
        Some(serde::Value::Object(vec![
            ("window".to_string(), self.window.to_value()),
            ("trend_window".to_string(), self.trend_window.to_value()),
        ]))
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        use serde::Deserialize;
        let field = |name: &str| {
            state
                .field(name)
                .ok_or_else(|| format!("LoadMonitor state: missing `{name}`"))
        };
        self.window = MovingAverage::from_value(field("window")?).map_err(|e| e.to_string())?;
        self.trend_window =
            MovingAverage::from_value(field("trend_window")?).map_err(|e| e.to_string())?;
        Ok(())
    }
}

/// A perfect-knowledge monitor that reads the true load off the trace —
/// the assumption of §7.2's constant-load experiments ("to focus our
/// evaluation on comparing the best possible performance of all
/// evaluated MS&S approaches").
#[derive(Debug, Clone)]
pub struct OracleMonitor {
    trace: Trace,
}

impl OracleMonitor {
    /// Creates an oracle over the given trace.
    pub fn new(trace: Trace) -> Self {
        Self { trace }
    }
}

impl LoadEstimator for OracleMonitor {
    fn record_arrival(&mut self, _now: f64) {}

    fn estimate(&mut self, now: f64) -> f64 {
        self.trace.qps_at(now)
    }

    /// Perfect knowledge: the forward difference of the planned trace.
    fn trend_qps_per_s(&mut self, now: f64) -> Option<f64> {
        const HORIZON_S: f64 = 0.25;
        let here = self.trace.qps_at(now);
        let ahead = self.trace.qps_at(now + HORIZON_S);
        Some((ahead - here) / HORIZON_S)
    }

    /// Stateless: the trace is configuration, not run state.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

/// A monitor that also reports how far the *observed* load has diverged
/// from the *planned* trace — the signal a degradation-aware serving
/// scheme watches to tell an unexpected surge (fault injection, flash
/// crowd) from ordinary noise.
///
/// Estimation behaves exactly like the wrapped [`LoadMonitor`]: the
/// anticipated load is the measured one, so schemes driven through
/// [`LoadEstimator`] see real conditions, not the plan. On top of that,
/// [`Self::divergence`] exposes the observed-to-planned load ratio
/// (1.0 = on plan, 3.0 = a 3× surge) and [`Self::is_surging`] thresholds
/// it.
#[derive(Debug, Clone)]
pub struct DivergenceMonitor {
    observed: LoadMonitor,
    planned: Trace,
}

impl DivergenceMonitor {
    /// Divergence is meaningless at near-zero planned load; below this
    /// floor (QPS) the ratio is reported as 1.0.
    pub const MIN_PLANNED_QPS: f64 = 1.0;

    /// Creates the monitor with the paper's 500 ms measuring window over
    /// the given planned trace.
    pub fn new(planned: Trace) -> Self {
        Self {
            observed: LoadMonitor::new(),
            planned,
        }
    }

    /// The observed-to-planned load ratio at `now`: above 1.0 the
    /// cluster sees more load than planned for. Clamped to 1.0 when the
    /// plan expects (near-)zero load.
    pub fn divergence(&mut self, now: f64) -> f64 {
        let planned = self.planned.qps_at(now);
        if planned < Self::MIN_PLANNED_QPS {
            return 1.0;
        }
        self.observed.estimate(now) / planned
    }

    /// Whether observed load exceeds the plan by more than `factor`
    /// (e.g. `1.5` flags sustained 50%-over-plan load).
    pub fn is_surging(&mut self, now: f64, factor: f64) -> bool {
        self.divergence(now) > factor
    }
}

impl LoadEstimator for DivergenceMonitor {
    fn record_arrival(&mut self, now: f64) {
        self.observed.record_arrival(now);
    }

    fn estimate(&mut self, now: f64) -> f64 {
        self.observed.estimate(now)
    }

    fn divergence(&mut self, now: f64) -> Option<f64> {
        Some(DivergenceMonitor::divergence(self, now))
    }

    fn trend_qps_per_s(&mut self, now: f64) -> Option<f64> {
        self.observed.trend_qps_per_s(now)
    }

    /// Only the observed monitor carries run state; the planned trace is
    /// configuration.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        self.observed.checkpoint_state()
    }

    fn restore_state(&mut self, state: &serde::Value) -> Result<(), String> {
        self.observed.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::sample_poisson_arrivals;
    use crate::trace::TraceKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn moving_average_tracks_poisson_stream() {
        let trace = Trace::constant(2_000.0, 5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        for &t in &arrivals {
            mon.record_arrival(t);
        }
        let est = mon.estimate(5.0);
        // 2,000 QPS over a 500 ms window: Poisson(1,000) has sigma ~32;
        // stay within 5 sigma in rate units (sigma_rate ~ 63 QPS).
        assert!((est - 2_000.0).abs() < 320.0, "est={est}");
    }

    #[test]
    fn moving_average_reacts_to_load_change() {
        let trace = Trace::from_interval_qps(&[500.0, 4_000.0], 10.0, TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        let mut est_low = 0.0;
        let mut est_high = 0.0;
        for &t in &arrivals {
            mon.record_arrival(t);
            if (9.4..9.5).contains(&t) {
                est_low = mon.estimate(t);
            }
            if (19.4..19.5).contains(&t) {
                est_high = mon.estimate(t);
            }
        }
        assert!(est_low < 1_000.0, "est_low={est_low}");
        assert!(est_high > 3_000.0, "est_high={est_high}");
    }

    #[test]
    fn oracle_reads_the_trace() {
        let trace = Trace::from_interval_qps(&[100.0, 900.0], 10.0, TraceKind::Custom);
        let mut mon = OracleMonitor::new(trace);
        assert_eq!(mon.estimate(5.0), 100.0);
        assert_eq!(mon.estimate(15.0), 900.0);
        // Arrivals are ignored.
        mon.record_arrival(5.0);
        assert_eq!(mon.estimate(5.0), 100.0);
    }

    #[test]
    fn trend_is_none_until_warm_and_tracks_a_ramp() {
        // A linear ramp from 500 to 4,500 QPS over 8 s has a true slope
        // of 500 QPS/s; the finite-difference trend should land in that
        // neighborhood once both windows are populated.
        let steps: Vec<f64> = (0..16).map(|i| 500.0 + 250.0 * i as f64).collect();
        let trace = Trace::from_interval_qps(&steps, 0.5, TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        // Before one full trend window there is no slope to report.
        assert_eq!(mon.trend_qps_per_s(0.0), None);
        let mut slope = None;
        for &t in &arrivals {
            mon.record_arrival(t);
            if t < LoadMonitor::DEFAULT_WINDOW_S * LoadMonitor::TREND_WINDOW_FACTOR {
                assert_eq!(mon.trend_qps_per_s(t), None, "not warm at t={t}");
            }
            if (7.4..7.5).contains(&t) {
                slope = mon.trend_qps_per_s(t);
            }
        }
        let slope = slope.expect("warm by 7.5 s");
        assert!(
            (100.0..1_500.0).contains(&slope),
            "ramp slope should be strongly positive, got {slope}"
        );
    }

    #[test]
    fn trend_is_flat_on_steady_load_and_negative_on_decay() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let steady = sample_poisson_arrivals(&Trace::constant(2_000.0, 6.0), &mut rng);
        let mut mon = LoadMonitor::new();
        for &t in &steady {
            mon.record_arrival(t);
        }
        let flat = mon.trend_qps_per_s(6.0).expect("warm");
        // Poisson noise only: far smaller than the ramp's 500 QPS/s.
        assert!(flat.abs() < 400.0, "steady trend {flat}");

        let falling = Trace::from_interval_qps(&[4_000.0, 2_000.0, 500.0], 2.0, TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let arrivals = sample_poisson_arrivals(&falling, &mut rng);
        let mut mon = LoadMonitor::new();
        let mut down = None;
        for &t in &arrivals {
            mon.record_arrival(t);
            if (5.3..5.5).contains(&t) {
                down = mon.trend_qps_per_s(t);
            }
        }
        let down = down.expect("warm");
        assert!(down < -200.0, "decaying trend {down}");
    }

    #[test]
    fn oracle_and_divergence_trends_delegate() {
        // The oracle differentiates the plan itself: a step up at t=10
        // is visible just before the boundary, zero elsewhere.
        let trace = Trace::from_interval_qps(&[100.0, 900.0], 10.0, TraceKind::Custom);
        let mut oracle = OracleMonitor::new(trace.clone());
        assert_eq!(oracle.trend_qps_per_s(5.0), Some(0.0));
        let at_step = oracle.trend_qps_per_s(9.9).expect("oracle always knows");
        assert!(at_step > 1_000.0, "step slope {at_step}");
        // DivergenceMonitor reports its observed monitor's trend.
        let mut div = DivergenceMonitor::new(trace);
        assert_eq!(div.trend_qps_per_s(0.1), None);
    }

    #[test]
    fn trend_default_impl_is_none() {
        // The trait default keeps every external estimator valid.
        struct Fixed;
        impl LoadEstimator for Fixed {
            fn record_arrival(&mut self, _now: f64) {}
            fn estimate(&mut self, _now: f64) -> f64 {
                42.0
            }
        }
        assert_eq!(Fixed.trend_qps_per_s(3.0), None);
    }

    #[test]
    fn divergence_flags_a_surge() {
        // Plan for 1,000 QPS, actually receive 3,000.
        let planned = Trace::constant(1_000.0, 10.0);
        let actual = Trace::constant(3_000.0, 10.0);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let arrivals = sample_poisson_arrivals(&actual, &mut rng);
        let mut mon = DivergenceMonitor::new(planned);
        for &t in &arrivals {
            mon.record_arrival(t);
        }
        let d = mon.divergence(10.0);
        assert!((2.5..3.5).contains(&d), "divergence={d}");
        assert!(mon.is_surging(10.0, 1.5));
        assert!(!mon.is_surging(10.0, 4.0));
        // Estimation reports the observed load, not the plan.
        assert!((mon.estimate(10.0) - 3_000.0).abs() < 500.0);
    }

    #[test]
    fn divergence_is_neutral_on_plan_and_at_zero_plan() {
        let planned = Trace::constant(2_000.0, 5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let arrivals = sample_poisson_arrivals(&planned, &mut rng);
        let mut mon = DivergenceMonitor::new(planned);
        for &t in &arrivals {
            mon.record_arrival(t);
        }
        let d = mon.divergence(5.0);
        assert!((0.8..1.2).contains(&d), "divergence={d}");
        // A zero-load plan never divides by zero.
        let mut idle = DivergenceMonitor::new(Trace::constant(0.0, 5.0));
        idle.record_arrival(1.0);
        assert_eq!(idle.divergence(1.0), 1.0);
    }

    #[test]
    fn warm_up_scaling_removes_cold_start_bias() {
        // Regression: before the first full window has elapsed, dividing
        // the in-window count by the full window length halves a steady
        // 2,000 QPS stream when read at t = window / 2. The warm-up path
        // divides by elapsed time instead.
        let trace = Trace::constant(2_000.0, 0.25);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        for &t in &arrivals {
            mon.record_arrival(t);
        }
        assert!(!mon.warmed_up(0.25));
        let est = mon.estimate(0.25);
        // Unbiased now: ~500 arrivals over 0.25 s => ~2,000 QPS. The old
        // behavior reported ~1,000.
        assert!(
            (est - 2_000.0).abs() < 320.0,
            "cold-start estimate should be unbiased, got {est}"
        );
        assert!(mon.warmed_up(0.5));
    }

    #[test]
    fn warm_up_floor_bounds_first_arrival_estimate() {
        // A single arrival in the first instants must not explode into
        // an absurd rate: the elapsed divisor is floored at 5% of the
        // window.
        let mut mon = LoadMonitor::new();
        mon.record_arrival(0.001);
        let est = mon.estimate(0.001);
        let cap = 1.0 / (LoadMonitor::DEFAULT_WINDOW_S * LoadMonitor::MIN_WARMUP_FRACTION);
        assert!(est <= cap + 1e-9, "est={est} cap={cap}");
        assert!(est > 0.0);
    }

    #[test]
    fn trait_divergence_is_none_for_plain_monitors() {
        let mut plain = LoadMonitor::new();
        assert_eq!(LoadEstimator::divergence(&mut plain, 1.0), None);
        let mut oracle = OracleMonitor::new(Trace::constant(10.0, 5.0));
        assert_eq!(LoadEstimator::divergence(&mut oracle, 1.0), None);
        let mut div = DivergenceMonitor::new(Trace::constant(10.0, 5.0));
        assert!(LoadEstimator::divergence(&mut div, 1.0).is_some());
    }

    #[test]
    fn checkpoint_state_round_trips_mid_stream() {
        let trace = Trace::constant(500.0, 4.0);
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut mon = LoadMonitor::new();
        let cut = arrivals.len() / 2;
        for &t in &arrivals[..cut] {
            mon.record_arrival(t);
        }
        let state = mon.checkpoint_state().expect("LoadMonitor supports it");
        let mut restored = LoadMonitor::new();
        restored.restore_state(&state).unwrap();
        // The restored monitor continues identically.
        for &t in &arrivals[cut..] {
            mon.record_arrival(t);
            restored.record_arrival(t);
        }
        assert_eq!(mon.estimate(4.0), restored.estimate(4.0));
        assert_eq!(mon.trend_qps_per_s(4.0), restored.trend_qps_per_s(4.0));
        // Oracle is stateless; divergence delegates to the observed side.
        let mut oracle = OracleMonitor::new(Trace::constant(1.0, 1.0));
        assert_eq!(oracle.checkpoint_state(), Some(serde::Value::Null));
        oracle.restore_state(&serde::Value::Null).unwrap();
        let div = DivergenceMonitor::new(Trace::constant(1.0, 1.0));
        assert!(div.checkpoint_state().is_some());
        // The trait default declares estimators unsupported.
        struct Fixed;
        impl LoadEstimator for Fixed {
            fn record_arrival(&mut self, _now: f64) {}
            fn estimate(&mut self, _now: f64) -> f64 {
                0.0
            }
        }
        assert_eq!(Fixed.checkpoint_state(), None);
        assert!(Fixed.restore_state(&serde::Value::Null).is_err());
    }

    #[test]
    fn custom_window_changes_smoothing() {
        let mut fast = LoadMonitor::with_window(0.1);
        let mut slow = LoadMonitor::with_window(2.0);
        // A burst of 100 arrivals at t = 0, then silence.
        for i in 0..100 {
            let t = i as f64 * 1e-4;
            fast.record_arrival(t);
            slow.record_arrival(t);
        }
        // At t = 0.5 the fast window has drained, the slow one has not.
        assert_eq!(fast.estimate(0.5), 0.0);
        assert!(slow.estimate(0.5) > 0.0);
    }
}
