//! Workload substrate: query-load traces, arrival sampling, load monitoring.
//!
//! The paper evaluates on (a) a 24-hour production Twitter trace scaled
//! down to five minutes — a text file listing average queries-per-second
//! over ten-second intervals, ranging 1,617–3,905 QPS — and (b) 30-second
//! constant-load traces (§7). Both are piecewise-constant *load signals*;
//! actual query arrival times are then sampled from a Poisson process at
//! the signal's rate ("Since the Twitter trace logs query load over fixed
//! time intervals rather than explicit query arrival times, we sample
//! arrival times of each query via a Poisson process").
//!
//! This crate provides:
//!
//! - [`trace::Trace`]: piecewise-constant load signals with the
//!   artifact's text format ([`trace::Trace::parse_artifact_text`]), a
//!   constant constructor, and a seeded Twitter-like generator
//!   ([`trace::Trace::twitter_like`]) substituting for the original
//!   archive file (see DESIGN.md §2).
//! - [`arrivals`]: arrival-time samplers — Poisson (exponential gaps,
//!   exact for piecewise-constant rates by memorylessness) and a
//!   gamma-renewal alternative for burstier/smoother inter-arrival
//!   ablations.
//! - [`monitor`]: the 500 ms moving-average load monitor of §6 and the
//!   perfect-knowledge oracle used in the constant-load experiments
//!   (§7.2 assumes "the load monitor perfectly predicts the query load").
//! - [`drift`]: the online drift detector — a sliding arrival window
//!   periodically re-fit through [`fit`], classified into (rate bin,
//!   dispersion class) regimes with hysteresis, confirmation, and
//!   cooldown debouncing so estimation noise cannot flap policies.

pub mod arrivals;
pub mod drift;
pub mod fit;
pub mod monitor;
pub mod trace;

pub use arrivals::{sample_gamma_renewal_arrivals, sample_poisson_arrivals};
pub use drift::{
    DispersionClass, DriftDetector, DriftDetectorConfig, RegimeChange, RegimeGrid, RegimeKey,
};
pub use fit::{fit_arrival_process, FitError, FittedArrivals};
pub use monitor::{DivergenceMonitor, LoadEstimator, LoadMonitor, OracleMonitor};
pub use trace::{Trace, TraceKind};
