//! Query arrival-time sampling from a load trace.
//!
//! The trace is a load *signal*; actual arrival timestamps are sampled
//! from a stochastic inter-arrival process at the signal's rate. The
//! paper samples "arrival times of each query via a Poisson process"
//! (§7); a gamma-renewal sampler is provided as the alternative process
//! the paper gestures at (§3.1.1: "the Gamma distribution could be
//! used").

use rand::Rng;

use ramsis_stats::sampling::{sample_exponential, sample_gamma};

use crate::trace::Trace;

/// Samples Poisson arrival times over `trace`, in seconds from the trace
/// start, strictly increasing.
///
/// Within each piecewise-constant segment, gaps are exponential at the
/// segment's rate; at segment boundaries the residual gap is re-drawn,
/// which is exact for a Poisson process by memorylessness. Zero-rate
/// segments produce no arrivals.
pub fn sample_poisson_arrivals<R: Rng + ?Sized>(trace: &Trace, rng: &mut R) -> Vec<f64> {
    let mut arrivals = Vec::with_capacity(trace.expected_queries() as usize + 16);
    let mut segment_start = 0.0;
    for &(len, qps) in trace.segments() {
        let segment_end = segment_start + len;
        if qps > 0.0 {
            let mut t = segment_start + sample_exponential(rng, qps);
            while t < segment_end {
                arrivals.push(t);
                t += sample_exponential(rng, qps);
            }
        }
        segment_start = segment_end;
    }
    arrivals
}

/// Samples arrival times from a gamma-renewal process over `trace`.
///
/// Inter-arrival gaps are gamma with the given `shape` and a scale
/// chosen per segment so the mean gap is `1 / qps` (so the long-run rate
/// matches the trace). `shape > 1` yields smoother-than-Poisson traffic,
/// `shape < 1` burstier; `shape = 1` recovers the Poisson sampler.
///
/// Unlike the Poisson case, re-drawing the residual gap at segment
/// boundaries is an approximation (gamma renewals are not memoryless);
/// it is the same simplification the RAMSIS problem model itself makes
/// when treating load changes as regime switches.
///
/// # Panics
///
/// Panics if `shape` is not strictly positive and finite.
pub fn sample_gamma_renewal_arrivals<R: Rng + ?Sized>(
    trace: &Trace,
    shape: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive and finite, got {shape}"
    );
    let mut arrivals = Vec::with_capacity(trace.expected_queries() as usize + 16);
    let mut segment_start = 0.0;
    for &(len, qps) in trace.segments() {
        let segment_end = segment_start + len;
        if qps > 0.0 {
            // Mean gap 1/qps = shape * scale.
            let scale = 1.0 / (qps * shape);
            let mut t = segment_start + sample_gamma(rng, shape, scale);
            while t < segment_end {
                arrivals.push(t);
                t += sample_gamma(rng, shape, scale);
            }
        }
        segment_start = segment_end;
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_in_range() {
        let trace = Trace::constant(500.0, 10.0);
        let a = sample_poisson_arrivals(&trace, &mut rng(1));
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*a.first().unwrap() >= 0.0);
        assert!(*a.last().unwrap() < 10.0);
    }

    #[test]
    fn poisson_count_matches_rate() {
        let trace = Trace::constant(1_000.0, 30.0);
        let a = sample_poisson_arrivals(&trace, &mut rng(2));
        let expected: f64 = 30_000.0;
        // Within 4 sigma of the Poisson count.
        let sigma = expected.sqrt();
        assert!(
            (a.len() as f64 - expected).abs() < 4.0 * sigma,
            "count={}",
            a.len()
        );
    }

    #[test]
    fn poisson_interarrival_cv_is_one() {
        let trace = Trace::constant(2_000.0, 60.0);
        let a = sample_poisson_arrivals(&trace, &mut rng(3));
        let gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn zero_rate_segments_are_silent() {
        let trace = Trace::from_interval_qps(&[0.0, 100.0, 0.0], 10.0, TraceKind::Custom);
        let a = sample_poisson_arrivals(&trace, &mut rng(4));
        assert!(!a.is_empty());
        for &t in &a {
            assert!(
                (10.0..20.0).contains(&t),
                "arrival at {t} outside active segment"
            );
        }
    }

    #[test]
    fn varying_trace_shifts_density() {
        let trace = Trace::from_interval_qps(&[200.0, 2_000.0], 10.0, TraceKind::Custom);
        let a = sample_poisson_arrivals(&trace, &mut rng(5));
        let first = a.iter().filter(|&&t| t < 10.0).count();
        let second = a.len() - first;
        assert!(second > 5 * first, "first={first} second={second}");
    }

    #[test]
    fn gamma_renewal_rate_matches() {
        let trace = Trace::constant(1_000.0, 30.0);
        for shape in [0.5, 1.0, 4.0] {
            let a = sample_gamma_renewal_arrivals(&trace, shape, &mut rng(6));
            let expected = 30_000.0;
            assert!(
                (a.len() as f64 - expected).abs() < 0.05 * expected,
                "shape={shape} count={}",
                a.len()
            );
        }
    }

    #[test]
    fn gamma_shape_controls_burstiness() {
        let trace = Trace::constant(2_000.0, 60.0);
        let cv = |shape: f64, seed: u64| {
            let a = sample_gamma_renewal_arrivals(&trace, shape, &mut rng(seed));
            let gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        // CV = 1/sqrt(shape) for gamma renewals.
        assert!((cv(4.0, 7) - 0.5).abs() < 0.05);
        assert!((cv(0.25, 8) - 2.0).abs() < 0.2);
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let trace = Trace::twitter_like(1);
        let a = sample_poisson_arrivals(&trace, &mut rng(42));
        let b = sample_poisson_arrivals(&trace, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn twitter_like_arrival_volume() {
        let trace = Trace::twitter_like(1);
        let a = sample_poisson_arrivals(&trace, &mut rng(9));
        let expected = trace.expected_queries();
        assert!(
            (a.len() as f64 - expected).abs() < 0.01 * expected,
            "count={} expected={expected}",
            a.len()
        );
    }
}
