//! Fitting an arrival-count model to observed arrival times.
//!
//! RAMSIS's problem model is parameterized by the arrival distribution
//! `PF(k, T)` (paper §3.1.1); appendix §I notes that when no analytic
//! form is known "PF_w can be empirically estimated using simulation".
//! This module provides the estimation: bucket observed arrival times
//! into fixed windows, and moment-match the count mean and variance to
//! the two analytic processes the workspace provides — Poisson
//! (variance = mean) and the negative-binomial Lévy process
//! (variance = dispersion · mean, dispersion > 1).

use serde::{Deserialize, Serialize};

use ramsis_stats::counts::{ArrivalProcess, NegativeBinomialProcess, PoissonProcess};

/// Why a fit could not be produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FitError {
    /// The window length was zero, negative, or non-finite.
    BadWindow {
        /// The offending window length, seconds.
        window_s: f64,
    },
    /// Fewer than two full windows fit in the horizon, so the count
    /// variance is undefined.
    TooFewWindows {
        /// The fitting horizon, seconds.
        horizon_s: f64,
        /// The window length, seconds.
        window_s: f64,
    },
    /// The arrival times were not sorted ascending.
    Unsorted,
    /// No arrivals fell inside `[0, horizon_s)`: there is no rate to
    /// estimate and the variance-to-mean ratio is 0/0.
    NoArrivals,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadWindow { window_s } => {
                write!(f, "fit window must be positive and finite, got {window_s}")
            }
            Self::TooFewWindows {
                horizon_s,
                window_s,
            } => write!(
                f,
                "need at least two full windows: horizon {horizon_s} s, window {window_s} s"
            ),
            Self::Unsorted => write!(f, "arrival times must be sorted ascending"),
            Self::NoArrivals => write!(f, "no arrivals inside the fitting horizon"),
        }
    }
}

impl std::error::Error for FitError {}

/// The result of fitting window counts to observed arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedArrivals {
    /// Estimated arrival rate, events per second.
    pub rate: f64,
    /// Variance-to-mean ratio of the window counts.
    pub dispersion: f64,
    /// Window length used for the fit, seconds.
    pub window_s: f64,
    /// Number of windows the estimate is based on.
    pub windows: usize,
}

impl FittedArrivals {
    /// Whether the counts are consistent with a Poisson process
    /// (dispersion within `tolerance` of 1).
    pub fn is_poissonian(&self, tolerance: f64) -> bool {
        (self.dispersion - 1.0).abs() <= tolerance
    }

    /// Materializes the best-matching analytic process: Poisson when
    /// the dispersion is ≤ 1 + `tolerance` (under-dispersed counts —
    /// smoother than Poisson — have no analytic model here, so Poisson
    /// is the conservative stand-in), negative binomial otherwise.
    pub fn to_process(&self, tolerance: f64) -> Box<dyn ArrivalProcess> {
        if self.dispersion > 1.0 + tolerance {
            Box::new(NegativeBinomialProcess::new(self.rate, self.dispersion))
        } else {
            Box::new(PoissonProcess::per_second(self.rate))
        }
    }
}

/// Fits window counts over `[0, horizon_s)` to the observed arrival
/// times (seconds, ascending).
///
/// Zero-variance counts (every window saw the same number of arrivals —
/// a perfectly paced stream) are valid and fit with dispersion `0.0`,
/// which [`FittedArrivals::to_process`] maps to the conservative Poisson
/// stand-in.
///
/// # Errors
///
/// Returns [`FitError`] when the window is degenerate, fewer than two
/// full windows fit the horizon (no variance can be estimated), the
/// arrivals are unsorted, or no arrival falls inside the horizon (the
/// dispersion would be 0/0).
pub fn fit_arrival_process(
    arrivals: &[f64],
    horizon_s: f64,
    window_s: f64,
) -> Result<FittedArrivals, FitError> {
    if !(window_s.is_finite() && window_s > 0.0) {
        return Err(FitError::BadWindow { window_s });
    }
    if horizon_s < 2.0 * window_s {
        return Err(FitError::TooFewWindows {
            horizon_s,
            window_s,
        });
    }
    if !arrivals.windows(2).all(|w| w[0] <= w[1]) {
        return Err(FitError::Unsorted);
    }
    let n_windows = (horizon_s / window_s).floor() as usize;
    let mut counts = vec![0u64; n_windows];
    let mut total = 0u64;
    for &t in arrivals {
        if t < 0.0 {
            continue;
        }
        let i = (t / window_s) as usize;
        if i < n_windows {
            counts[i] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return Err(FitError::NoArrivals);
    }
    let n = n_windows as f64;
    let mean = total as f64 / n;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    Ok(FittedArrivals {
        rate: mean / window_s,
        dispersion: var / mean,
        window_s,
        windows: n_windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{sample_gamma_renewal_arrivals, sample_poisson_arrivals};
    use crate::trace::Trace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poisson_fits_as_poisson() {
        let trace = Trace::constant(500.0, 120.0);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let fit = fit_arrival_process(&arrivals, 120.0, 0.5).unwrap();
        assert!((fit.rate - 500.0).abs() < 15.0, "rate {}", fit.rate);
        assert!(fit.is_poissonian(0.15), "dispersion {}", fit.dispersion);
        assert_eq!(fit.to_process(0.15).name(), "poisson");
    }

    #[test]
    fn bursty_renewal_fits_as_overdispersed() {
        // Gamma renewals with shape 0.25: CV = 2 inter-arrivals, so
        // window counts are over-dispersed.
        let trace = Trace::constant(500.0, 120.0);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let arrivals = sample_gamma_renewal_arrivals(&trace, 0.25, &mut rng);
        let fit = fit_arrival_process(&arrivals, 120.0, 0.5).unwrap();
        assert!(fit.dispersion > 1.5, "dispersion {}", fit.dispersion);
        assert_eq!(fit.to_process(0.15).name(), "negative-binomial");
        // The fitted process reproduces the observed rate.
        assert!((fit.to_process(0.15).rate() - fit.rate).abs() < 1e-9);
    }

    #[test]
    fn smooth_renewal_falls_back_to_poisson() {
        // Shape 4: smoother than Poisson — under-dispersed counts have
        // no analytic model here, so Poisson is the stand-in.
        let trace = Trace::constant(500.0, 120.0);
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let arrivals = sample_gamma_renewal_arrivals(&trace, 4.0, &mut rng);
        let fit = fit_arrival_process(&arrivals, 120.0, 0.5).unwrap();
        assert!(fit.dispersion < 0.6, "dispersion {}", fit.dispersion);
        assert_eq!(fit.to_process(0.15).name(), "poisson");
    }

    #[test]
    fn empty_stream_is_an_error() {
        // Regression: an empty stream used to fit as (rate 0, dispersion
        // 1) — a silently degenerate value callers would feed straight
        // into policy generation.
        assert_eq!(
            fit_arrival_process(&[], 10.0, 1.0),
            Err(FitError::NoArrivals)
        );
        // Arrivals entirely outside the horizon are equally empty.
        assert_eq!(
            fit_arrival_process(&[-3.0, 12.0], 10.0, 1.0),
            Err(FitError::NoArrivals)
        );
    }

    #[test]
    fn one_window_horizon_is_an_error() {
        // One full window has no count variance to moment-match.
        assert!(matches!(
            fit_arrival_process(&[0.1, 0.2], 1.0, 0.8),
            Err(FitError::TooFewWindows { .. })
        ));
        assert!(matches!(
            fit_arrival_process(&[0.1], 1.0, 1.0),
            Err(FitError::TooFewWindows { .. })
        ));
    }

    #[test]
    fn zero_variance_counts_fit_as_underdispersed() {
        // A perfectly paced stream: one arrival per window, variance 0.
        // That is a valid (maximally under-dispersed) fit, not an error,
        // and maps to the Poisson stand-in.
        let arrivals: Vec<f64> = (0..10).map(|i| i as f64 + 0.5).collect();
        let fit = fit_arrival_process(&arrivals, 10.0, 1.0).unwrap();
        assert_eq!(fit.dispersion, 0.0);
        assert!((fit.rate - 1.0).abs() < 1e-12);
        assert_eq!(fit.to_process(0.15).name(), "poisson");
    }

    #[test]
    fn degenerate_inputs_are_errors() {
        assert!(matches!(
            fit_arrival_process(&[0.1], 10.0, 0.0),
            Err(FitError::BadWindow { .. })
        ));
        assert!(matches!(
            fit_arrival_process(&[0.1], 10.0, f64::NAN),
            Err(FitError::BadWindow { .. })
        ));
        assert_eq!(
            fit_arrival_process(&[2.0, 1.0], 10.0, 1.0),
            Err(FitError::Unsorted)
        );
    }

    #[test]
    fn fit_errors_display_and_serialize() {
        let e = fit_arrival_process(&[], 10.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("no arrivals"));
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<FitError>(&json).unwrap(), e);
    }
}
