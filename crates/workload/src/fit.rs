//! Fitting an arrival-count model to observed arrival times.
//!
//! RAMSIS's problem model is parameterized by the arrival distribution
//! `PF(k, T)` (paper §3.1.1); appendix §I notes that when no analytic
//! form is known "PF_w can be empirically estimated using simulation".
//! This module provides the estimation: bucket observed arrival times
//! into fixed windows, and moment-match the count mean and variance to
//! the two analytic processes the workspace provides — Poisson
//! (variance = mean) and the negative-binomial Lévy process
//! (variance = dispersion · mean, dispersion > 1).

use serde::{Deserialize, Serialize};

use ramsis_stats::counts::{ArrivalProcess, NegativeBinomialProcess, PoissonProcess};

/// The result of fitting window counts to observed arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedArrivals {
    /// Estimated arrival rate, events per second.
    pub rate: f64,
    /// Variance-to-mean ratio of the window counts.
    pub dispersion: f64,
    /// Window length used for the fit, seconds.
    pub window_s: f64,
    /// Number of windows the estimate is based on.
    pub windows: usize,
}

impl FittedArrivals {
    /// Whether the counts are consistent with a Poisson process
    /// (dispersion within `tolerance` of 1).
    pub fn is_poissonian(&self, tolerance: f64) -> bool {
        (self.dispersion - 1.0).abs() <= tolerance
    }

    /// Materializes the best-matching analytic process: Poisson when
    /// the dispersion is ≤ 1 + `tolerance` (under-dispersed counts —
    /// smoother than Poisson — have no analytic model here, so Poisson
    /// is the conservative stand-in), negative binomial otherwise.
    pub fn to_process(&self, tolerance: f64) -> Box<dyn ArrivalProcess> {
        if self.dispersion > 1.0 + tolerance {
            Box::new(NegativeBinomialProcess::new(self.rate, self.dispersion))
        } else {
            Box::new(PoissonProcess::per_second(self.rate))
        }
    }
}

/// Fits window counts over `[0, horizon_s)` to the observed arrival
/// times (seconds, ascending).
///
/// # Panics
///
/// Panics if `window_s` is not positive, `horizon_s < 2 · window_s`
/// (at least two full windows are needed for a variance), or the
/// arrivals are unsorted.
pub fn fit_arrival_process(arrivals: &[f64], horizon_s: f64, window_s: f64) -> FittedArrivals {
    assert!(window_s > 0.0, "window must be positive, got {window_s}");
    assert!(
        horizon_s >= 2.0 * window_s,
        "need at least two windows: horizon {horizon_s}, window {window_s}"
    );
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival times must be sorted"
    );
    let n_windows = (horizon_s / window_s).floor() as usize;
    let mut counts = vec![0u64; n_windows];
    for &t in arrivals {
        if t < 0.0 {
            continue;
        }
        let i = (t / window_s) as usize;
        if i < n_windows {
            counts[i] += 1;
        }
    }
    let n = n_windows as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    FittedArrivals {
        rate: mean / window_s,
        dispersion: if mean > 0.0 { var / mean } else { 1.0 },
        window_s,
        windows: n_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{sample_gamma_renewal_arrivals, sample_poisson_arrivals};
    use crate::trace::Trace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn poisson_fits_as_poisson() {
        let trace = Trace::constant(500.0, 120.0);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let fit = fit_arrival_process(&arrivals, 120.0, 0.5);
        assert!((fit.rate - 500.0).abs() < 15.0, "rate {}", fit.rate);
        assert!(fit.is_poissonian(0.15), "dispersion {}", fit.dispersion);
        assert_eq!(fit.to_process(0.15).name(), "poisson");
    }

    #[test]
    fn bursty_renewal_fits_as_overdispersed() {
        // Gamma renewals with shape 0.25: CV = 2 inter-arrivals, so
        // window counts are over-dispersed.
        let trace = Trace::constant(500.0, 120.0);
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let arrivals = sample_gamma_renewal_arrivals(&trace, 0.25, &mut rng);
        let fit = fit_arrival_process(&arrivals, 120.0, 0.5);
        assert!(fit.dispersion > 1.5, "dispersion {}", fit.dispersion);
        assert_eq!(fit.to_process(0.15).name(), "negative-binomial");
        // The fitted process reproduces the observed rate.
        assert!((fit.to_process(0.15).rate() - fit.rate).abs() < 1e-9);
    }

    #[test]
    fn smooth_renewal_falls_back_to_poisson() {
        // Shape 4: smoother than Poisson — under-dispersed counts have
        // no analytic model here, so Poisson is the stand-in.
        let trace = Trace::constant(500.0, 120.0);
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let arrivals = sample_gamma_renewal_arrivals(&trace, 4.0, &mut rng);
        let fit = fit_arrival_process(&arrivals, 120.0, 0.5);
        assert!(fit.dispersion < 0.6, "dispersion {}", fit.dispersion);
        assert_eq!(fit.to_process(0.15).name(), "poisson");
    }

    #[test]
    fn empty_stream_is_degenerate() {
        let fit = fit_arrival_process(&[], 10.0, 1.0);
        assert_eq!(fit.rate, 0.0);
        assert_eq!(fit.dispersion, 1.0);
        assert_eq!(fit.windows, 10);
    }

    #[test]
    #[should_panic(expected = "at least two windows")]
    fn rejects_short_horizon() {
        let _ = fit_arrival_process(&[0.1], 1.0, 0.8);
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn rejects_unsorted_arrivals() {
        let _ = fit_arrival_process(&[2.0, 1.0], 10.0, 1.0);
    }
}
