//! Online arrival-drift detection: traffic regimes and regime-change
//! events.
//!
//! RAMSIS's offline policies are only correct for the arrival model they
//! were solved against (paper §3.1.1: the MDP transitions come from
//! `PF(k, T)`). This module watches the *observed* arrival stream and
//! decides, online, which **regime** it is in — a (rate bin, dispersion
//! class) pair over a [`RegimeGrid`] — by periodically re-fitting a
//! sliding window of arrival times through the moment-matching
//! [`crate::fit::fit_arrival_process`].
//!
//! Estimation noise must not cause policy flapping, so a regime change
//! is only *committed* after three defenses in series:
//!
//! 1. **Hysteresis** — leaving the active rate bin requires the fitted
//!    rate to clear the bin edge by a margin, and leaving a dispersion
//!    class uses separate enter/exit thresholds (Schmitt trigger).
//! 2. **Confirmation** — the same candidate regime must be observed on
//!    several consecutive re-fits.
//! 3. **Cooldown** — after a swap, no further swap commits for a fixed
//!    interval.
//!
//! The committed [`RegimeChange`] carries the detection delay (first
//! sighting of the candidate to commit), which the simulator surfaces in
//! its `AdaptiveStats`.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::fit::{fit_arrival_process, FittedArrivals};

/// Dispersion class of the window counts: Poissonian (variance ≈ mean)
/// or bursty (over-dispersed, variance > mean — fit by the negative
/// binomial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DispersionClass {
    /// Counts consistent with a Poisson process.
    Poisson,
    /// Over-dispersed counts (bursty traffic).
    Bursty,
}

impl DispersionClass {
    /// Short lowercase label (`"poisson"` / `"bursty"`).
    pub fn label(&self) -> &'static str {
        match self {
            Self::Poisson => "poisson",
            Self::Bursty => "bursty",
        }
    }
}

/// A traffic regime: which rate bin of the grid the load falls in, and
/// the dispersion class of its counts. Policy libraries are keyed by
/// this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegimeKey {
    /// Index into [`RegimeGrid::rate_edges_qps`]; `edges.len()` means
    /// the rate exceeds every edge (outside the designed grid).
    pub rate_bin: usize,
    /// Dispersion class of the window counts.
    pub dispersion: DispersionClass,
}

impl RegimeKey {
    /// Convenience constructor.
    pub fn new(rate_bin: usize, dispersion: DispersionClass) -> Self {
        Self {
            rate_bin,
            dispersion,
        }
    }
}

/// The regime discretization: rate-bin upper edges plus the dispersion
/// Schmitt-trigger thresholds and the rate hysteresis margin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeGrid {
    /// Upper edges of the rate bins, QPS, strictly ascending. A rate
    /// `r` falls in the first bin whose edge is `>= r`; rates beyond
    /// the last edge map to bin `edges.len()` (outside the grid).
    pub rate_edges_qps: Vec<f64>,
    /// Dispersion at or above which counts classify as bursty when the
    /// previous class was Poisson.
    pub bursty_enter: f64,
    /// Dispersion at or below which counts classify back to Poisson
    /// when the previous class was bursty. Must be `< bursty_enter`.
    pub bursty_exit: f64,
    /// Relative margin a fitted rate must clear a bin edge by before
    /// the rate bin changes (0.1 = 10% past the edge).
    pub rate_hysteresis: f64,
}

impl RegimeGrid {
    /// A grid over the given bin edges with the default Schmitt
    /// thresholds (enter 1.8, exit 1.4 — the enter side sits ~3σ above
    /// the Poisson dispersion estimate for ≳30 windows) and 10% rate
    /// hysteresis.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, not strictly ascending, or contains
    /// non-positive or non-finite values.
    pub fn new(rate_edges_qps: Vec<f64>) -> Self {
        let grid = Self {
            rate_edges_qps,
            bursty_enter: 1.8,
            bursty_exit: 1.4,
            rate_hysteresis: 0.1,
        };
        grid.validate();
        grid
    }

    fn validate(&self) {
        assert!(
            !self.rate_edges_qps.is_empty(),
            "grid needs at least one bin"
        );
        for w in self.rate_edges_qps.windows(2) {
            assert!(w[0] < w[1], "bin edges must be strictly ascending");
        }
        for &e in &self.rate_edges_qps {
            assert!(
                e.is_finite() && e > 0.0,
                "bin edges must be positive, got {e}"
            );
        }
        assert!(
            self.bursty_exit < self.bursty_enter,
            "need exit < enter for hysteresis, got {} >= {}",
            self.bursty_exit,
            self.bursty_enter
        );
        assert!(
            (0.0..1.0).contains(&self.rate_hysteresis),
            "rate hysteresis must be in [0, 1), got {}",
            self.rate_hysteresis
        );
    }

    /// Overrides the dispersion Schmitt thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `exit < enter`.
    pub fn with_dispersion_thresholds(mut self, enter: f64, exit: f64) -> Self {
        self.bursty_enter = enter;
        self.bursty_exit = exit;
        self.validate();
        self
    }

    /// Overrides the rate hysteresis margin.
    ///
    /// # Panics
    ///
    /// Panics unless the margin is in `[0, 1)`.
    pub fn with_rate_hysteresis(mut self, margin: f64) -> Self {
        self.rate_hysteresis = margin;
        self.validate();
        self
    }

    /// Number of in-grid rate bins (the out-of-grid bin is extra).
    pub fn n_bins(&self) -> usize {
        self.rate_edges_qps.len()
    }

    /// The rate bin a rate falls in with no hysteresis: the first bin
    /// whose upper edge covers it, or `n_bins()` beyond the last edge.
    pub fn rate_bin(&self, rate_qps: f64) -> usize {
        self.rate_edges_qps.partition_point(|&edge| edge < rate_qps)
    }

    /// The design rate of an in-grid bin — its upper edge (a policy
    /// solved there covers every load in the bin); `None` for the
    /// out-of-grid bin.
    pub fn design_rate_qps(&self, rate_bin: usize) -> Option<f64> {
        self.rate_edges_qps.get(rate_bin).copied()
    }

    /// Whether a key addresses a bin beyond the designed grid.
    pub fn out_of_grid(&self, key: RegimeKey) -> bool {
        key.rate_bin >= self.n_bins()
    }

    /// Every in-grid regime key, both dispersion classes, sorted.
    pub fn all_keys(&self) -> Vec<RegimeKey> {
        let mut keys = Vec::with_capacity(self.n_bins() * 2);
        for bin in 0..self.n_bins() {
            keys.push(RegimeKey::new(bin, DispersionClass::Poisson));
            keys.push(RegimeKey::new(bin, DispersionClass::Bursty));
        }
        keys
    }

    /// Human-readable label for a key, e.g. `"le180qps-poisson"` or
    /// `"gt280qps-bursty"` for the out-of-grid bin.
    pub fn label(&self, key: RegimeKey) -> String {
        match self.design_rate_qps(key.rate_bin) {
            Some(edge) => format!("le{edge:.0}qps-{}", key.dispersion.label()),
            None => format!(
                "gt{:.0}qps-{}",
                self.rate_edges_qps.last().expect("grid is never empty"),
                key.dispersion.label()
            ),
        }
    }

    /// Classifies a fitted (rate, dispersion) into a regime, applying
    /// hysteresis relative to `previous` (pass `None` for the initial,
    /// margin-free classification).
    pub fn classify(
        &self,
        rate_qps: f64,
        dispersion: f64,
        previous: Option<RegimeKey>,
    ) -> RegimeKey {
        let Some(prev) = previous else {
            return RegimeKey::new(
                self.rate_bin(rate_qps),
                if dispersion >= self.bursty_enter {
                    DispersionClass::Bursty
                } else {
                    DispersionClass::Poisson
                },
            );
        };
        let class = match prev.dispersion {
            DispersionClass::Poisson if dispersion >= self.bursty_enter => DispersionClass::Bursty,
            DispersionClass::Bursty if dispersion <= self.bursty_exit => DispersionClass::Poisson,
            unchanged => unchanged,
        };
        RegimeKey::new(self.bin_with_hysteresis(rate_qps, prev.rate_bin), class)
    }

    fn bin_with_hysteresis(&self, rate_qps: f64, prev: usize) -> usize {
        let naive = self.rate_bin(rate_qps);
        if naive == prev {
            return prev;
        }
        if naive > prev {
            // Moving up: clear the previous bin's upper edge by the
            // margin (prev < n_bins() since naive > prev).
            let edge = self.rate_edges_qps[prev];
            if rate_qps > edge * (1.0 + self.rate_hysteresis) {
                naive
            } else {
                prev
            }
        } else {
            // Moving down: drop below the previous bin's lower edge by
            // the margin. prev == 0 cannot move down.
            let lower = self.rate_edges_qps[prev - 1];
            if rate_qps < lower * (1.0 - self.rate_hysteresis) {
                naive
            } else {
                prev
            }
        }
    }
}

/// Tuning for the [`DriftDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftDetectorConfig {
    /// Sliding history of arrival times retained, seconds.
    pub window_s: f64,
    /// Minimum spacing between re-fits, seconds.
    pub refit_interval_s: f64,
    /// Count-bucket length the moment-matching fit uses, seconds. Must
    /// allow at least two buckets inside `window_s`.
    pub fit_window_s: f64,
    /// Minimum time between committed swaps, seconds.
    pub cooldown_s: f64,
    /// Consecutive re-fits that must agree on a candidate regime before
    /// a swap commits (≥ 1).
    pub confirm_refits: u32,
    /// Below this many arrivals in the sliding history a re-fit is
    /// skipped (the estimate would be all noise) and any pending
    /// candidate is cleared.
    pub min_arrivals: usize,
}

impl Default for DriftDetectorConfig {
    fn default() -> Self {
        Self {
            window_s: 8.0,
            refit_interval_s: 1.0,
            fit_window_s: 0.25,
            cooldown_s: 4.0,
            confirm_refits: 2,
            min_arrivals: 40,
        }
    }
}

impl DriftDetectorConfig {
    fn validate(&self) {
        assert!(
            self.window_s.is_finite() && self.window_s > 0.0,
            "window must be positive"
        );
        assert!(
            self.refit_interval_s.is_finite() && self.refit_interval_s > 0.0,
            "refit interval must be positive"
        );
        assert!(
            self.fit_window_s > 0.0 && self.window_s >= 2.0 * self.fit_window_s,
            "the sliding window must hold at least two fit windows: {} vs {}",
            self.window_s,
            self.fit_window_s
        );
        assert!(
            self.cooldown_s.is_finite() && self.cooldown_s >= 0.0,
            "cooldown must be non-negative"
        );
        assert!(
            self.confirm_refits >= 1,
            "need at least one confirming re-fit"
        );
    }
}

/// A committed regime change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeChange {
    /// Commit time, seconds.
    pub at_s: f64,
    /// The regime left behind.
    pub from: RegimeKey,
    /// The regime now active.
    pub to: RegimeKey,
    /// Fitted rate at commit, QPS.
    pub fitted_rate_qps: f64,
    /// Fitted dispersion at commit.
    pub fitted_dispersion: f64,
    /// Time from the re-fit that first sighted the candidate to this
    /// commit (confirmation + cooldown latency).
    pub detection_delay_s: f64,
}

/// The online drift detector: a sliding window of arrival times,
/// periodic re-fits, and debounced regime-change events.
///
/// Feed it [`Self::record_arrival`] for every arrival and poll
/// [`Self::observe`] at the times the caller acts (the adaptive scheme
/// calls it on every arrival); a returned [`RegimeChange`] means the
/// active regime just swapped. Fully deterministic: same arrival stream
/// and observation times reproduce the same events.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    grid: RegimeGrid,
    config: DriftDetectorConfig,
    history: VecDeque<f64>,
    active: RegimeKey,
    /// `(key, first sighting time, consecutive confirmations)`.
    candidate: Option<(RegimeKey, f64, u32)>,
    next_refit_s: f64,
    last_swap_s: f64,
    refits: u64,
    last_fit: Option<FittedArrivals>,
}

impl DriftDetector {
    /// Creates a detector starting in `initial`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (see [`DriftDetectorConfig`]).
    pub fn new(grid: RegimeGrid, config: DriftDetectorConfig, initial: RegimeKey) -> Self {
        config.validate();
        Self {
            grid,
            config,
            history: VecDeque::new(),
            active: initial,
            candidate: None,
            next_refit_s: config.refit_interval_s,
            last_swap_s: f64::NEG_INFINITY,
            refits: 0,
            last_fit: None,
        }
    }

    /// The currently active regime.
    pub fn active(&self) -> RegimeKey {
        self.active
    }

    /// The grid regimes are classified over.
    pub fn grid(&self) -> &RegimeGrid {
        &self.grid
    }

    /// How many re-fits have run.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// The most recent fit, if any re-fit has run with enough data.
    pub fn last_fit(&self) -> Option<FittedArrivals> {
        self.last_fit
    }

    /// Records one arrival at time `now` (seconds, non-decreasing).
    pub fn record_arrival(&mut self, now: f64) {
        self.history.push_back(now);
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        let horizon = now - self.config.window_s;
        while let Some(&front) = self.history.front() {
            if front < horizon {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// Re-fits the sliding window if the re-fit interval has elapsed,
    /// and returns a committed regime change if the debounced candidate
    /// cleared hysteresis, confirmation, and cooldown.
    pub fn observe(&mut self, now: f64) -> Option<RegimeChange> {
        if now < self.next_refit_s {
            return None;
        }
        self.next_refit_s = now + self.config.refit_interval_s;
        self.evict(now);
        if self.history.len() < self.config.min_arrivals {
            self.candidate = None;
            return None;
        }
        // Fit over [now - horizon, now): shift arrivals so the fit's
        // origin is the window start. Early in the run the history only
        // spans [0, now), so the horizon is clipped to the elapsed time
        // — otherwise the leading empty buckets would drag the rate
        // down (the same cold-start bias the LoadMonitor guards
        // against).
        let horizon = self.config.window_s.min(now);
        if horizon < 2.0 * self.config.fit_window_s {
            return None;
        }
        let start = now - horizon;
        let shifted: Vec<f64> = self.history.iter().map(|&t| t - start).collect();
        let Ok(fit) = fit_arrival_process(&shifted, horizon, self.config.fit_window_s) else {
            self.candidate = None;
            return None;
        };
        self.refits += 1;
        self.last_fit = Some(fit);

        let observed = self
            .grid
            .classify(fit.rate, fit.dispersion, Some(self.active));
        if observed == self.active {
            self.candidate = None;
            return None;
        }
        let (first_seen, confirmations) = match self.candidate {
            Some((key, first, n)) if key == observed => (first, n + 1),
            _ => (now, 1),
        };
        self.candidate = Some((observed, first_seen, confirmations));
        if confirmations < self.config.confirm_refits
            || now - self.last_swap_s < self.config.cooldown_s
        {
            return None;
        }
        let change = RegimeChange {
            at_s: now,
            from: self.active,
            to: observed,
            fitted_rate_qps: fit.rate,
            fitted_dispersion: fit.dispersion,
            detection_delay_s: now - first_seen,
        };
        self.active = observed;
        self.candidate = None;
        self.last_swap_s = now;
        Some(change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{sample_gamma_renewal_arrivals, sample_poisson_arrivals};
    use crate::trace::Trace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn grid() -> RegimeGrid {
        RegimeGrid::new(vec![120.0, 180.0, 280.0])
    }

    /// Drives the detector over an arrival stream, observing at every
    /// arrival, and returns the committed changes.
    fn drive(detector: &mut DriftDetector, arrivals: &[f64]) -> Vec<RegimeChange> {
        let mut changes = Vec::new();
        for &t in arrivals {
            detector.record_arrival(t);
            if let Some(c) = detector.observe(t) {
                changes.push(c);
            }
        }
        changes
    }

    #[test]
    fn rate_bins_partition_the_axis() {
        let g = grid();
        assert_eq!(g.n_bins(), 3);
        assert_eq!(g.rate_bin(50.0), 0);
        assert_eq!(g.rate_bin(120.0), 0);
        assert_eq!(g.rate_bin(121.0), 1);
        assert_eq!(g.rate_bin(250.0), 2);
        assert_eq!(g.rate_bin(300.0), 3); // out of grid
        assert_eq!(g.design_rate_qps(1), Some(180.0));
        assert_eq!(g.design_rate_qps(3), None);
        assert!(g.out_of_grid(RegimeKey::new(3, DispersionClass::Poisson)));
        assert_eq!(g.all_keys().len(), 6);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let g = grid();
        assert_eq!(
            g.label(RegimeKey::new(0, DispersionClass::Poisson)),
            "le120qps-poisson"
        );
        assert_eq!(
            g.label(RegimeKey::new(2, DispersionClass::Bursty)),
            "le280qps-bursty"
        );
        assert_eq!(
            g.label(RegimeKey::new(3, DispersionClass::Poisson)),
            "gt280qps-poisson"
        );
        let labels: Vec<String> = g.all_keys().into_iter().map(|k| g.label(k)).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn classification_hysteresis_resists_edge_noise() {
        let g = grid();
        let at = |rate: f64, prev: usize| {
            g.classify(
                rate,
                1.0,
                Some(RegimeKey::new(prev, DispersionClass::Poisson)),
            )
            .rate_bin
        };
        // Just past the 120 edge but within the 10% margin: stays.
        assert_eq!(at(125.0, 0), 0);
        // Past the margin: moves.
        assert_eq!(at(140.0, 0), 1);
        // Falling back just below the edge stays until 10% clear of it.
        assert_eq!(at(115.0, 1), 1);
        assert_eq!(at(100.0, 1), 0);
        // Out-of-grid bin can return once 10% below the last edge.
        assert_eq!(at(300.0, 3), 3);
        assert_eq!(at(240.0, 3), 2);
    }

    #[test]
    fn dispersion_schmitt_trigger() {
        let g = grid();
        let class = |d: f64, prev: DispersionClass| {
            g.classify(100.0, d, Some(RegimeKey::new(0, prev)))
                .dispersion
        };
        use DispersionClass::*;
        assert_eq!(class(1.5, Poisson), Poisson); // below enter
        assert_eq!(class(1.9, Poisson), Bursty); // above enter
        assert_eq!(class(1.5, Bursty), Bursty); // above exit: stays
        assert_eq!(class(1.3, Bursty), Poisson); // below exit
    }

    #[test]
    fn steady_traffic_commits_no_changes() {
        let trace = Trace::constant(100.0, 60.0);
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut det = DriftDetector::new(
            grid(),
            DriftDetectorConfig::default(),
            RegimeKey::new(0, DispersionClass::Poisson),
        );
        let changes = drive(&mut det, &arrivals);
        assert!(changes.is_empty(), "changes: {changes:?}");
        assert!(det.refits() > 40);
        let fit = det.last_fit().expect("refits ran");
        assert!((fit.rate - 100.0).abs() < 25.0, "rate {}", fit.rate);
    }

    #[test]
    fn rate_step_is_detected_with_bounded_latency() {
        // 100 QPS for 20 s, then a step to 250 QPS.
        let trace =
            Trace::from_interval_qps(&[100.0, 250.0], 20.0, crate::trace::TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut det = DriftDetector::new(
            grid(),
            DriftDetectorConfig::default(),
            RegimeKey::new(0, DispersionClass::Poisson),
        );
        let changes = drive(&mut det, &arrivals);
        assert!(!changes.is_empty(), "step not detected");
        let last = changes.last().unwrap();
        assert_eq!(last.to.rate_bin, 2, "250 QPS lands in the le280 bin");
        assert_eq!(last.to.dispersion, DispersionClass::Poisson);
        assert_eq!(det.active(), last.to);
        // Detected within the sliding window plus debounce slack of the
        // step at t = 20.
        assert!(
            last.at_s > 20.0 && last.at_s < 35.0,
            "commit at {}",
            last.at_s
        );
        for c in &changes {
            assert!(c.detection_delay_s >= 0.0);
        }
    }

    #[test]
    fn dispersion_shift_is_detected() {
        // Same 200 QPS rate throughout, but counts turn bursty at 30 s.
        let half = Trace::constant(200.0, 30.0);
        let mut rng = ChaCha8Rng::seed_from_u64(45);
        let mut arrivals = sample_poisson_arrivals(&half, &mut rng);
        let bursty: Vec<f64> = sample_gamma_renewal_arrivals(&half, 0.25, &mut rng)
            .into_iter()
            .map(|t| t + 30.0)
            .collect();
        arrivals.extend(bursty);
        let mut det = DriftDetector::new(
            grid(),
            DriftDetectorConfig::default(),
            RegimeKey::new(2, DispersionClass::Poisson),
        );
        let changes = drive(&mut det, &arrivals);
        assert!(
            changes
                .iter()
                .any(|c| c.to.dispersion == DispersionClass::Bursty),
            "dispersion shift missed: {changes:?}"
        );
        assert_eq!(det.active().dispersion, DispersionClass::Bursty);
    }

    #[test]
    fn cooldown_spaces_out_swaps() {
        // A stream that alternates rate every 3 s tries to flap; the
        // 4 s cooldown forces at least that much spacing between
        // commits.
        let qps: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 100.0 } else { 250.0 })
            .collect();
        let trace = Trace::from_interval_qps(&qps, 3.0, crate::trace::TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let mut det = DriftDetector::new(
            grid(),
            DriftDetectorConfig::default(),
            RegimeKey::new(0, DispersionClass::Poisson),
        );
        let changes = drive(&mut det, &arrivals);
        for w in changes.windows(2) {
            assert!(
                w[1].at_s - w[0].at_s >= 4.0 - 1e-9,
                "swaps {} s apart",
                w[1].at_s - w[0].at_s
            );
        }
    }

    #[test]
    fn detector_is_deterministic() {
        let trace =
            Trace::from_interval_qps(&[100.0, 250.0], 15.0, crate::trace::TraceKind::Custom);
        let mut rng = ChaCha8Rng::seed_from_u64(49);
        let arrivals = sample_poisson_arrivals(&trace, &mut rng);
        let run = || {
            let mut det = DriftDetector::new(
                grid(),
                DriftDetectorConfig::default(),
                RegimeKey::new(0, DispersionClass::Poisson),
            );
            drive(&mut det, &arrivals)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sparse_traffic_skips_refits() {
        let mut det = DriftDetector::new(
            grid(),
            DriftDetectorConfig::default(),
            RegimeKey::new(0, DispersionClass::Poisson),
        );
        // Ten arrivals over 10 s: below min_arrivals, so never a fit.
        for i in 0..10 {
            det.record_arrival(i as f64);
            assert!(det.observe(i as f64).is_none());
        }
        assert_eq!(det.refits(), 0);
        assert!(det.last_fit().is_none());
    }

    #[test]
    fn config_and_grid_round_trip_serde() {
        let cfg = DriftDetectorConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(
            serde_json::from_str::<DriftDetectorConfig>(&json).unwrap(),
            cfg
        );
        let g = grid()
            .with_dispersion_thresholds(2.0, 1.2)
            .with_rate_hysteresis(0.2);
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(serde_json::from_str::<RegimeGrid>(&json).unwrap(), g);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn grid_rejects_unsorted_edges() {
        let _ = RegimeGrid::new(vec![200.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "at least two fit windows")]
    fn detector_rejects_degenerate_config() {
        let cfg = DriftDetectorConfig {
            window_s: 0.3,
            fit_window_s: 0.25,
            ..DriftDetectorConfig::default()
        };
        let _ = DriftDetector::new(grid(), cfg, RegimeKey::new(0, DispersionClass::Poisson));
    }
}
