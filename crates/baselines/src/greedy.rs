//! A greedy deadline-aware selector (MDInference \[33\] / ALERT \[48\]
//! style, paper §8).
//!
//! "These systems greedily select the most accurate model given the
//! current arrived queries and their deadlines, which is not sufficient
//! to avoid latency SLO violations under varying query load and
//! stochastic inter-arrival patterns." This selector is the cleanest
//! ablation of RAMSIS's contribution: it sees the same queue state
//! (count + earliest slack) and picks the most accurate model that fits
//! the *current* deadline — with no model of future arrivals. Under
//! bursts its optimistic choices back future queries up.

use ramsis_profiles::WorkerProfile;
use ramsis_sim::scheme::SelectionContext;
use ramsis_sim::{Routing, Selection, ServingScheme};

/// The greedy most-accurate-that-fits selector.
pub struct GreedyDeadline {
    profile: WorkerProfile,
    routing: Routing,
}

impl GreedyDeadline {
    /// Creates the selector with per-worker round-robin routing (so the
    /// comparison against RAMSIS isolates the *selection* policy).
    pub fn new(profile: &WorkerProfile) -> Self {
        Self {
            profile: profile.clone(),
            routing: Routing::PerWorkerRoundRobin,
        }
    }

    /// The most accurate Pareto model serving `n` queries within
    /// `slack_s`; the fastest model when nothing fits (serve late,
    /// like RAMSIS's forced action).
    pub fn model_for(&self, n: u32, slack_s: f64) -> usize {
        self.profile
            .pareto_models()
            .iter()
            .rev() // descending accuracy
            .copied()
            .find(|&m| self.profile.latency(m, n).is_some_and(|l| l <= slack_s))
            .unwrap_or_else(|| self.profile.fastest_model())
    }
}

impl ServingScheme for GreedyDeadline {
    fn name(&self) -> &str {
        "GreedyDeadline"
    }

    fn routing(&self) -> Routing {
        self.routing
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let n = ctx.queued as u32;
        Selection::Serve {
            model: self.model_for(n, ctx.earliest_slack_s),
            batch: n,
        }
    }
    /// Stateless: selection is a pure function of configuration and
    /// context, so checkpointed runs capture nothing.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn full_slack_picks_most_accurate_feasible() {
        let p = profile();
        let g = GreedyDeadline::new(&p);
        let m = g.model_for(1, 0.15);
        // The most accurate Pareto model with batch-1 latency <= 150 ms.
        for &other in p.pareto_models() {
            if p.latency(other, 1).unwrap() <= 0.15 {
                assert!(p.accuracy(m) >= p.accuracy(other));
            }
        }
        assert!(p.accuracy(m) > p.accuracy(p.fastest_model()));
    }

    #[test]
    fn exhausted_slack_serves_late_on_fastest() {
        let p = profile();
        let g = GreedyDeadline::new(&p);
        assert_eq!(g.model_for(3, 0.0), p.fastest_model());
        assert_eq!(g.model_for(3, -1.0), p.fastest_model());
    }

    #[test]
    fn bigger_batches_force_faster_models() {
        let p = profile();
        let g = GreedyDeadline::new(&p);
        let m1 = g.model_for(1, 0.1);
        let m8 = g.model_for(8, 0.1);
        assert!(p.accuracy(m8) <= p.accuracy(m1));
    }

    #[test]
    fn ignores_load_entirely() {
        // The defining flaw (§8): the same state yields the same choice
        // no matter the load.
        let p = profile();
        let mut g = GreedyDeadline::new(&p);
        let base = SelectionContext {
            now_s: 0.0,
            load_qps: 10.0,
            queued: 2,
            earliest_slack_s: 0.12,
            worker: 0,
            live_workers: 4,
        };
        let overloaded = SelectionContext {
            load_qps: 100_000.0,
            ..base
        };
        assert_eq!(g.select(&base), g.select(&overloaded));
    }
}
