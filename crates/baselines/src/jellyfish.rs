//! Jellyfish+ (paper §7, extending Jellyfish \[32\] to multiple workers).
//!
//! "Given some query load, Jellyfish+ selects the most accurate model
//! such that the model's average throughput is greater than the
//! anticipated query load, and the model's *inference latency* is less
//! than half the latency SLO. ... Jellyfish+ estimates a model's
//! throughput as the sum of the average profiled throughput among each
//! worker. Workers eagerly grab and service queries from the central
//! queue in batches up to a maximum batch size set according to
//! adaptive batching."

use ramsis_profiles::WorkerProfile;
use ramsis_sim::scheme::SelectionContext;
use ramsis_sim::{Routing, Selection, ServingScheme};

use crate::{adaptive_batch_cap, sustains_load};

/// The Jellyfish+ load-granular selector.
pub struct JellyfishPlus {
    /// Pareto model indices, ascending accuracy.
    candidates: Vec<usize>,
    batch_caps: Vec<u32>,
    workers: usize,
    profile: WorkerProfile,
}

impl JellyfishPlus {
    /// Builds the selector for a worker profile and worker count.
    pub fn new(profile: &WorkerProfile, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let candidates: Vec<usize> = profile.pareto_models().to_vec();
        let batch_caps = (0..profile.n_models())
            .map(|m| adaptive_batch_cap(profile, m))
            .collect();
        Self {
            candidates,
            batch_caps,
            workers,
            profile: profile.clone(),
        }
    }

    /// The model Jellyfish+ would pick at a given anticipated load: the
    /// most accurate Pareto model meeting the half-SLO latency rule and
    /// the summed-throughput feasibility rule; the fastest model when
    /// nothing is feasible (it never drops queries, §7).
    pub fn model_for_load(&self, load_qps: f64) -> usize {
        let half_slo = self.profile.slo() / 2.0;
        self.candidates
            .iter()
            .rev() // Pareto front is sorted ascending accuracy.
            .copied()
            .find(|&m| {
                let batch1_ok = self.profile.latency(m, 1).is_some_and(|l| l < half_slo);
                batch1_ok && sustains_load(&self.profile, m, self.workers, load_qps)
            })
            .unwrap_or_else(|| self.profile.fastest_model())
    }
}

impl ServingScheme for JellyfishPlus {
    fn name(&self) -> &str {
        "Jellyfish+"
    }

    fn routing(&self) -> Routing {
        Routing::Central
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let model = self.model_for_load(ctx.load_qps);
        Selection::Serve {
            model,
            batch: (ctx.queued as u32).min(self.batch_caps[model]),
        }
    }
    /// Stateless: selection is a pure function of configuration and
    /// context, so checkpointed runs capture nothing.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(300),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn model_choice_degrades_with_load() {
        let p = profile();
        let jf = JellyfishPlus::new(&p, 10);
        let m_low = jf.model_for_load(50.0);
        let m_mid = jf.model_for_load(600.0);
        let m_high = jf.model_for_load(5_000.0);
        assert!(p.accuracy(m_low) >= p.accuracy(m_mid));
        assert!(p.accuracy(m_mid) >= p.accuracy(m_high));
        // Monstrous overload: only the fastest model remains.
        assert_eq!(jf.model_for_load(1e9), p.fastest_model());
    }

    #[test]
    fn choice_is_load_granular() {
        // The defining limitation (§2.2): the load uniquely determines
        // the model, regardless of instantaneous queue state.
        let p = profile();
        let mut jf = JellyfishPlus::new(&p, 10);
        let base = SelectionContext {
            now_s: 0.0,
            load_qps: 400.0,
            queued: 1,
            earliest_slack_s: 0.3,
            worker: 0,
            live_workers: 4,
        };
        let Selection::Serve { model: m1, .. } = jf.select(&base) else {
            panic!("must serve");
        };
        // Same load, totally different queue states: same model.
        let Selection::Serve { model: m2, .. } = jf.select(&SelectionContext {
            queued: 30,
            earliest_slack_s: 0.01,
            ..base
        }) else {
            panic!("must serve");
        };
        assert_eq!(m1, m2);
    }

    #[test]
    fn half_slo_rule_excludes_slow_models() {
        let p = profile();
        let jf = JellyfishPlus::new(&p, 1_000);
        // Even with absurd worker counts (throughput never binds), the
        // selected model must have batch-1 latency < SLO/2.
        let m = jf.model_for_load(1.0);
        assert!(p.latency(m, 1).unwrap() < p.slo() / 2.0);
    }

    #[test]
    fn more_workers_allow_more_accurate_models() {
        let p = profile();
        let load = 2_000.0;
        let few = JellyfishPlus::new(&p, 10).model_for_load(load);
        let many = JellyfishPlus::new(&p, 100).model_for_load(load);
        assert!(p.accuracy(many) >= p.accuracy(few));
    }

    #[test]
    fn batches_capped_by_adaptive_rule() {
        let p = profile();
        let mut jf = JellyfishPlus::new(&p, 10);
        let ctx = SelectionContext {
            now_s: 0.0,
            load_qps: 100.0,
            queued: 10_000,
            earliest_slack_s: 0.3,
            worker: 0,
            live_workers: 4,
        };
        let Selection::Serve { model, batch } = jf.select(&ctx) else {
            panic!("must serve");
        };
        let cap = adaptive_batch_cap(&p, model);
        assert_eq!(batch, cap);
    }
}
