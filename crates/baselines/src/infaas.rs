//! An INFaaS-style selector (paper appendix §H).
//!
//! INFaaS \[38\] "requires accuracy and latency SLOs from the application
//! and its model selector and scheduler chooses the lowest cost model
//! (i.e., typically lowest latency) that meets both". The paper adapts
//! it to its evaluation "by sweeping a range of accuracy targets equal
//! to the set of accuracies achievable by each inference model", and
//! observes that "its objective to minimize latency effectively
//! minimizes accuracy": it always selects the minimally accurate model
//! meeting the target. This module reproduces that adapted selector so
//! the §H comparison can be regenerated.

use ramsis_profiles::WorkerProfile;
use ramsis_sim::scheme::SelectionContext;
use ramsis_sim::{Routing, Selection, ServingScheme};

use crate::{adaptive_batch_cap, sustains_load};

/// The INFaaS-style accuracy-SLO-driven selector.
pub struct InfaasStyle {
    profile: WorkerProfile,
    workers: usize,
    accuracy_slo: f64,
    batch_caps: Vec<u32>,
}

impl InfaasStyle {
    /// Builds the selector for an accuracy SLO (percent).
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `accuracy_slo` is not in
    /// `(0, 100]`.
    pub fn new(profile: &WorkerProfile, workers: usize, accuracy_slo: f64) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(
            accuracy_slo > 0.0 && accuracy_slo <= 100.0,
            "accuracy SLO must be in (0, 100], got {accuracy_slo}"
        );
        let batch_caps = (0..profile.n_models())
            .map(|m| adaptive_batch_cap(profile, m))
            .collect();
        Self {
            profile: profile.clone(),
            workers,
            accuracy_slo,
            batch_caps,
        }
    }

    /// The accuracy target in force.
    pub fn accuracy_slo(&self) -> f64 {
        self.accuracy_slo
    }

    /// The lowest-latency model meeting the accuracy SLO and the load;
    /// relaxes to the lowest-latency model meeting the accuracy SLO
    /// alone under overload, and to the fastest model if even that
    /// fails.
    pub fn model_for_load(&self, load_qps: f64) -> usize {
        let meets_accuracy = |m: usize| self.profile.accuracy(m) >= self.accuracy_slo;
        // Pareto front is sorted ascending latency: the first qualifying
        // entry is the lowest-latency (lowest-cost) choice.
        self.profile
            .pareto_models()
            .iter()
            .copied()
            .filter(|&m| meets_accuracy(m))
            .find(|&m| sustains_load(&self.profile, m, self.workers, load_qps))
            .or_else(|| {
                self.profile
                    .pareto_models()
                    .iter()
                    .copied()
                    .find(|&m| meets_accuracy(m))
            })
            .unwrap_or_else(|| self.profile.fastest_model())
    }
}

impl ServingScheme for InfaasStyle {
    fn name(&self) -> &str {
        "INFaaS-style"
    }

    fn routing(&self) -> Routing {
        Routing::Central
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let model = self.model_for_load(ctx.load_qps);
        Selection::Serve {
            model,
            batch: (ctx.queued as u32).min(self.batch_caps[model]),
        }
    }
    /// Stateless: selection is a pure function of configuration and
    /// context, so checkpointed runs capture nothing.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(300),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn picks_minimally_accurate_model_meeting_target() {
        let p = profile();
        // The §H observation: INFaaS selects the *least* accurate model
        // that satisfies the accuracy target.
        let s = InfaasStyle::new(&p, 100, 75.0);
        let m = s.model_for_load(10.0);
        assert!(p.accuracy(m) >= 75.0);
        // No Pareto model with lower latency also meets the target.
        for &other in p.pareto_models() {
            if p.latency(other, 1).unwrap() < p.latency(m, 1).unwrap() {
                assert!(p.accuracy(other) < 75.0);
            }
        }
    }

    #[test]
    fn higher_target_means_slower_model() {
        let p = profile();
        let lo = InfaasStyle::new(&p, 100, 70.0).model_for_load(10.0);
        let hi = InfaasStyle::new(&p, 100, 85.0).model_for_load(10.0);
        assert!(p.latency(lo, 1).unwrap() < p.latency(hi, 1).unwrap());
        assert!(p.accuracy(hi) >= 85.0);
    }

    #[test]
    fn overload_relaxes_throughput_not_accuracy() {
        let p = profile();
        let s = InfaasStyle::new(&p, 2, 85.0);
        // 2 workers cannot sustain 5,000 QPS with an 85%-accurate model,
        // but the accuracy SLO still binds.
        let m = s.model_for_load(5_000.0);
        assert!(p.accuracy(m) >= 85.0);
    }

    #[test]
    fn impossible_accuracy_falls_back_to_fastest() {
        let p = profile();
        let s = InfaasStyle::new(&p, 10, 99.9);
        assert_eq!(s.model_for_load(100.0), p.fastest_model());
    }

    #[test]
    #[should_panic(expected = "accuracy SLO")]
    fn rejects_bad_target() {
        let p = profile();
        let _ = InfaasStyle::new(&p, 1, 0.0);
    }
}
