//! State-of-the-art load-granular MS&S baselines (paper §7).
//!
//! All baselines share the eager central-queue architecture: "workers
//! eagerly grab and service queries from the central queue in batches up
//! to a maximum batch size set according to adaptive batching \[7\]", and
//! all are *load-granular* — the anticipated query load uniquely
//! determines the selected model, and selections change only when the
//! load changes (§2.2).
//!
//! - [`jellyfish::JellyfishPlus`] — Jellyfish \[32\] extended with
//!   multi-worker load balancing: the most accurate model whose summed
//!   average throughput sustains the load and whose inference latency is
//!   below half the SLO (headroom for worst-case queueing).
//! - [`model_switching::ModelSwitching`] — selects the most accurate
//!   model whose offline-profiled 99th-percentile *response* latency
//!   under the anticipated load is below the SLO; the offline profiling
//!   sweep itself is reproduced in
//!   [`model_switching::profile_response_latency`].
//! - [`infaas::InfaasStyle`] — the §H adaptation: given an accuracy SLO,
//!   the lowest-latency (lowest-cost) model that satisfies both the
//!   accuracy target and the load.
//! - [`fixed::FixedModel`] — pin one model (used by the ModelSwitching
//!   profiler and as an ablation control).
//! - [`greedy::GreedyDeadline`] — the MDInference/ALERT-style greedy
//!   selector of §8: most accurate model fitting the current deadline,
//!   with no model of future arrivals. Its burst behaviour is the
//!   cleanest ablation of RAMSIS's inter-arrival awareness.

pub mod fixed;
pub mod greedy;
pub mod infaas;
pub mod jellyfish;
pub mod model_switching;

pub use fixed::FixedModel;
pub use greedy::GreedyDeadline;
pub use infaas::InfaasStyle;
pub use jellyfish::JellyfishPlus;
pub use model_switching::{profile_response_latency, ModelSwitching, ResponseLatencyTable};

use ramsis_profiles::WorkerProfile;

/// The adaptive batch cap shared by the eager baselines: the largest
/// batch of `model` whose profile latency stays within half the SLO
/// (falling back to single-query batches when even batch 1 exceeds it).
pub(crate) fn adaptive_batch_cap(profile: &WorkerProfile, model: usize) -> u32 {
    profile
        .max_batch_within(model, profile.slo() / 2.0)
        .unwrap_or(1)
}

/// Shared feasibility rule: whether `model`'s summed average throughput
/// across `workers` workers sustains `load_qps` with every batch kept
/// within half the SLO.
pub(crate) fn sustains_load(
    profile: &WorkerProfile,
    model: usize,
    workers: usize,
    load_qps: f64,
) -> bool {
    profile
        .max_throughput_within(model, profile.slo() / 2.0)
        .is_some_and(|per_worker| per_worker * workers as f64 >= load_qps)
}
