//! A fixed-model scheme: always the same model, eager adaptive batching.
//!
//! Not a baseline from the paper by itself, but the building block of
//! the ModelSwitching offline profiling sweep (each profiled point pins
//! one model) and a useful ablation control.

use ramsis_profiles::WorkerProfile;
use ramsis_sim::{Routing, Selection, ServingScheme};

use crate::adaptive_batch_cap;

/// Serves every query with one pinned model.
pub struct FixedModel {
    name: String,
    model: usize,
    batch_cap: u32,
}

impl FixedModel {
    /// Pins `model` (catalog index) with the shared adaptive batch cap.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range for the profile.
    pub fn new(profile: &WorkerProfile, model: usize) -> Self {
        assert!(
            model < profile.n_models(),
            "model index {model} out of range"
        );
        Self {
            name: format!("fixed:{}", profile.models[model].name),
            model,
            batch_cap: adaptive_batch_cap(profile, model),
        }
    }

    /// The pinned model index.
    pub fn model(&self) -> usize {
        self.model
    }

    /// The adaptive batch cap in force.
    pub fn batch_cap(&self) -> u32 {
        self.batch_cap
    }
}

impl ServingScheme for FixedModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn routing(&self) -> Routing {
        Routing::Central
    }

    fn select(&mut self, ctx: &ramsis_sim::scheme::SelectionContext) -> Selection {
        Selection::Serve {
            model: self.model,
            batch: (ctx.queued as u32).min(self.batch_cap),
        }
    }
    /// Stateless: selection is a pure function of configuration and
    /// context, so checkpointed runs capture nothing.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_sim::scheme::SelectionContext;
    use std::time::Duration;

    fn profile() -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn serves_pinned_model_with_capped_batch() {
        let p = profile();
        let m = p.fastest_model();
        let mut s = FixedModel::new(&p, m);
        assert!(s.name().contains("shufflenet"));
        let ctx = SelectionContext {
            now_s: 0.0,
            load_qps: 100.0,
            queued: 500,
            earliest_slack_s: 0.1,
            worker: 0,
            live_workers: 4,
        };
        let Selection::Serve { model, batch } = s.select(&ctx) else {
            panic!("must serve");
        };
        assert_eq!(model, m);
        assert_eq!(batch, s.batch_cap());
        assert!(batch >= 1);
        // Small queues are served in full.
        let small = SelectionContext { queued: 1, ..ctx };
        assert!(matches!(
            s.select(&small),
            Selection::Serve { batch: 1, .. }
        ));
    }

    #[test]
    fn slow_model_batch_cap_is_one() {
        let p = profile();
        // The slowest Pareto model exceeds SLO/2 even at batch 1 for the
        // 150 ms SLO, so the cap falls back to 1.
        let slow = *p.pareto_models().last().unwrap();
        let s = FixedModel::new(&p, slow);
        assert_eq!(s.batch_cap(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_model() {
        let p = profile();
        let _ = FixedModel::new(&p, 999);
    }
}
