//! ModelSwitching (paper §7, after Zhang et al. \[57\]).
//!
//! "ModelSwitching measures the *response latency* of each model under
//! anticipated query loads offline. Given some query load, it selects
//! the most accurate model such that the model's 99th percentile
//! response latency is less than the latency SLO under the anticipated
//! query load. ... The response latency of each model is collected in an
//! offline profiling step over the relevant range of query load (i.e.,
//! 400 to 4000 QPS in increments of 100 QPS) on all evaluated resource
//! configurations."
//!
//! The profiling step is reproduced here by running the simulator with a
//! pinned model ([`crate::fixed::FixedModel`]) per (model, load) point —
//! the Rust analogue of the artifact's `MS_gen.py`.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;
use ramsis_sim::scheme::SelectionContext;
use ramsis_sim::{Routing, Selection, ServingScheme, Simulation, SimulationConfig};
use ramsis_workload::{LoadMonitor, Trace};

use crate::adaptive_batch_cap;
use crate::fixed::FixedModel;

/// The offline p99-response-latency table: one row per profiled load,
/// one column per model (Pareto-front models only; a dominated model is
/// never the most accurate feasible choice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseLatencyTable {
    /// Worker count the sweep was run with.
    pub workers: usize,
    /// Profiled loads, ascending (QPS).
    pub loads: Vec<f64>,
    /// Profiled model indices (into the worker profile).
    pub models: Vec<usize>,
    /// `p99[i][j]`: p99 response latency (seconds) of `models[j]` at
    /// `loads[i]`.
    pub p99: Vec<Vec<f64>>,
}

impl ResponseLatencyTable {
    /// p99 response latency of `model` at the smallest profiled load
    /// `≥ load_qps` (conservative); the largest profiled load if the
    /// anticipated load exceeds the sweep.
    pub fn lookup(&self, model: usize, load_qps: f64) -> Option<f64> {
        let j = self.models.iter().position(|&m| m == model)?;
        let i = self
            .loads
            .partition_point(|&l| l < load_qps - 1e-9)
            .min(self.loads.len() - 1);
        Some(self.p99[i][j])
    }
}

/// Runs the offline ModelSwitching profiling sweep: for every
/// (Pareto model, load) pair, simulate `duration_s` seconds of Poisson
/// traffic with the model pinned and record the p99 response latency.
///
/// # Panics
///
/// Panics if `loads` is empty or not ascending, or `duration_s` is not
/// positive.
pub fn profile_response_latency(
    profile: &WorkerProfile,
    workers: usize,
    loads: &[f64],
    duration_s: f64,
    seed: u64,
) -> ResponseLatencyTable {
    assert!(!loads.is_empty(), "need at least one load");
    assert!(
        loads.windows(2).all(|w| w[0] < w[1]),
        "loads must be strictly ascending"
    );
    assert!(duration_s > 0.0, "duration must be positive");
    let models: Vec<usize> = profile.pareto_models().to_vec();
    let mut p99 = Vec::with_capacity(loads.len());
    for (li, &load) in loads.iter().enumerate() {
        let trace = Trace::constant(load, duration_s);
        let mut row = Vec::with_capacity(models.len());
        for (mi, &m) in models.iter().enumerate() {
            let sim = Simulation::new(
                profile,
                SimulationConfig::new(workers, profile.slo())
                    .seeded(seed ^ ((li as u64) << 32) ^ mi as u64),
            )
            .expect("valid simulation config");
            let mut scheme = FixedModel::new(profile, m);
            let mut monitor = LoadMonitor::new();
            let report = sim.run(&trace, &mut scheme, &mut monitor);
            row.push(report.p99_response_s);
        }
        p99.push(row);
    }
    ResponseLatencyTable {
        workers,
        loads: loads.to_vec(),
        models,
        p99,
    }
}

/// The ModelSwitching load-granular selector.
pub struct ModelSwitching {
    table: ResponseLatencyTable,
    batch_caps: Vec<u32>,
    slo: f64,
    fastest: usize,
    accuracies: Vec<f64>,
}

impl ModelSwitching {
    /// Builds the selector from an offline profiling table.
    pub fn new(profile: &WorkerProfile, table: ResponseLatencyTable) -> Self {
        let batch_caps = (0..profile.n_models())
            .map(|m| adaptive_batch_cap(profile, m))
            .collect();
        let accuracies = (0..profile.n_models())
            .map(|m| profile.accuracy(m))
            .collect();
        Self {
            table,
            batch_caps,
            slo: profile.slo(),
            fastest: profile.fastest_model(),
            accuracies,
        }
    }

    /// Convenience: run the offline sweep and build the selector.
    pub fn profiled(
        profile: &WorkerProfile,
        workers: usize,
        loads: &[f64],
        duration_s: f64,
        seed: u64,
    ) -> Self {
        let table = profile_response_latency(profile, workers, loads, duration_s, seed);
        Self::new(profile, table)
    }

    /// The model ModelSwitching would pick at a given anticipated load:
    /// the most accurate profiled model whose p99 response latency is
    /// below the SLO; the fastest model when nothing qualifies.
    pub fn model_for_load(&self, load_qps: f64) -> usize {
        self.table
            .models
            .iter()
            .copied()
            .filter(|&m| {
                self.table
                    .lookup(m, load_qps)
                    .is_some_and(|p99| p99 < self.slo)
            })
            .max_by(|&a, &b| {
                self.accuracies[a]
                    .partial_cmp(&self.accuracies[b])
                    .expect("accuracies are finite")
            })
            .unwrap_or(self.fastest)
    }

    /// The offline table (for inspection and serialization).
    pub fn table(&self) -> &ResponseLatencyTable {
        &self.table
    }
}

impl ServingScheme for ModelSwitching {
    fn name(&self) -> &str {
        "ModelSwitching"
    }

    fn routing(&self) -> Routing {
        Routing::Central
    }

    fn select(&mut self, ctx: &SelectionContext) -> Selection {
        let model = self.model_for_load(ctx.load_qps);
        Selection::Serve {
            model,
            batch: (ctx.queued as u32).min(self.batch_caps[model]),
        }
    }
    /// Stateless: selection is a pure function of configuration and
    /// context, so checkpointed runs capture nothing.
    fn checkpoint_state(&self) -> Option<serde::Value> {
        Some(serde::Value::Null)
    }

    fn restore_state(&mut self, _state: &serde::Value) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(300),
                ProfilerConfig::default(),
            )
        })
    }

    fn table() -> &'static ResponseLatencyTable {
        use std::sync::OnceLock;
        static TABLE: OnceLock<ResponseLatencyTable> = OnceLock::new();
        TABLE.get_or_init(|| {
            profile_response_latency(profile(), 10, &[100.0, 400.0, 800.0, 1_200.0], 5.0, 3)
        })
    }

    #[test]
    fn p99_grows_with_load() {
        let t = table();
        // For each model, p99 response latency is (weakly) increasing in
        // load once queueing kicks in; compare the endpoints.
        for j in 0..t.models.len() {
            let lo = t.p99[0][j];
            let hi = t.p99[t.loads.len() - 1][j];
            assert!(
                hi >= lo * 0.9,
                "model {} p99 shrank implausibly: {lo} -> {hi}",
                t.models[j]
            );
        }
    }

    #[test]
    fn slow_models_saturate_at_high_load() {
        let t = table();
        // The most accurate Pareto model cannot sustain 1,200 QPS on 10
        // workers: its p99 at the top load must blow past the SLO.
        let j = t.models.len() - 1;
        assert!(
            t.p99[t.loads.len() - 1][j] > profile().slo(),
            "p99 = {}",
            t.p99[t.loads.len() - 1][j]
        );
    }

    #[test]
    fn lookup_rounds_load_up() {
        let t = table();
        let m = t.models[0];
        // 250 QPS looks up the 400-QPS row.
        assert_eq!(t.lookup(m, 250.0), Some(t.p99[1][0]));
        // Exact hits stay put; beyond-range clamps to the last row.
        assert_eq!(t.lookup(m, 100.0), Some(t.p99[0][0]));
        assert_eq!(t.lookup(m, 99_999.0), Some(t.p99[3][0]));
        assert_eq!(t.lookup(999, 100.0), None);
    }

    #[test]
    fn model_choice_degrades_with_load() {
        let ms = ModelSwitching::new(profile(), table().clone());
        let p = profile();
        let m_low = ms.model_for_load(100.0);
        let m_high = ms.model_for_load(1_200.0);
        assert!(p.accuracy(m_low) >= p.accuracy(m_high));
        // At the lightest profiled load a clearly more accurate model
        // than the fastest is feasible (10 QPS per worker).
        assert!(
            p.accuracy(m_low) > p.accuracy(p.fastest_model()) + 10.0,
            "picked {} at light load",
            p.models[m_low].name
        );
    }

    #[test]
    fn serde_round_trip() {
        let t = table();
        let json = serde_json::to_string(t).unwrap();
        let back: ResponseLatencyTable = serde_json::from_str(&json).unwrap();
        assert_eq!(*t, back);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_loads() {
        let _ = profile_response_latency(profile(), 2, &[400.0, 100.0], 1.0, 0);
    }
}
