//! Accuracy-latency Pareto-front computation (paper §4.3.3).
//!
//! RAMSIS prunes from its MDP action space every model that is not on
//! the Pareto front of accuracy and latency: a dominated model is never
//! a useful selection because some other model is at least as accurate
//! and at least as fast.

/// Returns the indices of the non-dominated points, sorted by ascending
/// latency.
///
/// A point `(latency, accuracy)` is *dominated* when another point has
/// `latency ≤` and `accuracy ≥` it, with at least one strict inequality.
/// Duplicate points keep their first occurrence only.
///
/// # Panics
///
/// Panics if any coordinate is NaN.
///
/// # Examples
///
/// ```
/// use ramsis_profiles::pareto_front;
/// // (latency, accuracy): the middle point is dominated by the first.
/// let pts = [(1.0, 80.0), (2.0, 75.0), (3.0, 90.0)];
/// assert_eq!(pareto_front(&pts), vec![0, 2]);
/// ```
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    for &(l, a) in points {
        assert!(!l.is_nan() && !a.is_nan(), "Pareto points must not be NaN");
    }
    // Sort by latency ascending; break ties by accuracy descending so the
    // best of equal-latency points is seen first.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| {
        points[i]
            .0
            .partial_cmp(&points[j].0)
            .expect("no NaN")
            .then(points[j].1.partial_cmp(&points[i].1).expect("no NaN"))
    });
    let mut front = Vec::new();
    let mut best_accuracy = f64::NEG_INFINITY;
    for &i in &order {
        if points[i].1 > best_accuracy {
            front.push(i);
            best_accuracy = points[i].1;
        }
    }
    front
}

/// Reference `O(n²)` dominance check used by the property tests.
///
/// Exposed (rather than test-private) so integration tests and benches
/// can validate against it too.
pub fn is_dominated(points: &[(f64, f64)], i: usize) -> bool {
    let (l, a) = points[i];
    points
        .iter()
        .enumerate()
        .any(|(j, &(lj, aj))| j != i && lj <= l && aj >= a && (lj < l || aj > a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[(5.0, 50.0)]), vec![0]);
    }

    #[test]
    fn monotone_chain_is_fully_on_front() {
        let pts: Vec<_> = (0..5).map(|i| (i as f64, i as f64 * 10.0)).collect();
        assert_eq!(pareto_front(&pts), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn anti_monotone_chain_keeps_only_first() {
        // Increasing latency with decreasing accuracy: only the fastest
        // (and most accurate) point survives.
        let pts: Vec<_> = (0..5).map(|i| (i as f64, 100.0 - i as f64)).collect();
        assert_eq!(pareto_front(&pts), vec![0]);
    }

    #[test]
    fn duplicate_points_keep_one() {
        let pts = [(1.0, 50.0), (1.0, 50.0), (2.0, 60.0)];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 2);
        assert!(front.contains(&2));
    }

    #[test]
    fn equal_latency_keeps_most_accurate() {
        let pts = [(1.0, 50.0), (1.0, 70.0)];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan() {
        let _ = pareto_front(&[(f64::NAN, 1.0)]);
    }

    proptest! {
        #[test]
        fn front_matches_naive_dominance(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..60)
        ) {
            let front = pareto_front(&pts);
            // Everything on the front is non-dominated (modulo exact
            // duplicates, which keep a single representative).
            for &i in &front {
                let strictly_dominated = pts.iter().enumerate().any(|(j, &(lj, aj))| {
                    j != i && lj <= pts[i].0 && aj >= pts[i].1 && (lj < pts[i].0 || aj > pts[i].1)
                });
                prop_assert!(!strictly_dominated, "front point {i} is dominated");
            }
            // Everything off the front is dominated or a duplicate of a
            // front point.
            for i in 0..pts.len() {
                if front.contains(&i) {
                    continue;
                }
                let covered = is_dominated(&pts, i)
                    || front.iter().any(|&j| pts[j] == pts[i]);
                prop_assert!(covered, "off-front point {i} is neither dominated nor duplicate");
            }
        }

        #[test]
        fn front_is_sorted_and_strictly_improving(
            pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60)
        ) {
            let front = pareto_front(&pts);
            for w in front.windows(2) {
                prop_assert!(pts[w[0]].0 < pts[w[1]].0, "latency must strictly increase");
                prop_assert!(pts[w[0]].1 < pts[w[1]].1, "accuracy must strictly increase");
            }
        }
    }
}
