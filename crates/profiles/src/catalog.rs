//! Model catalogs: the paper's two task model sets and synthetic variants.
//!
//! The image-classification catalog mirrors Fig. 3's 26 TorchVision
//! ImageNet models (11 EfficientNets, 5 ResNets, 2 ResNeXts, GoogLeNet,
//! 2 MobileNets, Inception, 4 ShuffleNets); the text-classification
//! catalog mirrors Fig. 9's 5 BERT variants scored on GLUE-MNLI.
//! Accuracies are the published numbers for the real checkpoints;
//! latency parameters are calibrated so the batch-1 p95 scatter and
//! Pareto-front membership match the figures (9 of 26 image models on
//! the front) and so the maximum SLO-feasible batch size lands near the
//! paper's observed `B_w = 29` at the 500 ms SLO.

use serde::{Deserialize, Serialize};

/// The inference task a catalog serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// ImageNet image classification (Fig. 3).
    ImageClassification,
    /// GLUE-MNLI text classification (Fig. 9).
    TextClassification,
}

impl Task {
    /// The paper's three representative latency SLOs for this task, in
    /// seconds (§7: image {150, 300, 500} ms; text {100, 200, 300} ms).
    pub fn paper_slos(self) -> [f64; 3] {
        match self {
            Task::ImageClassification => [0.150, 0.300, 0.500],
            Task::TextClassification => [0.100, 0.200, 0.300],
        }
    }

    /// Short name used in result files (matches the artifact's naming).
    pub fn name(self) -> &'static str {
        match self {
            Task::ImageClassification => "image",
            Task::TextClassification => "text",
        }
    }
}

/// A trained model's accuracy and parametric latency behaviour.
///
/// The mean batch-`b` inference latency (including transfer and
/// pre-processing, as in Fig. 3's caption) is modelled as
///
/// ```text
/// mean(b) = overhead_s + per_item_s · b^batch_exponent
/// ```
///
/// with `batch_exponent = 1` (linear, i.e. no batching economy — typical
/// for CPU inference) unless a model says otherwise. Individual
/// invocations add truncated-normal noise with `latency_std_s`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model identifier, e.g. `"efficientnet_b2"`.
    pub name: String,
    /// Test-set accuracy in percent (ImageNet top-1 or GLUE-MNLI).
    pub accuracy: f64,
    /// Fixed dispatch/transfer overhead in seconds.
    pub overhead_s: f64,
    /// Per-query compute cost in seconds.
    pub per_item_s: f64,
    /// Batching-economy exponent (1 = linear scaling).
    pub batch_exponent: f64,
    /// Standard deviation of per-invocation latency noise, seconds.
    pub latency_std_s: f64,
}

impl ModelSpec {
    /// Creates a spec with linear batch scaling and the default noise.
    pub fn new(name: &str, accuracy: f64, batch1_latency_s: f64) -> Self {
        const DEFAULT_OVERHEAD_S: f64 = 0.002;
        const DEFAULT_STD_S: f64 = 0.005;
        assert!(
            batch1_latency_s > DEFAULT_OVERHEAD_S,
            "batch-1 latency must exceed the dispatch overhead"
        );
        Self {
            name: name.to_owned(),
            accuracy,
            overhead_s: DEFAULT_OVERHEAD_S,
            per_item_s: batch1_latency_s - DEFAULT_OVERHEAD_S,
            batch_exponent: 1.0,
            latency_std_s: DEFAULT_STD_S,
        }
    }

    /// Fits a linear latency spec to measured mean latencies per batch
    /// size (`batch_means[b - 1]` is the mean at batch `b`), by least
    /// squares over `mean(b) = overhead + per_item · b`.
    ///
    /// Used when profiles come from real measurements (the artifact's
    /// raw sample files) rather than a parametric catalog: the fitted
    /// spec powers the simulator's stochastic-latency mode.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two batch means are given, any is
    /// non-finite, or the fit degenerates (non-positive per-item cost).
    pub fn fit(name: &str, accuracy: f64, batch_means: &[f64], latency_std_s: f64) -> Self {
        assert!(
            batch_means.len() >= 2,
            "need at least two batch sizes to fit, got {}",
            batch_means.len()
        );
        assert!(
            batch_means.iter().all(|m| m.is_finite() && *m > 0.0),
            "batch means must be positive and finite"
        );
        let n = batch_means.len() as f64;
        let mean_x = (n + 1.0) / 2.0;
        let mean_y = batch_means.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, &y) in batch_means.iter().enumerate() {
            let x = (i + 1) as f64;
            sxy += (x - mean_x) * (y - mean_y);
            sxx += (x - mean_x) * (x - mean_x);
        }
        let per_item = sxy / sxx;
        assert!(
            per_item > 0.0,
            "fit degenerated: non-positive per-item cost {per_item}"
        );
        // Clamp the intercept at zero: a tiny negative intercept is
        // measurement noise, not negative overhead.
        let overhead = (mean_y - per_item * mean_x).max(0.0);
        Self {
            name: name.to_owned(),
            accuracy,
            overhead_s: overhead,
            per_item_s: per_item,
            batch_exponent: 1.0,
            latency_std_s: latency_std_s.max(0.0),
        }
    }

    /// Mean inference latency for a batch of `b` queries, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn mean_latency(&self, b: u32) -> f64 {
        assert!(b > 0, "batch size must be positive");
        self.overhead_s + self.per_item_s * (b as f64).powf(self.batch_exponent)
    }

    /// Mean throughput (queries per second) at batch size `b`.
    pub fn throughput(&self, b: u32) -> f64 {
        b as f64 / self.mean_latency(b)
    }
}

/// An ordered set of models available to a worker for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCatalog {
    /// The task every model in the catalog serves.
    pub task: Task,
    /// The model set; order is the catalog's canonical model indexing.
    pub models: Vec<ModelSpec>,
}

impl ModelCatalog {
    /// The 26 TorchVision ImageNet models of Fig. 3.
    ///
    /// Accuracies are TorchVision's published top-1 numbers. Batch-1
    /// latencies are calibrated to the figure's p95 scatter (4-CPU GCP n1
    /// workers; the slowest model is just under 300 ms so the paper's
    /// "middle SLO = slowest model rounded up to the nearest 100 ms"
    /// rule yields 300 ms, and 1.5× rounds up to 500 ms).
    pub fn torchvision_image() -> Self {
        let specs = [
            // (name, top-1 accuracy %, batch-1 mean latency seconds)
            ("shufflenet_v2_x0_5", 60.55, 0.0145),
            ("shufflenet_v2_x1_0", 69.36, 0.021),
            ("shufflenet_v2_x1_5", 73.00, 0.028),
            ("shufflenet_v2_x2_0", 76.23, 0.036),
            ("mobilenet_v3_small", 67.67, 0.023),
            ("mobilenet_v3_large", 74.04, 0.026),
            ("googlenet", 69.78, 0.042),
            ("resnet18", 69.76, 0.038),
            ("resnet34", 73.31, 0.058),
            ("resnet50", 76.13, 0.082),
            ("resnet101", 77.37, 0.132),
            ("resnet152", 78.31, 0.182),
            ("resnext50_32x4d", 77.62, 0.102),
            ("resnext101_32x8d", 79.31, 0.205),
            ("inception_v3", 77.29, 0.096),
            ("efficientnet_b0", 77.69, 0.033),
            ("efficientnet_b1", 78.64, 0.062),
            ("efficientnet_b2", 80.61, 0.056),
            ("efficientnet_b3", 82.01, 0.092),
            ("efficientnet_b4", 83.38, 0.124),
            ("efficientnet_b5", 83.44, 0.163),
            ("efficientnet_b6", 84.01, 0.212),
            ("efficientnet_b7", 84.12, 0.272),
            ("efficientnet_v2_s", 84.23, 0.112),
            ("efficientnet_v2_m", 85.11, 0.192),
            ("efficientnet_v2_l", 85.81, 0.292),
        ];
        Self {
            task: Task::ImageClassification,
            models: specs
                .iter()
                .map(|&(name, acc, lat)| ModelSpec::new(name, acc, lat))
                .collect(),
        }
    }

    /// The 5 HuggingFace BERT variants of Fig. 9 (appendix §B), scored
    /// on GLUE-MNLI.
    ///
    /// The slowest model (bert-base) is just under 200 ms so the paper's
    /// SLO derivation yields the text SLO set {100, 200, 300} ms.
    pub fn bert_text() -> Self {
        let specs = [
            ("bert_tiny", 70.2, 0.0055),
            ("bert_mini", 74.8, 0.019),
            ("bert_small", 77.6, 0.036),
            ("bert_medium", 80.5, 0.072),
            ("bert_base", 84.1, 0.142),
        ];
        Self {
            task: Task::TextClassification,
            models: specs
                .iter()
                .map(|&(name, acc, lat)| ModelSpec::new(name, acc, lat))
                .collect(),
        }
    }

    /// The reduced 3-model image catalog of appendix §E: the minimum
    /// latency model, a medium one, and a long-latency one.
    pub fn reduced_image_3() -> Self {
        let full = Self::torchvision_image();
        let keep = ["shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s"];
        let models = full
            .models
            .into_iter()
            .filter(|m| keep.contains(&m.name.as_str()))
            .collect::<Vec<_>>();
        assert_eq!(
            models.len(),
            3,
            "reduced catalog must keep exactly 3 models"
        );
        Self {
            task: Task::ImageClassification,
            models,
        }
    }

    /// The synthetic high-model-count catalog of §7.3.2: the accuracy-
    /// latency Pareto front of `base` (the paper's low-model-count
    /// scenario, M = 9 for the image task) plus linear interpolants along
    /// the front in `accuracy_step` percent increments. The result is a
    /// strict superset of the front models, as the paper requires.
    ///
    /// With the image catalog and the paper's 0.5% step this produces 59
    /// models (9 front models + 50 interpolants); the paper reports
    /// "M = 60", a one-model difference that comes down to endpoint
    /// counting and does not affect the experiment's shape.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy_step` is not strictly positive or the front
    /// has fewer than two models.
    pub fn synthetic_interpolated(base: &Self, accuracy_step: f64) -> Self {
        assert!(
            accuracy_step > 0.0,
            "accuracy step must be positive, got {accuracy_step}"
        );
        let points: Vec<(f64, f64)> = base
            .models
            .iter()
            .map(|m| (m.mean_latency(1), m.accuracy))
            .collect();
        let front = crate::pareto::pareto_front(&points);
        assert!(
            front.len() >= 2,
            "need at least two Pareto models to interpolate"
        );
        // Front models ordered by ascending latency (hence accuracy).
        let front_pts: Vec<(f64, f64)> = front
            .iter()
            .map(|&i| (base.models[i].mean_latency(1), base.models[i].accuracy))
            .collect();
        let lo_acc = front_pts.first().expect("front non-empty").1;
        let hi_acc = front_pts.last().expect("front non-empty").1;

        let mut models: Vec<ModelSpec> = front.iter().map(|&i| base.models[i].clone()).collect();
        let mut acc = lo_acc + accuracy_step;
        let mut idx = 0usize;
        while acc < hi_acc - 1e-9 {
            // Find the front segment containing `acc`.
            while front_pts[idx + 1].1 < acc {
                idx += 1;
            }
            let (l0, a0) = front_pts[idx];
            let (l1, a1) = front_pts[idx + 1];
            let t = (acc - a0) / (a1 - a0);
            let lat = l0 + t * (l1 - l0);
            // Skip interpolants that collide with an original accuracy.
            if !models.iter().any(|m| (m.accuracy - acc).abs() < 1e-9) {
                models.push(ModelSpec::new(&format!("synthetic_{acc:.2}"), acc, lat));
            }
            acc += accuracy_step;
        }
        models.sort_by(|a, b| {
            a.accuracy
                .partial_cmp(&b.accuracy)
                .expect("accuracies are finite")
        });
        Self {
            task: base.task,
            models,
        }
    }

    /// Number of models in the catalog.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Looks a model up by name.
    pub fn find(&self, name: &str) -> Option<(usize, &ModelSpec)> {
        self.models.iter().enumerate().find(|(_, m)| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::pareto_front;

    #[test]
    fn image_catalog_has_26_models() {
        let c = ModelCatalog::torchvision_image();
        assert_eq!(c.len(), 26);
        // Family counts from §7.
        let count = |prefix: &str| {
            c.models
                .iter()
                .filter(|m| m.name.starts_with(prefix))
                .count()
        };
        assert_eq!(count("efficientnet"), 11);
        assert_eq!(count("resnet"), 5);
        assert_eq!(count("resnext"), 2);
        assert_eq!(count("shufflenet"), 4);
        assert_eq!(count("mobilenet"), 2);
        assert_eq!(count("googlenet"), 1);
        assert_eq!(count("inception"), 1);
    }

    #[test]
    fn image_pareto_front_has_9_models() {
        // §4.3.3: "Of the 26 models, 17 are not on the Pareto Front and
        // would be pruned, leaving 9."
        let c = ModelCatalog::torchvision_image();
        let pts: Vec<_> = c
            .models
            .iter()
            .map(|m| (m.mean_latency(1), m.accuracy))
            .collect();
        let front = pareto_front(&pts);
        assert_eq!(
            front.len(),
            9,
            "front: {:?}",
            front.iter().map(|&i| &c.models[i].name).collect::<Vec<_>>()
        );
        // The §E reduced set members must all be on the front.
        for name in ["shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s"] {
            let (i, _) = c.find(name).unwrap();
            assert!(front.contains(&i), "{name} should be on the front");
        }
    }

    #[test]
    fn image_slo_derivation_matches_paper() {
        // Middle SLO = slowest model's latency rounded up to 100 ms = 300;
        // high SLO = 1.5x slowest rounded up = 500.
        let c = ModelCatalog::torchvision_image();
        let slowest = c
            .models
            .iter()
            .map(|m| m.mean_latency(1))
            .fold(0.0f64, f64::max);
        let middle = (slowest * 10.0).ceil() / 10.0;
        let high = (slowest * 1.5 * 10.0).ceil() / 10.0;
        assert!((middle - 0.3).abs() < 1e-9, "middle={middle}");
        assert!((high - 0.5).abs() < 1e-9, "high={high}");
        assert_eq!(Task::ImageClassification.paper_slos(), [0.15, 0.3, 0.5]);
    }

    #[test]
    fn text_catalog_matches_paper() {
        let c = ModelCatalog::bert_text();
        assert_eq!(c.len(), 5);
        // All five BERT sizes are on the Pareto front (Fig. 9 is monotone).
        let pts: Vec<_> = c
            .models
            .iter()
            .map(|m| (m.mean_latency(1), m.accuracy))
            .collect();
        assert_eq!(pareto_front(&pts).len(), 5);
        // SLO derivation: slowest just under 200 ms.
        let slowest = c
            .models
            .iter()
            .map(|m| m.mean_latency(1))
            .fold(0.0f64, f64::max);
        assert!(slowest < 0.2 && slowest > 0.1);
        assert_eq!(Task::TextClassification.paper_slos(), [0.1, 0.2, 0.3]);
    }

    #[test]
    fn accuracy_ordering_follows_model_size() {
        let c = ModelCatalog::bert_text();
        for pair in c.models.windows(2) {
            assert!(pair[0].accuracy < pair[1].accuracy);
            assert!(pair[0].mean_latency(1) < pair[1].mean_latency(1));
        }
    }

    #[test]
    fn reduced_catalog_spans_latency_range() {
        let c = ModelCatalog::reduced_image_3();
        assert_eq!(c.len(), 3);
        let full = ModelCatalog::torchvision_image();
        let fastest_full = full
            .models
            .iter()
            .map(|m| m.mean_latency(1))
            .fold(f64::INFINITY, f64::min);
        let fastest_reduced = c
            .models
            .iter()
            .map(|m| m.mean_latency(1))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(
            fastest_full, fastest_reduced,
            "minimum-latency model is kept"
        );
    }

    #[test]
    fn synthetic_catalog_counts_near_60() {
        // §7.3.2: 0.5% increments over the image front yield M ≈ 60
        // (59 under our endpoint counting: 9 front models + 50
        // interpolants).
        let base = ModelCatalog::torchvision_image();
        let synth = ModelCatalog::synthetic_interpolated(&base, 0.5);
        assert_eq!(synth.len(), 59, "got {}", synth.len());
        // Strict superset of the low-model-count scenario (the front).
        let pts: Vec<_> = base
            .models
            .iter()
            .map(|m| (m.mean_latency(1), m.accuracy))
            .collect();
        for &i in &pareto_front(&pts) {
            assert!(
                synth.find(&base.models[i].name).is_some(),
                "{} missing",
                base.models[i].name
            );
        }
    }

    #[test]
    fn synthetic_interpolants_lie_between_front_neighbors() {
        let base = ModelCatalog::torchvision_image();
        let synth = ModelCatalog::synthetic_interpolated(&base, 0.5);
        for m in synth
            .models
            .iter()
            .filter(|m| m.name.starts_with("synthetic"))
        {
            // Every interpolant must itself be weakly dominated by no
            // original front model (it sits on a front segment).
            assert!(m.accuracy > 60.0 && m.accuracy < 86.0);
            assert!(m.mean_latency(1) > 0.01 && m.mean_latency(1) < 0.3);
        }
        // Interpolated latencies must increase with accuracy among synthetics.
        let synths: Vec<_> = synth
            .models
            .iter()
            .filter(|m| m.name.starts_with("synthetic"))
            .collect();
        for pair in synths.windows(2) {
            assert!(pair[0].mean_latency(1) <= pair[1].mean_latency(1) + 1e-12);
        }
    }

    #[test]
    fn fit_recovers_linear_parameters() {
        // Exact linear data round-trips through the fit.
        let truth = ModelSpec::new("m", 80.0, 0.050);
        let means: Vec<f64> = (1..=12).map(|b| truth.mean_latency(b)).collect();
        let fitted = ModelSpec::fit("m", 80.0, &means, 0.004);
        assert!((fitted.overhead_s - truth.overhead_s).abs() < 1e-12);
        assert!((fitted.per_item_s - truth.per_item_s).abs() < 1e-12);
        assert_eq!(fitted.latency_std_s, 0.004);
        // Predictions agree everywhere.
        for b in 1..=12 {
            assert!((fitted.mean_latency(b) - truth.mean_latency(b)).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_is_robust_to_noise() {
        let truth = ModelSpec::new("m", 80.0, 0.050);
        // +-2% sawtooth noise.
        let means: Vec<f64> = (1..=16)
            .map(|b| truth.mean_latency(b) * if b % 2 == 0 { 1.02 } else { 0.98 })
            .collect();
        let fitted = ModelSpec::fit("m", 80.0, &means, 0.005);
        assert!(
            (fitted.per_item_s - truth.per_item_s).abs() / truth.per_item_s < 0.05,
            "per-item {} vs {}",
            fitted.per_item_s,
            truth.per_item_s
        );
    }

    #[test]
    #[should_panic(expected = "at least two batch sizes")]
    fn fit_rejects_single_point() {
        let _ = ModelSpec::fit("m", 80.0, &[0.05], 0.0);
    }

    #[test]
    fn mean_latency_is_linear_by_default() {
        let m = ModelSpec::new("m", 80.0, 0.050);
        let l1 = m.mean_latency(1);
        let l2 = m.mean_latency(2);
        let l4 = m.mean_latency(4);
        assert!((l1 - 0.050).abs() < 1e-12);
        // Linear in b beyond the fixed overhead.
        assert!(((l2 - m.overhead_s) - 2.0 * (l1 - m.overhead_s)).abs() < 1e-12);
        assert!(((l4 - m.overhead_s) - 4.0 * (l1 - m.overhead_s)).abs() < 1e-12);
    }

    #[test]
    fn throughput_improves_with_batching_overhead_amortized() {
        let m = ModelSpec::new("m", 80.0, 0.050);
        assert!(m.throughput(8) > m.throughput(1));
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let m = ModelSpec::new("m", 80.0, 0.050);
        let _ = m.mean_latency(0);
    }

    #[test]
    fn find_by_name() {
        let c = ModelCatalog::torchvision_image();
        let (i, m) = c.find("efficientnet_b2").unwrap();
        assert_eq!(m.name, "efficientnet_b2");
        assert_eq!(c.models[i].accuracy, m.accuracy);
        assert!(c.find("nonexistent").is_none());
    }
}
