//! The paper artifact's raw-profile file layout (§A.2.4).
//!
//! "The latency profiles are located in
//! `profiles/MODELNAME/BATCHSIZE.json` where each latency profile is a
//! list of latencies for the model invoked 100 times. The accuracy
//! profiles are ... dictionaries that map model name to its accuracy."
//!
//! This module reads and writes that layout so profiles *measured on a
//! real serving stack* (TorchServe, Triton, ...) can drive policy
//! generation instead of the built-in synthetic catalog — and,
//! conversely, so the synthetic catalog can be exported for inspection.
//! Raw samples are reduced to a [`WorkerProfile`] with the same "p95 of
//! N invocations" pipeline as [`WorkerProfile::build`], and a linear
//! latency spec is least-squares fitted per model
//! ([`crate::catalog::ModelSpec::fit`]) so the simulator's stochastic
//! mode still works on measured data.

use std::collections::BTreeMap;
use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use ramsis_stats::sampling::sample_truncated_normal;
use ramsis_stats::summary::Percentiles;

use crate::catalog::{ModelCatalog, ModelSpec, Task};
use crate::profiler::{BatchProfile, ModelProfile, WorkerProfile};

/// Raw latency samples and accuracies in the artifact's shape.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RawProfiles {
    /// `model name → batch size → latency samples (seconds)`.
    pub latencies: BTreeMap<String, BTreeMap<u32, Vec<f64>>>,
    /// `model name → accuracy (percent)`.
    pub accuracies: BTreeMap<String, f64>,
}

impl RawProfiles {
    /// Synthesizes raw samples from a parametric catalog — the exact
    /// generator behind [`WorkerProfile::build`], exposed so the
    /// artifact layout can be produced without real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` or `invocations` is zero.
    pub fn synthesize(
        catalog: &ModelCatalog,
        max_batch: u32,
        invocations: usize,
        seed: u64,
    ) -> Self {
        assert!(max_batch > 0, "need at least batch size 1");
        assert!(invocations > 0, "need at least one invocation");
        let mut raw = RawProfiles::default();
        for (mi, spec) in catalog.models.iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (mi as u64).wrapping_mul(0x9E37_79B9));
            let mut per_batch = BTreeMap::new();
            for b in 1..=max_batch {
                let mean = spec.mean_latency(b);
                let samples: Vec<f64> = (0..invocations)
                    .map(|_| {
                        sample_truncated_normal(
                            &mut rng,
                            mean,
                            spec.latency_std_s,
                            mean * 0.5,
                            mean + 6.0 * spec.latency_std_s,
                        )
                    })
                    .collect();
                per_batch.insert(b, samples);
            }
            raw.latencies.insert(spec.name.clone(), per_batch);
            raw.accuracies.insert(spec.name.clone(), spec.accuracy);
        }
        raw
    }

    /// Writes the artifact layout under `dir`:
    /// `dir/profiles/MODEL/BATCH.json` (sample lists) and
    /// `dir/accuracies.json` (the accuracy dictionary).
    ///
    /// # Errors
    ///
    /// Returns the first IO or serialization error, with the path.
    pub fn write_dir(&self, dir: &Path) -> Result<(), String> {
        let acc_path = dir.join("accuracies.json");
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let acc_json = serde_json::to_string_pretty(&self.accuracies)
            .map_err(|e| format!("serialize accuracies: {e}"))?;
        std::fs::write(&acc_path, acc_json)
            .map_err(|e| format!("write {}: {e}", acc_path.display()))?;
        for (model, per_batch) in &self.latencies {
            let model_dir = dir.join("profiles").join(model);
            std::fs::create_dir_all(&model_dir)
                .map_err(|e| format!("create {}: {e}", model_dir.display()))?;
            for (batch, samples) in per_batch {
                let path = model_dir.join(format!("{batch}.json"));
                let json = serde_json::to_string(samples)
                    .map_err(|e| format!("serialize {}: {e}", path.display()))?;
                std::fs::write(&path, json)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
            }
        }
        Ok(())
    }

    /// Reads the artifact layout written by [`Self::write_dir`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed file.
    pub fn read_dir(dir: &Path) -> Result<Self, String> {
        let acc_path = dir.join("accuracies.json");
        let acc_text = std::fs::read_to_string(&acc_path)
            .map_err(|e| format!("read {}: {e}", acc_path.display()))?;
        let accuracies: BTreeMap<String, f64> =
            serde_json::from_str(&acc_text).map_err(|e| format!("{}: {e}", acc_path.display()))?;

        let profiles_dir = dir.join("profiles");
        let mut latencies = BTreeMap::new();
        let entries = std::fs::read_dir(&profiles_dir)
            .map_err(|e| format!("read {}: {e}", profiles_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            if !entry.path().is_dir() {
                continue;
            }
            let model = entry.file_name().to_string_lossy().into_owned();
            let mut per_batch = BTreeMap::new();
            for file in std::fs::read_dir(entry.path()).map_err(|e| format!("{model}: {e}"))? {
                let file = file.map_err(|e| e.to_string())?;
                let path = file.path();
                if path.extension().is_none_or(|x| x != "json") {
                    continue;
                }
                let batch: u32 = path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| format!("{}: file name is not a batch size", path.display()))?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let samples: Vec<f64> =
                    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
                per_batch.insert(batch, samples);
            }
            latencies.insert(model, per_batch);
        }
        if latencies.is_empty() {
            return Err(format!(
                "no model directories under {}",
                profiles_dir.display()
            ));
        }
        Ok(Self {
            latencies,
            accuracies,
        })
    }

    /// Reduces the raw samples to a [`WorkerProfile`] for `slo_s`,
    /// taking the given `percentile` (the paper uses 95) of each
    /// (model, batch) sample list, and least-squares fitting a linear
    /// latency spec per model for the simulator's stochastic mode.
    ///
    /// # Errors
    ///
    /// Returns a description when a model lacks samples, an accuracy,
    /// or a contiguous `1..=B` batch range shared by all models.
    pub fn to_worker_profile(
        &self,
        task: Task,
        slo_s: f64,
        percentile: f64,
    ) -> Result<WorkerProfile, String> {
        let mut models = Vec::new();
        for (name, per_batch) in &self.latencies {
            let accuracy = *self
                .accuracies
                .get(name)
                .ok_or_else(|| format!("{name}: no accuracy entry"))?;
            let mut batches = Vec::new();
            let mut means = Vec::new();
            let mut pooled_var = 0.0;
            for (i, (&batch, samples)) in per_batch.iter().enumerate() {
                if batch != i as u32 + 1 {
                    return Err(format!(
                        "{name}: batch sizes must be contiguous from 1, found {batch}"
                    ));
                }
                if samples.is_empty() {
                    return Err(format!("{name}/{batch}: empty sample list"));
                }
                let n = samples.len() as f64;
                let mean = samples.iter().sum::<f64>() / n;
                let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
                let p = Percentiles::from_values(samples.clone())
                    .percentile(percentile)
                    .expect("non-empty");
                batches.push(BatchProfile {
                    batch,
                    mean_s: mean,
                    p95_s: p,
                    std_s: var.sqrt(),
                });
                means.push(mean);
                pooled_var += var;
            }
            if means.len() < 2 {
                return Err(format!("{name}: need at least two batch sizes"));
            }
            let std = (pooled_var / means.len() as f64).sqrt();
            let spec = ModelSpec::fit(name, accuracy, &means, std);
            models.push(ModelProfile {
                name: name.clone(),
                accuracy,
                batches,
                spec,
            });
        }
        WorkerProfile::finalize(task, slo_s, models)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::ProfilerConfig;
    use std::time::Duration;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ramsis_artifact_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn synthesize_write_read_round_trip() {
        let catalog = ModelCatalog::bert_text();
        let raw = RawProfiles::synthesize(&catalog, 6, 40, 7);
        assert_eq!(raw.latencies.len(), 5);
        assert_eq!(raw.accuracies.len(), 5);
        assert_eq!(raw.latencies["bert_tiny"][&3].len(), 40);

        let dir = tempdir("roundtrip");
        raw.write_dir(&dir).unwrap();
        // Spot-check the artifact layout.
        assert!(dir.join("profiles/bert_tiny/1.json").exists());
        assert!(dir.join("profiles/bert_base/6.json").exists());
        assert!(dir.join("accuracies.json").exists());

        let back = RawProfiles::read_dir(&dir).unwrap();
        assert_eq!(raw.accuracies, back.accuracies);
        assert_eq!(raw.latencies.keys().count(), back.latencies.keys().count());
        for (name, per_batch) in &raw.latencies {
            for (batch, samples) in per_batch {
                let got = &back.latencies[name][batch];
                assert_eq!(samples.len(), got.len());
                for (a, b) in samples.iter().zip(got) {
                    assert!((a - b).abs() < 1e-15, "{name}/{batch}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn raw_profile_matches_built_profile() {
        // Reducing synthesized raw samples must reproduce the same
        // profile pipeline as WorkerProfile::build (same seed, same
        // invocation count).
        let catalog = ModelCatalog::bert_text();
        let config = ProfilerConfig::default();
        let built = WorkerProfile::build(&catalog, Duration::from_millis(200), config);
        let raw =
            RawProfiles::synthesize(&catalog, config.max_batch, config.invocations, config.seed);
        let reduced = raw
            .to_worker_profile(Task::TextClassification, 0.2, config.percentile)
            .unwrap();
        assert_eq!(built.n_models(), reduced.n_models());
        assert_eq!(built.max_batch(), reduced.max_batch());
        // Model order differs (BTreeMap alphabetizes), so compare by
        // name: same Pareto membership, same latencies.
        let by_name = |p: &WorkerProfile, name: &str| {
            p.models
                .iter()
                .position(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let built_front: std::collections::BTreeSet<&str> = built
            .pareto_models()
            .iter()
            .map(|&i| built.models[i].name.as_str())
            .collect();
        let reduced_front: std::collections::BTreeSet<&str> = reduced
            .pareto_models()
            .iter()
            .map(|&i| reduced.models[i].name.as_str())
            .collect();
        assert_eq!(built_front, reduced_front);
        for bm in &built.models {
            let ri = by_name(&reduced, &bm.name);
            for b in 1..=built.max_batch() {
                let a = built.latency(by_name(&built, &bm.name), b).unwrap();
                let c = reduced.latency(ri, b).unwrap();
                assert!((a - c).abs() < 1e-12, "{} batch {b}: {a} vs {c}", bm.name);
            }
        }
        // The fitted spec is close to the catalog's parametric truth.
        let truth = &catalog.models[0]; // bert_tiny
        let fitted = &reduced.models[by_name(&reduced, "bert_tiny")].spec;
        assert!(
            (fitted.per_item_s - truth.per_item_s).abs() / truth.per_item_s < 0.05,
            "per-item {} vs {}",
            fitted.per_item_s,
            truth.per_item_s
        );
    }

    #[test]
    fn missing_accuracy_is_reported() {
        let catalog = ModelCatalog::bert_text();
        let mut raw = RawProfiles::synthesize(&catalog, 3, 10, 1);
        raw.accuracies.remove("bert_small");
        let err = raw
            .to_worker_profile(Task::TextClassification, 0.2, 95.0)
            .unwrap_err();
        assert!(err.contains("bert_small"), "{err}");
    }

    #[test]
    fn non_contiguous_batches_rejected() {
        let catalog = ModelCatalog::bert_text();
        let mut raw = RawProfiles::synthesize(&catalog, 4, 10, 1);
        raw.latencies.get_mut("bert_tiny").unwrap().remove(&2);
        let err = raw
            .to_worker_profile(Task::TextClassification, 0.2, 95.0)
            .unwrap_err();
        assert!(err.contains("contiguous"), "{err}");
    }

    #[test]
    fn read_missing_dir_fails_cleanly() {
        let err = RawProfiles::read_dir(Path::new("/nonexistent/ramsis")).unwrap_err();
        assert!(err.contains("accuracies.json"), "{err}");
    }
}
