//! Model zoo and profiling substrate.
//!
//! RAMSIS consumes trained models exclusively through two offline inputs
//! (paper §3.1.1): an *inference accuracy profile* `Accuracy(m)` per model
//! and a *latency profile* `l_w(m, b)` per (worker, model, batch size)
//! triple. The paper's artifact collected these by running 26 TorchVision
//! ImageNet models and 5 HuggingFace BERT models 100 times each on GCP n1
//! CPU VMs and keeping the 95th percentile.
//!
//! We have no GCP VMs or PyTorch runtime, so this crate substitutes a
//! *simulated profiler* over a parametric latency model (see DESIGN.md §2):
//! each [`catalog::ModelSpec`] carries a dispatch overhead, a per-item
//! cost, a batching-efficiency exponent, and a latency noise standard
//! deviation (§7.3.1 reports ~10 ms in the paper's testbed; we default to
//! 5 ms). [`profiler::WorkerProfile::build`] then draws the same "100
//! invocations → p95" reduction as the artifact, deterministically from a
//! seed. Accuracy values are the published top-1 / MNLI numbers for the
//! real models, so the accuracy-latency Pareto fronts of Figs. 3 and 9
//! are preserved in shape: 9 of the 26 image models are on the front, and
//! all 5 BERT variants are.
//!
//! The crate also provides the Pareto-front pruning of §4.3.3, the
//! synthetic 60-model interpolated catalog of §7.3.2, and the reduced
//! 3-model catalog of appendix §E.

pub mod artifact;
pub mod catalog;
pub mod pareto;
pub mod profiler;

pub use artifact::RawProfiles;
pub use catalog::{ModelCatalog, ModelSpec, Task};
pub use pareto::pareto_front;
pub use profiler::{BatchProfile, ModelProfile, ProfilerConfig, WorkerProfile};
