//! Simulated offline profiling: from a catalog to `l_w(m, b)` tables.
//!
//! The paper's artifact profiles every (model, batch size) pair by
//! invoking it 100 times on the target worker type and recording the
//! latency list; the 95th percentile of that list is the "inference
//! latency" used everywhere downstream (Figs. 3 and 9, §4.2.1, and the
//! deterministic-latency simulation mode of §7.3.1). This module
//! reproduces that pipeline over the parametric latency model of
//! [`crate::catalog::ModelSpec`], seeded so profiles are reproducible.
//!
//! Batch sizes are profiled from 1 up to the largest batch any model can
//! serve within the application's latency SLO (`B_w`, §4.2.1), capped by
//! [`ProfilerConfig::max_batch`].

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

use ramsis_stats::sampling::sample_truncated_normal;
use ramsis_stats::summary::Percentiles;

use crate::catalog::{ModelCatalog, ModelSpec, Task};
use crate::pareto::pareto_front;

/// Configuration of the simulated profiling run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Invocations per (model, batch) pair (the artifact uses 100).
    pub invocations: usize,
    /// Percentile reported as the profile latency (the paper uses 95).
    pub percentile: f64,
    /// Hard cap on profiled batch sizes.
    pub max_batch: u32,
    /// RNG seed for the simulated invocations.
    pub seed: u64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            invocations: 100,
            percentile: 95.0,
            max_batch: 64,
            seed: 0x5241_4D53,
        }
    }
}

/// Latency profile of one model at one batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// The batch size `b`.
    pub batch: u32,
    /// Sample mean latency, seconds.
    pub mean_s: f64,
    /// Profile latency (the configured percentile), seconds.
    pub p95_s: f64,
    /// Sample standard deviation, seconds.
    pub std_s: f64,
}

/// Full profile of one model on the worker type: accuracy plus latency
/// per profiled batch size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model identifier.
    pub name: String,
    /// Test-set accuracy in percent.
    pub accuracy: f64,
    /// `batches[b - 1]` is the profile at batch size `b`.
    pub batches: Vec<BatchProfile>,
    /// The underlying parametric spec (used by the simulator's
    /// stochastic-latency mode to redraw invocation latencies).
    pub spec: ModelSpec,
}

/// The offline profiling output for one worker type: everything the
/// policy generator (paper §3.1.1) and simulator need to know about the
/// available models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerProfile {
    /// The task this worker serves.
    pub task: Task,
    /// The application latency SLO, seconds.
    pub slo_s: f64,
    /// Per-model profiles, indexed by catalog model index.
    pub models: Vec<ModelProfile>,
    /// Indices of models on the accuracy-latency Pareto front at batch 1
    /// (§4.3.3), ascending latency.
    pareto: Vec<usize>,
    /// Largest batch size that meets the SLO with any model (`B_w`).
    max_batch: u32,
}

impl WorkerProfile {
    /// Runs the simulated profiler over `catalog` for the given SLO.
    ///
    /// Every model is profiled at batch sizes `1..=B` where `B` is the
    /// smaller of `config.max_batch` and the largest batch whose profile
    /// latency still meets the SLO for at least one model (per §4.2.1,
    /// larger batches are irrelevant: no action could ever select them).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty, the SLO is non-positive, or no
    /// model can serve even a single query within the SLO.
    pub fn build(catalog: &ModelCatalog, slo: Duration, config: ProfilerConfig) -> Self {
        assert!(!catalog.is_empty(), "cannot profile an empty catalog");
        assert!(config.invocations > 0, "need at least one invocation");
        let slo_s = slo.as_secs_f64();
        assert!(slo_s > 0.0, "SLO must be positive");

        let mut models = Vec::with_capacity(catalog.len());
        for (mi, spec) in catalog.models.iter().enumerate() {
            // Deterministic per-model stream: profiles do not depend on
            // catalog iteration order elsewhere.
            let mut rng =
                ChaCha8Rng::seed_from_u64(config.seed ^ (mi as u64).wrapping_mul(0x9E37_79B9));
            let mut batches = Vec::new();
            for b in 1..=config.max_batch {
                let mean = spec.mean_latency(b);
                let mut samples = Percentiles::new();
                let mut acc_mean = 0.0;
                let mut acc_sq = 0.0;
                for _ in 0..config.invocations {
                    // Latency noise cannot push below half the mean
                    // (truncation keeps samples physical).
                    let x = sample_truncated_normal(
                        &mut rng,
                        mean,
                        spec.latency_std_s,
                        mean * 0.5,
                        mean + 6.0 * spec.latency_std_s,
                    );
                    samples.push(x);
                    acc_mean += x;
                    acc_sq += x * x;
                }
                let n = config.invocations as f64;
                let sample_mean = acc_mean / n;
                let var = (acc_sq / n - sample_mean * sample_mean).max(0.0);
                let p = samples
                    .percentile(config.percentile)
                    .expect("invocations > 0");
                batches.push(BatchProfile {
                    batch: b,
                    mean_s: sample_mean,
                    p95_s: p,
                    std_s: var.sqrt(),
                });
            }
            models.push(ModelProfile {
                name: spec.name.clone(),
                accuracy: spec.accuracy,
                batches,
                spec: spec.clone(),
            });
        }

        Self::finalize(catalog.task, slo_s, models).expect("no model meets the SLO at batch 1")
    }

    /// Assembles a profile from per-model batch profiles (measured or
    /// synthesized): truncates to `B_w` (§4.2.1 — batches no model can
    /// serve within the SLO are unreachable actions) and computes the
    /// Pareto front.
    ///
    /// Every model must be profiled at batch sizes `1..=B` for some
    /// contiguous `B` (the same `B` across models).
    ///
    /// # Errors
    ///
    /// Returns a description when the model list is empty, batch ranges
    /// are ragged or non-contiguous, or no model meets the SLO at
    /// batch 1.
    pub fn finalize(task: Task, slo_s: f64, mut models: Vec<ModelProfile>) -> Result<Self, String> {
        if models.is_empty() {
            return Err("no models profiled".into());
        }
        if !(slo_s.is_finite() && slo_s > 0.0) {
            return Err(format!("SLO must be positive, got {slo_s}"));
        }
        let profiled_batches = models[0].batches.len() as u32;
        for m in &models {
            if m.batches.len() as u32 != profiled_batches {
                return Err(format!(
                    "ragged batch ranges: {} has {} batches, {} has {}",
                    models[0].name,
                    profiled_batches,
                    m.name,
                    m.batches.len()
                ));
            }
            for (i, b) in m.batches.iter().enumerate() {
                if b.batch != i as u32 + 1 {
                    return Err(format!(
                        "{}: batch sizes must be contiguous from 1, found {} at position {}",
                        m.name,
                        b.batch,
                        i + 1
                    ));
                }
            }
        }

        // B_w: the largest batch size meeting the SLO with any model.
        let max_batch = (1..=profiled_batches)
            .filter(|&b| {
                models
                    .iter()
                    .any(|m| m.batches[(b - 1) as usize].p95_s <= slo_s)
            })
            .max()
            .ok_or_else(|| format!("no model meets the {slo_s}s SLO at batch 1"))?;

        // Truncate profiles beyond B_w — they are unreachable actions.
        for m in &mut models {
            m.batches.truncate(max_batch as usize);
        }

        let points: Vec<(f64, f64)> = models
            .iter()
            .map(|m| (m.batches[0].p95_s, m.accuracy))
            .collect();
        let pareto = pareto_front(&points);

        Ok(Self {
            task,
            slo_s,
            models,
            pareto,
            max_batch,
        })
    }

    /// Number of models profiled (`|M_w|` over the full catalog; the
    /// Pareto-pruned count is `self.pareto_models().len()`).
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// The application latency SLO in seconds.
    pub fn slo(&self) -> f64 {
        self.slo_s
    }

    /// `B_w`: the largest batch size that meets the SLO with any model.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// Profile latency `l_w(m, b)` in seconds (the configured
    /// percentile); `None` if `b` is zero or beyond the profiled range.
    pub fn latency(&self, model: usize, batch: u32) -> Option<f64> {
        if batch == 0 {
            return None;
        }
        self.models
            .get(model)?
            .batches
            .get((batch - 1) as usize)
            .map(|p| p.p95_s)
    }

    /// Mean latency at `(model, batch)`; `None` out of range.
    pub fn mean_latency(&self, model: usize, batch: u32) -> Option<f64> {
        if batch == 0 {
            return None;
        }
        self.models
            .get(model)?
            .batches
            .get((batch - 1) as usize)
            .map(|p| p.mean_s)
    }

    /// Accuracy of `model` in percent.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range.
    pub fn accuracy(&self, model: usize) -> f64 {
        self.models[model].accuracy
    }

    /// Indices of the Pareto-front models (§4.3.3), ascending latency.
    pub fn pareto_models(&self) -> &[usize] {
        &self.pareto
    }

    /// `m_w_min`: the lowest-latency model (the forced selection of
    /// §4.3.1 when no action can satisfy the slack).
    pub fn fastest_model(&self) -> usize {
        self.pareto[0]
    }

    /// Profile latency `l_w(m, b)` extended beyond the profiled batch
    /// range by the parametric latency model.
    ///
    /// Batches above `B_w` only occur for the *forced* action on an
    /// over-full queue (paper §4.2.3 sizes `N_w` slightly above `B_w`);
    /// for those we extrapolate the mean latency from the model spec and
    /// keep the profiled mean-to-percentile offset of the largest
    /// profiled batch.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range or `batch` is zero.
    pub fn latency_extrapolated(&self, model: usize, batch: u32) -> f64 {
        if let Some(l) = self.latency(model, batch) {
            return l;
        }
        let m = &self.models[model];
        let last = m.batches.last().expect("profiles have at least batch 1");
        m.spec.mean_latency(batch) + (last.p95_s - last.mean_s)
    }

    /// Profiled throughput (queries per second) of `(model, batch)`
    /// based on the profile latency; `None` out of range.
    pub fn throughput(&self, model: usize, batch: u32) -> Option<f64> {
        self.latency(model, batch).map(|l| batch as f64 / l)
    }

    /// Best profiled throughput of `model` over batch sizes whose profile
    /// latency is at most `latency_budget_s`; `None` if no batch fits.
    pub fn max_throughput_within(&self, model: usize, latency_budget_s: f64) -> Option<f64> {
        let m = self.models.get(model)?;
        m.batches
            .iter()
            .filter(|p| p.p95_s <= latency_budget_s)
            .map(|p| p.batch as f64 / p.p95_s)
            .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.max(t))))
    }

    /// Largest batch size of `model` whose profile latency is at most
    /// `latency_budget_s`; `None` if even batch 1 exceeds it.
    pub fn max_batch_within(&self, model: usize, latency_budget_s: f64) -> Option<u32> {
        let m = self.models.get(model)?;
        m.batches
            .iter()
            .filter(|p| p.p95_s <= latency_budget_s)
            .map(|p| p.batch)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_profile(slo_ms: u64) -> WorkerProfile {
        WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(slo_ms),
            ProfilerConfig::default(),
        )
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = image_profile(150);
        let b = image_profile(150);
        assert_eq!(a, b);
    }

    #[test]
    fn p95_exceeds_mean() {
        let p = image_profile(300);
        for m in &p.models {
            for bp in &m.batches {
                assert!(
                    bp.p95_s >= bp.mean_s,
                    "{} b={}: p95 {} < mean {}",
                    m.name,
                    bp.batch,
                    bp.p95_s,
                    bp.mean_s
                );
            }
        }
    }

    #[test]
    fn latency_grows_with_batch() {
        let p = image_profile(500);
        for m in &p.models {
            for w in m.batches.windows(2) {
                // Mean latencies are strictly increasing; p95 of finite
                // samples can wobble by less than the noise std.
                assert!(w[1].mean_s > w[0].mean_s);
                assert!(w[1].p95_s > w[0].p95_s - 3.0 * m.spec.latency_std_s);
            }
        }
    }

    #[test]
    fn max_batch_near_paper_value() {
        // §4.2.3/§6: the paper observed B_w = 29 at the largest (500 ms)
        // image SLO. Our per-item cost is calibrated so 60 workers can
        // sustain 4,000 QPS with the fastest model (the Fig. 6 setup),
        // which puts B_w slightly higher, in the same ballpark.
        let p = image_profile(500);
        assert!(
            (25..=45).contains(&p.max_batch()),
            "B_w = {}",
            p.max_batch()
        );
        // Every profiled batch is within the cap.
        for m in &p.models {
            assert!(m.batches.len() as u32 <= p.max_batch());
        }
    }

    #[test]
    fn tighter_slo_means_smaller_max_batch() {
        let b150 = image_profile(150).max_batch();
        let b300 = image_profile(300).max_batch();
        let b500 = image_profile(500).max_batch();
        assert!(b150 < b300 && b300 < b500, "{b150} {b300} {b500}");
    }

    #[test]
    fn pareto_front_is_9_of_26() {
        let p = image_profile(300);
        assert_eq!(p.n_models(), 26);
        assert_eq!(p.pareto_models().len(), 9);
        // Fastest model is the minimum-latency shufflenet.
        assert_eq!(p.models[p.fastest_model()].name, "shufflenet_v2_x0_5");
    }

    #[test]
    fn latency_lookup_bounds() {
        let p = image_profile(150);
        assert!(p.latency(0, 0).is_none());
        assert!(p.latency(0, 1).is_some());
        assert!(p.latency(0, p.max_batch()).is_some());
        assert!(p.latency(0, p.max_batch() + 1).is_none());
        assert!(p.latency(usize::MAX, 1).is_none());
    }

    #[test]
    fn throughput_and_budget_helpers() {
        let p = image_profile(300);
        let fast = p.fastest_model();
        let t1 = p.throughput(fast, 1).unwrap();
        let t_max = p.max_throughput_within(fast, p.slo()).unwrap();
        assert!(t_max >= t1);
        // A budget below batch-1 latency leaves nothing.
        assert!(p.max_throughput_within(fast, 0.0001).is_none());
        assert!(p.max_batch_within(fast, 0.0001).is_none());
        let b = p.max_batch_within(fast, p.slo()).unwrap();
        assert!(b >= 1 && b <= p.max_batch());
    }

    #[test]
    fn text_profile_all_models_on_front() {
        let p = WorkerProfile::build(
            &ModelCatalog::bert_text(),
            Duration::from_millis(200),
            ProfilerConfig::default(),
        );
        assert_eq!(p.n_models(), 5);
        assert_eq!(p.pareto_models().len(), 5);
        assert_eq!(p.models[p.fastest_model()].name, "bert_tiny");
    }

    #[test]
    #[should_panic(expected = "no model meets the SLO")]
    fn impossible_slo_panics() {
        let _ = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(1),
            ProfilerConfig::default(),
        );
    }

    #[test]
    fn serde_round_trip() {
        let p = image_profile(150);
        let json = serde_json::to_string(&p).unwrap();
        let back: WorkerProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p.task, back.task);
        assert_eq!(p.pareto, back.pareto);
        assert_eq!(p.max_batch, back.max_batch);
        assert_eq!(p.models.len(), back.models.len());
        for (a, b) in p.models.iter().zip(&back.models) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.batches.len(), b.batches.len());
            for (x, y) in a.batches.iter().zip(&b.batches) {
                assert!((x.p95_s - y.p95_s).abs() < 1e-15);
            }
        }
        // Serialization must be stable across a round trip.
        let json2 = serde_json::to_string(&back).unwrap();
        assert_eq!(json, json2);
    }
}
