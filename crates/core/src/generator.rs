//! Offline policy generation (paper §4.1): assemble the worker MDP and
//! solve it exactly.

use std::time::Instant;

use ramsis_mdp::{
    policy_iteration, relative_value_iteration, stationary_distribution,
    value_iteration_gauss_seidel_traced, value_iteration_traced, ConvergenceTrace, MdpBuilder,
    SolveOptions, SparseMdp, StationaryOptions,
};
use ramsis_profiles::WorkerProfile;
use ramsis_stats::counts::ArrivalProcess;

use crate::action::{slo_satisfied, valid_actions, Action};
use crate::config::{Balancing, PolicyConfig, RewardKind, SolverKind};
use crate::discretize::TimeGrid;
use crate::error::CoreError;
use crate::guarantees::compute_guarantees;
use crate::policy::WorkerPolicy;
use crate::sqf::SqfTransitionBuilder;
use crate::state::{State, StateSpace};
use crate::transitions::TransitionBuilder;

/// Internal dispatch over the two load-balancing transition models.
enum RowSource<'a> {
    RoundRobin(TransitionBuilder<'a>),
    Sqf(SqfTransitionBuilder<'a>),
}

impl RowSource<'_> {
    fn row(&self, state: State, action: Action) -> Vec<(usize, f64)> {
        match self {
            RowSource::RoundRobin(b) => b.row(state, action),
            RowSource::Sqf(b) => b.row(state, action),
        }
    }
}

/// The immediate reward of an action (§4.1):
/// `Accuracy(a) · SLOSatisfied(s, a)`, optionally batch-weighted.
fn reward(
    profile: &WorkerProfile,
    grid: &TimeGrid,
    slack: usize,
    action: Action,
    kind: RewardKind,
) -> f64 {
    let Action::Serve { model, batch } = action else {
        // The arrival action serves nothing; the shed action discards
        // its queries (reward 0 either way).
        return 0.0;
    };
    if !slo_satisfied(profile, grid, slack, action) {
        return 0.0;
    }
    let acc = profile.accuracy(model as usize);
    match kind {
        RewardKind::PerBatch => acc,
        RewardKind::PerQuery => acc * batch as f64,
    }
}

/// Generates the optimal model-selection policy for one worker (§3.1).
///
/// `process` is the *central-queue* arrival distribution; the builder
/// derives the worker-level process from it and the configured load
/// balancer. The profile must have been built for the same SLO as
/// `config` (latencies beyond the SLO are truncated at profiling time,
/// §3.1.1 footnote).
///
/// # Errors
///
/// Returns [`CoreError`] on invalid configuration, SLO mismatch, or an
/// internal MDP assembly failure.
pub fn generate_policy(
    profile: &WorkerProfile,
    process: &dyn ArrivalProcess,
    config: &PolicyConfig,
) -> Result<WorkerPolicy, CoreError> {
    generate_policy_traced(profile, process, config).map(|(policy, _)| policy)
}

/// [`generate_policy`] plus the solver's [`ConvergenceTrace`] when the
/// configured method supports per-sweep tracing (the two value-iteration
/// variants; `None` for policy iteration and relative value iteration).
///
/// # Errors
///
/// Same failure modes as [`generate_policy`].
pub fn generate_policy_traced(
    profile: &WorkerProfile,
    process: &dyn ArrivalProcess,
    config: &PolicyConfig,
) -> Result<(WorkerPolicy, Option<ConvergenceTrace>), CoreError> {
    config.validate()?;
    if (profile.slo() - config.slo_s).abs() > 1e-9 {
        return Err(CoreError::InvalidConfig(format!(
            "profile was built for SLO {}s but the config says {}s",
            profile.slo(),
            config.slo_s
        )));
    }
    if profile.pareto_models().is_empty() {
        return Err(CoreError::Infeasible(
            "profile has no Pareto-front models".into(),
        ));
    }
    let started = Instant::now();

    let grid = TimeGrid::build(profile, config.slo_s, config.discretization);
    let nw = config.max_queue.unwrap_or(profile.max_batch() + 3);
    let space = StateSpace::new(nw, grid.len() as u32);

    let source = match config.balancing {
        Balancing::RoundRobin => RowSource::RoundRobin(TransitionBuilder::new(
            profile,
            &grid,
            &space,
            process,
            config.workers,
            config.slo_s,
            config.tail_eps,
            config.prune_eps,
        )),
        Balancing::ShortestQueueFirst => RowSource::Sqf(SqfTransitionBuilder::new(
            profile,
            &grid,
            &space,
            process.rate(),
            config.workers,
            config.slo_s,
            config.tail_eps,
            config.prune_eps,
        )),
    };

    // Assemble the sparse MDP. Action labels carry the packed action so
    // the solved policy can be decoded without a side table.
    let mut builder = MdpBuilder::new(space.len());
    builder.normalize_rows(true);
    for (_, st) in space.iter() {
        builder.start_state();
        match st {
            State::Empty => {
                let row = source.row(st, Action::Arrival);
                add_action(&mut builder, Action::Arrival, &row, 0.0);
            }
            State::Queued { n, slack } => {
                for action in valid_actions(
                    profile,
                    &grid,
                    n,
                    slack as usize,
                    config.batching,
                    config.on_miss,
                ) {
                    let row = source.row(st, action);
                    let r = reward(profile, &grid, slack as usize, action, config.reward);
                    add_action(&mut builder, action, &row, r);
                }
            }
            State::Full => {
                // Slack is exhausted: only the forced action remains.
                let actions = valid_actions(profile, &grid, nw, 0, config.batching, config.on_miss);
                debug_assert_eq!(actions.len(), 1, "full state admits only the forced action");
                for action in actions {
                    let row = source.row(st, action);
                    // The forced action never satisfies the deadline.
                    add_action(&mut builder, action, &row, 0.0);
                }
            }
        }
    }
    let mdp = builder.build()?;

    // Solve with the configured exact method.
    let opts = SolveOptions {
        discount: config.discount,
        ..SolveOptions::default()
    };
    let (solution, trace) = match config.solver {
        SolverKind::ValueIteration => {
            let (s, t) = value_iteration_traced(&mdp, &opts);
            (s, Some(t))
        }
        SolverKind::GaussSeidelValueIteration => {
            let (s, t) = value_iteration_gauss_seidel_traced(&mdp, &opts);
            (s, Some(t))
        }
        SolverKind::PolicyIteration => (policy_iteration(&mdp, &opts, 10_000), None),
        SolverKind::RelativeValueIteration => (relative_value_iteration(&mdp, &opts), None),
    };

    // Decode the per-state actions and compute the §5.1 guarantees.
    let actions: Vec<Action> = solution
        .policy
        .iter()
        .map(|&a| Action::from_label(mdp.action_label(a)))
        .collect();
    let stationary = stationary_distribution(&mdp, &solution.policy, &StationaryOptions::default());
    let guarantees = compute_guarantees(profile, &grid, &space, &actions, &stationary);

    Ok((
        WorkerPolicy::new(
            config.clone(),
            process.rate(),
            process.name().to_owned(),
            grid,
            space,
            actions,
            guarantees,
            stationary,
            solution.iterations,
            started.elapsed().as_secs_f64(),
        ),
        trace,
    ))
}

fn add_action(builder: &mut MdpBuilder, action: Action, row: &[(usize, f64)], reward: f64) {
    let transitions: Vec<(usize, f64, f64)> = row.iter().map(|&(to, p)| (to, p, reward)).collect();
    builder.add_action(action.to_label(), &transitions);
}

/// Diagnostic sizes of the MDP a configuration would produce — used by
/// the Table 2 harness and scalability tests without paying for a solve.
pub fn mdp_dimensions(
    profile: &WorkerProfile,
    config: &PolicyConfig,
) -> Result<(usize, usize), CoreError> {
    config.validate()?;
    let grid = TimeGrid::build(profile, config.slo_s, config.discretization);
    let nw = config.max_queue.unwrap_or(profile.max_batch() + 3);
    let space = StateSpace::new(nw, grid.len() as u32);
    let mut n_actions = 1; // the empty state's arrival action
    for (_, st) in space.iter() {
        if let State::Queued { n, slack } = st {
            n_actions += valid_actions(
                profile,
                &grid,
                n,
                slack as usize,
                config.batching,
                config.on_miss,
            )
            .len();
        }
    }
    n_actions += 1; // the full state's forced action
    Ok((space.len(), n_actions))
}

/// Re-export for tests and benches that need the raw MDP.
pub fn assemble_mdp(
    profile: &WorkerProfile,
    process: &dyn ArrivalProcess,
    config: &PolicyConfig,
) -> Result<SparseMdp, CoreError> {
    config.validate()?;
    let grid = TimeGrid::build(profile, config.slo_s, config.discretization);
    let nw = config.max_queue.unwrap_or(profile.max_batch() + 3);
    let space = StateSpace::new(nw, grid.len() as u32);
    let source = match config.balancing {
        Balancing::RoundRobin => RowSource::RoundRobin(TransitionBuilder::new(
            profile,
            &grid,
            &space,
            process,
            config.workers,
            config.slo_s,
            config.tail_eps,
            config.prune_eps,
        )),
        Balancing::ShortestQueueFirst => RowSource::Sqf(SqfTransitionBuilder::new(
            profile,
            &grid,
            &space,
            process.rate(),
            config.workers,
            config.slo_s,
            config.tail_eps,
            config.prune_eps,
        )),
    };
    let mut builder = MdpBuilder::new(space.len());
    builder.normalize_rows(true);
    for (_, st) in space.iter() {
        builder.start_state();
        match st {
            State::Empty => {
                let row = source.row(st, Action::Arrival);
                add_action(&mut builder, Action::Arrival, &row, 0.0);
            }
            State::Queued { n, slack } => {
                for action in valid_actions(
                    profile,
                    &grid,
                    n,
                    slack as usize,
                    config.batching,
                    config.on_miss,
                ) {
                    let row = source.row(st, action);
                    let r = reward(profile, &grid, slack as usize, action, config.reward);
                    add_action(&mut builder, action, &row, r);
                }
            }
            State::Full => {
                for action in valid_actions(profile, &grid, nw, 0, config.batching, config.on_miss)
                {
                    let row = source.row(st, action);
                    add_action(&mut builder, action, &row, 0.0);
                }
            }
        }
    }
    Ok(builder.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Batching;
    use crate::config::PolicyConfig;
    use crate::discretize::Discretization;
    use crate::policy::Decision;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_stats::PoissonProcess;
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn quick_config(workers: usize) -> PolicyConfig {
        PolicyConfig::builder(Duration::from_millis(150))
            .workers(workers)
            .discretization(Discretization::fixed_length(15))
            .build()
    }

    #[test]
    fn generates_a_policy_at_moderate_load() {
        // 100 QPS over 4 workers is ~45% of the fastest model's
        // capacity: comfortably satisfiable.
        let process = PoissonProcess::per_second(100.0);
        let policy = generate_policy(profile(), &process, &quick_config(4)).unwrap();
        // Empty queue waits; queued states serve.
        assert_eq!(policy.decide(0, 0.15), Decision::Wait);
        assert!(matches!(policy.decide(1, 0.15), Decision::Serve { .. }));
        let g = policy.guarantees();
        assert!(
            g.expected_accuracy > 60.0,
            "accuracy {}",
            g.expected_accuracy
        );
        assert!(
            g.expected_violation_rate < 0.05,
            "violation {}",
            g.expected_violation_rate
        );
    }

    #[test]
    fn low_load_selects_more_accurate_models_than_high_load() {
        // The headline behaviour (§2, Fig. 2): at a lull-heavy low load
        // the policy can afford slower, more accurate models; at a high
        // load it must fall back to fast ones.
        let p = profile();
        let low = generate_policy(p, &PoissonProcess::per_second(40.0), &quick_config(4)).unwrap();
        let high =
            generate_policy(p, &PoissonProcess::per_second(1_400.0), &quick_config(4)).unwrap();
        let acc_low = low.guarantees().expected_accuracy;
        let acc_high = high.guarantees().expected_accuracy;
        assert!(
            acc_low > acc_high + 1.0,
            "low-load accuracy {acc_low} should beat high-load {acc_high}"
        );
    }

    #[test]
    fn fresh_single_query_at_low_load_uses_accurate_model() {
        let p = profile();
        let policy =
            generate_policy(p, &PoissonProcess::per_second(10.0), &quick_config(4)).unwrap();
        // A fresh query with full slack at negligible load: the policy
        // should pick a model much more accurate than the fastest.
        let Decision::Serve { model, .. } = policy.decide(1, 0.15) else {
            panic!("must serve");
        };
        let fast_acc = p.accuracy(p.fastest_model());
        assert!(
            p.accuracy(model) > fast_acc + 10.0,
            "picked {} ({}%)",
            p.models[model].name,
            p.accuracy(model)
        );
    }

    #[test]
    fn exhausted_slack_uses_fastest_model() {
        let p = profile();
        let policy =
            generate_policy(p, &PoissonProcess::per_second(10.0), &quick_config(4)).unwrap();
        let Decision::Serve { model, .. } = policy.decide(2, 0.0) else {
            panic!("must serve");
        };
        assert_eq!(model, p.fastest_model());
    }

    #[test]
    fn traced_generation_exposes_solver_convergence() {
        let p = profile();
        let process = PoissonProcess::per_second(100.0);
        let (policy, trace) = generate_policy_traced(p, &process, &quick_config(4)).unwrap();
        let trace = trace.expect("value iteration is traceable");
        assert_eq!(trace.method, "value-iteration");
        assert!(trace.converged);
        assert_eq!(trace.sweeps.len(), policy.solve_iterations);
        assert_eq!(
            trace.states_touched(),
            (policy.solve_iterations * policy.space().len()) as u64
        );

        // Untraceable solvers report None but still generate.
        let mut config = quick_config(4);
        config.solver = SolverKind::PolicyIteration;
        config.discretization = Discretization::fixed_length(8);
        let (_, trace) = generate_policy_traced(p, &process, &config).unwrap();
        assert!(trace.is_none());
    }

    #[test]
    fn policy_iteration_agrees_with_value_iteration() {
        let p = profile();
        let process = PoissonProcess::per_second(300.0);
        let mut c1 = quick_config(4);
        c1.discretization = Discretization::fixed_length(8);
        let mut c2 = c1.clone();
        c2.solver = SolverKind::PolicyIteration;
        let vi = generate_policy(p, &process, &c1).unwrap();
        let pi = generate_policy(p, &process, &c2).unwrap();
        // The same action in (almost) every state; allow a handful of
        // value ties to differ.
        let mut diff = 0;
        for (_, st) in vi.space().iter() {
            if vi.action_at(st) != pi.action_at(st) {
                diff += 1;
            }
        }
        assert!(
            diff * 20 <= vi.space().len(),
            "policies differ in {diff}/{} states",
            vi.space().len()
        );
    }

    #[test]
    fn variable_batching_generates() {
        let p = profile();
        let mut config = quick_config(4);
        config.batching = Batching::Variable;
        config.discretization = Discretization::fixed_length(8);
        let process = PoissonProcess::per_second(300.0);
        let policy = generate_policy(p, &process, &config).unwrap();
        assert!(matches!(policy.decide(3, 0.15), Decision::Serve { .. }));
    }

    #[test]
    fn sqf_balancing_generates() {
        let p = profile();
        let mut config = quick_config(8);
        config.balancing = Balancing::ShortestQueueFirst;
        let process = PoissonProcess::per_second(400.0);
        let policy = generate_policy(p, &process, &config).unwrap();
        assert!(policy.guarantees().expected_accuracy > 60.0);
    }

    #[test]
    fn slo_mismatch_is_rejected() {
        let p = profile();
        let config = PolicyConfig::builder(Duration::from_millis(300)).build();
        let process = PoissonProcess::per_second(100.0);
        assert!(matches!(
            generate_policy(p, &process, &config),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let p = profile();
        let mut config = quick_config(0);
        config.workers = 0;
        let process = PoissonProcess::per_second(100.0);
        assert!(generate_policy(p, &process, &config).is_err());
    }

    #[test]
    fn mdp_dimensions_track_discretization() {
        let p = profile();
        let coarse = mdp_dimensions(p, &quick_config(4)).unwrap();
        let mut fine_config = quick_config(4);
        fine_config.discretization = Discretization::fixed_length(100);
        let fine = mdp_dimensions(p, &fine_config).unwrap();
        assert!(fine.0 > coarse.0 * 5, "{fine:?} vs {coarse:?}");
        assert!(fine.1 > coarse.1);
    }

    #[test]
    fn accuracy_distribution_brackets_expectation() {
        let p = profile();
        let policy =
            generate_policy(p, &PoissonProcess::per_second(300.0), &quick_config(4)).unwrap();
        let d = policy.accuracy_distribution(p);
        assert!(!d.is_empty());
        let g = policy.guarantees();
        assert!((d.mean() - g.expected_accuracy).abs() < 1e-6);
        let lo = d.quantile(0.01).unwrap();
        let med = d.quantile(0.5).unwrap();
        let hi = d.quantile(0.99).unwrap();
        assert!(lo <= med && med <= hi);
        // The mean lies within the distribution's support.
        let min_atom = d.atoms().first().unwrap().0;
        let max_atom = d.atoms().last().unwrap().0;
        assert!(
            min_atom - 1e-9 <= g.expected_accuracy && g.expected_accuracy <= max_atom + 1e-9,
            "mean {} outside support [{min_atom}, {max_atom}]; atoms {:?}",
            g.expected_accuracy,
            d.atoms()
        );
        // The stationary vector is a distribution.
        let sum: f64 = policy.stationary().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overload_shows_up_in_guarantees() {
        // 5,000 QPS on 1 worker is far beyond any model's throughput:
        // the full state dominates and the violation bound goes high.
        let p = profile();
        let process = PoissonProcess::per_second(5_000.0);
        let policy = generate_policy(p, &process, &quick_config(1)).unwrap();
        let g = policy.guarantees();
        assert!(
            g.full_state_probability > 0.5,
            "full-state probability {}",
            g.full_state_probability
        );
        assert!(
            g.expected_violation_rate > 0.5,
            "violation {}",
            g.expected_violation_rate
        );
    }
}
