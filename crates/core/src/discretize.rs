//! Slack-time discretization (paper §4.2).
//!
//! Worker-queue states carry the slack time `T_j` of the earliest
//! deadline. Slack is continuous; RAMSIS discretizes it into a finite
//! grid `T_w = (T_0, T_1, ...)` where a continuous slack `Δ` maps to the
//! largest grid value `T_j ≤ Δ` — a *conservative* rounding (the policy
//! never believes it has more time than it does), which underpins the
//! §5.1 bound directions.
//!
//! Two strategies are provided:
//!
//! - [`Discretization::ModelBased`] (MD, §4.2.1): the grid is the set of
//!   profiled inference latencies `l_w(m, b) ≤ SLO` over Pareto models —
//!   exact for deciding action validity, `O(|M_w| · B_w)` values.
//! - [`Discretization::FixedLength`] (FLD, §4.2.2): the uniform grid
//!   `{0, SLO/D, 2·SLO/D, ..., SLO}`; `D` trades policy-generation time
//!   against conservatism (appendix §C shows `D = 100` matches MD).

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;

use crate::error::CoreError;

/// The slack-time discretization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discretization {
    /// Model-based discretization (§4.2.1).
    ModelBased,
    /// Fixed-length discretization with `D` steps (§4.2.2).
    FixedLength {
        /// Number of uniform steps over `[0, SLO]`.
        d: u32,
    },
}

impl Discretization {
    /// Convenience constructor for FLD.
    pub fn fixed_length(d: u32) -> Self {
        Discretization::FixedLength { d }
    }

    /// Validates parameters.
    pub(crate) fn validate(&self) -> Result<(), CoreError> {
        match self {
            Discretization::ModelBased => Ok(()),
            Discretization::FixedLength { d } => {
                if *d == 0 {
                    Err(CoreError::InvalidConfig(
                        "FLD step count D must be positive".into(),
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A materialized slack grid `T_w` for one worker profile and SLO.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeGrid {
    /// Strictly increasing slack values; `values[0] == 0`,
    /// `values.last() == SLO`.
    values: Vec<f64>,
}

impl TimeGrid {
    /// Builds the grid for `profile` under `strategy`.
    ///
    /// Both strategies always include 0 (exhausted slack) and the SLO
    /// (fresh-arrival slack), so every runtime slack in `[0, SLO]` has a
    /// grid bin and the arrival action's successor state `(1, SLO)` is
    /// representable exactly (§4.4.1).
    pub fn build(profile: &WorkerProfile, slo_s: f64, strategy: Discretization) -> Self {
        let mut values = match strategy {
            Discretization::FixedLength { d } => (0..=d)
                .map(|i| slo_s * i as f64 / d as f64)
                .collect::<Vec<_>>(),
            Discretization::ModelBased => {
                let mut v = vec![0.0, slo_s];
                for &m in profile.pareto_models() {
                    for b in 1..=profile.max_batch() {
                        if let Some(l) = profile.latency(m, b) {
                            if l <= slo_s {
                                v.push(l);
                            }
                        }
                    }
                }
                v
            }
        };
        values.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        values.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        debug_assert!(values[0].abs() < 1e-12);
        Self { values }
    }

    /// Number of grid values `|T_w|`.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the grid is empty (never true for a built grid).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The grid values, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `T_j` for index `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn value(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// The exclusive upper edge of bin `j`: `T_{j+1}`, or `T_j` itself
    /// for the top bin (whose interval is the single point `SLO`).
    pub fn upper_edge(&self, j: usize) -> f64 {
        if j + 1 < self.values.len() {
            self.values[j + 1]
        } else {
            self.values[j]
        }
    }

    /// Index of the largest grid value `≤ slack` (conservative floor);
    /// negative slacks clamp to bin 0.
    pub fn floor_index(&self, slack: f64) -> usize {
        if slack <= 0.0 {
            return 0;
        }
        match self
            .values
            .binary_search_by(|v| v.partial_cmp(&slack).expect("grid values are finite"))
        {
            Ok(j) => j,
            Err(insert) => insert.saturating_sub(1),
        }
    }

    /// Index of the top bin (slack = SLO).
    pub fn top(&self) -> usize {
        self.values.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    #[test]
    fn fld_grid_is_uniform() {
        let p = profile();
        let g = TimeGrid::build(p, 0.15, Discretization::fixed_length(100));
        assert_eq!(g.len(), 101);
        assert_eq!(g.value(0), 0.0);
        assert!((g.value(100) - 0.15).abs() < 1e-12);
        assert!((g.value(50) - 0.075).abs() < 1e-12);
        // Uniform spacing.
        for w in g.values().windows(2) {
            assert!((w[1] - w[0] - 0.0015).abs() < 1e-12);
        }
    }

    #[test]
    fn md_grid_contains_all_pareto_latencies() {
        let p = profile();
        let g = TimeGrid::build(p, 0.15, Discretization::ModelBased);
        assert_eq!(g.value(0), 0.0);
        assert!((g.values().last().unwrap() - 0.15).abs() < 1e-12);
        for &m in p.pareto_models() {
            for b in 1..=p.max_batch() {
                if let Some(l) = p.latency(m, b) {
                    if l <= 0.15 {
                        let j = g.floor_index(l);
                        assert!(
                            (g.value(j) - l).abs() < 1e-9,
                            "latency {l} not on grid (floor {})",
                            g.value(j)
                        );
                    }
                }
            }
        }
        // Size bound: O(|pareto| * B_w) + endpoints.
        assert!(g.len() <= p.pareto_models().len() * p.max_batch() as usize + 2);
    }

    #[test]
    fn floor_index_is_conservative() {
        let p = profile();
        let g = TimeGrid::build(p, 0.15, Discretization::fixed_length(10));
        // Exact hits.
        assert_eq!(g.floor_index(0.0), 0);
        assert_eq!(g.floor_index(0.15), g.top());
        assert_eq!(g.floor_index(0.015), 1);
        // In-between values floor down.
        assert_eq!(g.floor_index(0.0151), 1);
        assert_eq!(g.floor_index(0.0299), 1);
        // Negative slack clamps to the exhausted bin.
        assert_eq!(g.floor_index(-0.5), 0);
        // Beyond SLO clamps to the top (cannot exceed SLO in practice).
        assert_eq!(g.floor_index(1.0), g.top());
    }

    #[test]
    fn upper_edge_top_bin_is_degenerate() {
        let p = profile();
        let g = TimeGrid::build(p, 0.15, Discretization::fixed_length(10));
        assert_eq!(g.upper_edge(g.top()), g.value(g.top()));
        assert!((g.upper_edge(0) - g.value(1)).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(Discretization::fixed_length(0).validate().is_err());
        assert!(Discretization::fixed_length(1).validate().is_ok());
        assert!(Discretization::ModelBased.validate().is_ok());
    }

    proptest! {
        #[test]
        fn floor_never_exceeds_slack(slack in 0.0f64..0.15) {
            let p = profile();
            let g = TimeGrid::build(p, 0.15, Discretization::fixed_length(37));
            let j = g.floor_index(slack);
            prop_assert!(g.value(j) <= slack + 1e-12);
            if j + 1 < g.len() {
                prop_assert!(g.value(j + 1) > slack);
            }
        }
    }
}
