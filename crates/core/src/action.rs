//! The worker MDP action space (paper §4.3).
//!
//! An action is either the arrival action `â` (idle until the next
//! arrival, only available in the empty state, §4.3.4) or a model-
//! selection decision `(m, b)` directing the `b` earliest-deadline
//! queries to model `m`. Valid `(m, b)` pairs are constrained by:
//!
//! - **Latency** (§4.3.1): `l_w(m, b) ≤ T_j`; if no pair satisfies the
//!   slack, the single *forced* action `(m_min, n)` remains (queries are
//!   "better served late than never").
//! - **Batch size** (§4.3.2): maximal batching fixes `b = n` (the
//!   default); variable batching allows `1 ≤ b ≤ n`.
//! - **Models** (§4.3.3): only accuracy-latency Pareto-front models.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;

use crate::config::MissPolicy;
use crate::discretize::TimeGrid;

/// The batching strategy (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Batching {
    /// All queued queries are always batched together (`b = n`); the
    /// paper's default — variable-batching policies picked `b = n` in
    /// 80% of decisions anyway.
    Maximal,
    /// Any batch size `1 ≤ b ≤ n`.
    Variable,
}

/// A worker MDP action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// `â`: idle until the next arrival (empty state only).
    Arrival,
    /// Serve the `batch` earliest-deadline queries on `model`.
    Serve {
        /// Catalog index of the selected model.
        model: u32,
        /// Number of queries batched.
        batch: u32,
    },
    /// Shed the whole queue because its earliest deadline is
    /// unsatisfiable ([`MissPolicy::Drop`], §4.3.1). Takes no service
    /// time.
    Shed,
}

impl Action {
    /// Packs the action into the `u64` label carried by the generic MDP.
    pub fn to_label(self) -> u64 {
        match self {
            Action::Arrival => u64::MAX,
            Action::Shed => u64::MAX - 1,
            Action::Serve { model, batch } => ((model as u64) << 32) | batch as u64,
        }
    }

    /// Unpacks a label produced by [`Self::to_label`].
    pub fn from_label(label: u64) -> Self {
        if label == u64::MAX {
            Action::Arrival
        } else if label == u64::MAX - 1 {
            Action::Shed
        } else {
            Action::Serve {
                model: (label >> 32) as u32,
                batch: (label & 0xFFFF_FFFF) as u32,
            }
        }
    }
}

/// Enumerates the valid actions in a queued state `(n, T_j)`.
///
/// Returns the latency-feasible `(m, b)` pairs over Pareto-front models
/// under `batching`; when none is feasible, returns the forced action
/// alone (§4.3.1): `(m_min, n)` under [`MissPolicy::ServeLate`]
/// ("better served late than never"), or the shed action under
/// [`MissPolicy::Drop`]. The returned list is never empty.
///
/// # Panics
///
/// Panics if `n` is zero or exceeds the profiled batch range.
pub fn valid_actions(
    profile: &WorkerProfile,
    grid: &TimeGrid,
    n: u32,
    slack: usize,
    batching: Batching,
    on_miss: MissPolicy,
) -> Vec<Action> {
    assert!(n >= 1, "queued state requires n >= 1");
    let slack_value = grid.value(slack);
    let batch_range = match batching {
        Batching::Maximal => n..=n,
        Batching::Variable => 1..=n,
    };
    let mut actions = Vec::new();
    for b in batch_range {
        for &m in profile.pareto_models() {
            // Batches beyond the profiled range (n > B_w) have no
            // latency entry and are never valid.
            if let Some(l) = profile.latency(m, b) {
                if l <= slack_value {
                    actions.push(Action::Serve {
                        model: m as u32,
                        batch: b,
                    });
                }
            }
        }
    }
    if actions.is_empty() {
        // A latency SLO violation is unavoidable (§4.3.1).
        actions.push(match on_miss {
            // "Better served late than never": everything on the
            // fastest model.
            MissPolicy::ServeLate => Action::Serve {
                model: profile.fastest_model() as u32,
                batch: n,
            },
            // Nexus/Clockwork-style shedding.
            MissPolicy::Drop => Action::Shed,
        });
    }
    actions
}

/// Whether an action satisfies the strictest deadline in its source
/// state — the `SLOSatisfied(s, a)` predicate of §4.1.
///
/// The arrival action serves no queries and counts as satisfied; the
/// shed action discards its queries and counts as violated.
pub fn slo_satisfied(
    profile: &WorkerProfile,
    grid: &TimeGrid,
    slack: usize,
    action: Action,
) -> bool {
    match action {
        Action::Arrival => true,
        Action::Shed => false,
        Action::Serve { model, batch } => match profile.latency(model as usize, batch) {
            Some(l) => l <= grid.value(slack),
            // Unprofiled batch (forced overflow service): the deadline
            // cannot be met.
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn grid() -> TimeGrid {
        TimeGrid::build(profile(), 0.15, Discretization::fixed_length(100))
    }

    #[test]
    fn label_round_trip() {
        for a in [
            Action::Arrival,
            Action::Serve { model: 0, batch: 1 },
            Action::Serve {
                model: 25,
                batch: 32,
            },
            Action::Serve {
                model: u32::MAX - 1,
                batch: u32::MAX,
            },
        ] {
            assert_eq!(Action::from_label(a.to_label()), a);
        }
    }

    #[test]
    fn full_slack_admits_many_models() {
        let p = profile();
        let g = grid();
        let actions = valid_actions(p, &g, 1, g.top(), Batching::Maximal, MissPolicy::ServeLate);
        // At slack = SLO every Pareto model with batch-1 latency <= SLO
        // is valid.
        let expect = p
            .pareto_models()
            .iter()
            .filter(|&&m| p.latency(m, 1).unwrap() <= 0.15)
            .count();
        assert_eq!(actions.len(), expect);
        assert!(actions.len() >= 5, "got {}", actions.len());
        // All are batch = n = 1 under maximal batching.
        for a in &actions {
            match a {
                Action::Serve { batch, .. } => assert_eq!(*batch, 1),
                other => panic!("unexpected action {other:?} in queued state"),
            }
        }
    }

    #[test]
    fn zero_slack_forces_fastest_model() {
        let p = profile();
        let g = grid();
        let actions = valid_actions(p, &g, 4, 0, Batching::Maximal, MissPolicy::ServeLate);
        assert_eq!(
            actions,
            vec![Action::Serve {
                model: p.fastest_model() as u32,
                batch: 4
            }]
        );
        // The forced action violates the SLO by construction.
        assert!(!slo_satisfied(p, &g, 0, actions[0]));
    }

    #[test]
    fn zero_slack_sheds_under_drop_policy() {
        let p = profile();
        let g = grid();
        let actions = valid_actions(p, &g, 4, 0, Batching::Maximal, MissPolicy::Drop);
        assert_eq!(actions, vec![Action::Shed]);
        assert!(!slo_satisfied(p, &g, 0, Action::Shed));
        assert_eq!(Action::from_label(Action::Shed.to_label()), Action::Shed);
    }

    #[test]
    fn variable_batching_superset_of_maximal() {
        let p = profile();
        let g = grid();
        let maximal = valid_actions(p, &g, 5, g.top(), Batching::Maximal, MissPolicy::ServeLate);
        let variable = valid_actions(p, &g, 5, g.top(), Batching::Variable, MissPolicy::ServeLate);
        for a in &maximal {
            assert!(variable.contains(a));
        }
        assert!(variable.len() > maximal.len());
        // Variable batching includes partial batches.
        assert!(variable
            .iter()
            .any(|a| matches!(a, Action::Serve { batch, .. } if *batch < 5)));
    }

    #[test]
    fn tighter_slack_shrinks_action_set() {
        let p = profile();
        let g = grid();
        let wide = valid_actions(p, &g, 1, g.top(), Batching::Maximal, MissPolicy::ServeLate).len();
        let mid = valid_actions(
            p,
            &g,
            1,
            g.top() / 2,
            Batching::Maximal,
            MissPolicy::ServeLate,
        )
        .len();
        let tight = valid_actions(p, &g, 1, 1, Batching::Maximal, MissPolicy::ServeLate).len();
        assert!(wide >= mid && mid >= tight, "{wide} {mid} {tight}");
    }

    #[test]
    fn slo_satisfied_matches_latency_check() {
        let p = profile();
        let g = grid();
        let fast = p.fastest_model() as u32;
        assert!(slo_satisfied(
            p,
            &g,
            g.top(),
            Action::Serve {
                model: fast,
                batch: 1
            }
        ));
        assert!(!slo_satisfied(
            p,
            &g,
            0,
            Action::Serve {
                model: fast,
                batch: 1
            }
        ));
        assert!(slo_satisfied(p, &g, 0, Action::Arrival));
        // Unprofiled batch size (overflow service) is never satisfied.
        assert!(!slo_satisfied(
            p,
            &g,
            g.top(),
            Action::Serve {
                model: fast,
                batch: p.max_batch() + 50
            }
        ));
    }

    #[test]
    fn larger_batches_need_more_slack() {
        let p = profile();
        let g = grid();
        // Find a slack that admits batch 1 but not batch B_w on the
        // fastest model.
        let fast = p.fastest_model();
        let l1 = p.latency(fast, 1).unwrap();
        let j = g.floor_index(l1 + 0.002);
        let actions = valid_actions(
            p,
            &g,
            p.max_batch(),
            j,
            Batching::Variable,
            MissPolicy::ServeLate,
        );
        // No action with batch = B_w can be valid at this slack.
        for a in &actions {
            if let Action::Serve { model, batch } = a {
                let l = p.latency(*model as usize, *batch).unwrap();
                assert!(l <= g.value(j), "invalid action leaked: {a:?}");
            }
        }
    }
}
