//! Regime-keyed policy libraries and the load-shedding configuration of
//! the adaptive runtime.
//!
//! The drift detector (`ramsis_workload::drift`) classifies observed
//! traffic into regimes — (rate bin, dispersion class) over a
//! [`RegimeGrid`]. The [`PolicyLibrary`] holds one pre-solved
//! [`PolicySet`] per regime the operator chose to pay for offline:
//! Poisson regimes solve against [`ramsis_stats::PoissonProcess`] at the
//! bin's design rate (its upper edge, so the policy covers every load in
//! the bin), bursty regimes against
//! [`ramsis_stats::NegativeBinomialProcess`] at a configured count
//! dispersion. Regimes left out of the library can be solved lazily
//! online ([`PolicyLibrary::solve`]) under a budget the serving scheme
//! enforces; the out-of-grid bin has no design rate and is never
//! solvable — schemes degrade to their [`crate::FallbackPolicy`] there.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;
use ramsis_workload::drift::{DispersionClass, RegimeGrid, RegimeKey};

use crate::config::PolicyConfig;
use crate::error::CoreError;
use crate::policy_set::PolicySet;

/// Deadline-aware admission control: when may the scheme shed a query
/// instead of serving it late?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Never shed — every query is served, however late (the paper's
    /// default serve-everything semantics).
    #[default]
    Never,
    /// Shed queries that are already *hopeless*: their remaining slack
    /// is below the fastest Pareto model's batch-1 latency, so no
    /// serving decision can meet the SLO. Shedding them stops a burst
    /// from poisoning the tail of subsequent traffic.
    Hopeless,
    /// [`Self::Hopeless`], plus cap the visible queue at `n` queries by
    /// shedding the overflow (oldest first — they carry the earliest,
    /// most-endangered deadlines).
    QueueDepth(u32),
}

/// A library of pre-solved policy sets, one per traffic regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyLibrary {
    grid: RegimeGrid,
    /// Count dispersion bursty regimes are solved against.
    bursty_dispersion: f64,
    /// `(regime, set)`, sorted by regime key.
    entries: Vec<(RegimeKey, PolicySet)>,
}

impl PolicyLibrary {
    /// The default count dispersion bursty regimes solve against.
    pub const DEFAULT_BURSTY_DISPERSION: f64 = 4.0;

    /// Creates an empty library over `grid`; populate it with
    /// [`Self::solve`] or pre-solve via [`Self::generate`].
    ///
    /// # Errors
    ///
    /// Rejects `bursty_dispersion <= 1` (the negative binomial requires
    /// over-dispersion).
    pub fn empty(grid: RegimeGrid, bursty_dispersion: f64) -> Result<Self, CoreError> {
        if !(bursty_dispersion > 1.0 && bursty_dispersion.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "bursty dispersion must be finite and > 1, got {bursty_dispersion}"
            )));
        }
        Ok(Self {
            grid,
            bursty_dispersion,
            entries: Vec::new(),
        })
    }

    /// Pre-solves the given regimes (deduplicated). Use
    /// `grid.all_keys()` for full coverage, or a subset to leave rare
    /// regimes to lazy solving.
    ///
    /// # Errors
    ///
    /// Rejects out-of-grid regimes and a degenerate dispersion, and
    /// propagates the first generation failure.
    pub fn generate(
        profile: &WorkerProfile,
        grid: RegimeGrid,
        bursty_dispersion: f64,
        config: &PolicyConfig,
        regimes: &[RegimeKey],
    ) -> Result<Self, CoreError> {
        let mut library = Self::empty(grid, bursty_dispersion)?;
        for &key in regimes {
            if !library.contains(key) {
                library.solve(profile, config, key)?;
            }
        }
        Ok(library)
    }

    /// Pre-solves every in-grid Poisson regime (the common case: bursty
    /// regimes are rarer and can be solved lazily on first detection).
    ///
    /// # Errors
    ///
    /// As [`Self::generate`].
    pub fn generate_poisson_bins(
        profile: &WorkerProfile,
        grid: RegimeGrid,
        bursty_dispersion: f64,
        config: &PolicyConfig,
    ) -> Result<Self, CoreError> {
        let keys: Vec<RegimeKey> = (0..grid.n_bins())
            .map(|bin| RegimeKey::new(bin, DispersionClass::Poisson))
            .collect();
        Self::generate(profile, grid, bursty_dispersion, config, &keys)
    }

    /// The grid the library is keyed over.
    pub fn grid(&self) -> &RegimeGrid {
        &self.grid
    }

    /// The count dispersion bursty regimes solve against.
    pub fn bursty_dispersion(&self) -> f64 {
        self.bursty_dispersion
    }

    /// Number of solved regimes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no regime has been solved yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The solved regimes, sorted.
    pub fn regimes(&self) -> Vec<RegimeKey> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }

    /// Whether `key`'s regime has a solved set.
    pub fn contains(&self, key: RegimeKey) -> bool {
        self.entries.binary_search_by(|(k, _)| k.cmp(&key)).is_ok()
    }

    /// The policy set for `key`'s regime, if solved.
    pub fn get(&self, key: RegimeKey) -> Option<&PolicySet> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Solves the policy set for an in-grid regime and inserts it:
    /// Poisson or negative binomial (at the library's dispersion) at the
    /// bin's design rate. No-op if already solved.
    ///
    /// # Errors
    ///
    /// Rejects the out-of-grid bin (it has no design rate — that is
    /// what fallback policies are for) and propagates generation
    /// failures.
    pub fn solve(
        &mut self,
        profile: &WorkerProfile,
        config: &PolicyConfig,
        key: RegimeKey,
    ) -> Result<(), CoreError> {
        if self.contains(key) {
            return Ok(());
        }
        let Some(design) = self.grid.design_rate_qps(key.rate_bin) else {
            return Err(CoreError::InvalidConfig(format!(
                "regime bin {} is outside the {}-bin grid",
                key.rate_bin,
                self.grid.n_bins()
            )));
        };
        let set = match key.dispersion {
            DispersionClass::Poisson => PolicySet::generate_poisson(profile, &[design], config)?,
            DispersionClass::Bursty => PolicySet::generate_negative_binomial(
                profile,
                &[design],
                self.bursty_dispersion,
                config,
            )?,
        };
        let at = self.entries.partition_point(|&(k, _)| k < key);
        self.entries.insert(at, (key, set));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn quick_config() -> PolicyConfig {
        PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(8))
            .build()
    }

    fn grid() -> RegimeGrid {
        RegimeGrid::new(vec![120.0, 280.0])
    }

    #[test]
    fn poisson_bins_cover_the_grid() {
        let lib =
            PolicyLibrary::generate_poisson_bins(profile(), grid(), 4.0, &quick_config()).unwrap();
        assert_eq!(lib.len(), 2);
        for bin in 0..2 {
            let key = RegimeKey::new(bin, DispersionClass::Poisson);
            assert!(lib.contains(key));
            let set = lib.get(key).unwrap();
            assert_eq!(set.loads(), vec![lib.grid().design_rate_qps(bin).unwrap()]);
        }
        assert!(!lib.contains(RegimeKey::new(0, DispersionClass::Bursty)));
    }

    #[test]
    fn lazy_solve_adds_bursty_regimes() {
        let mut lib = PolicyLibrary::empty(grid(), 4.0).unwrap();
        assert!(lib.is_empty());
        let key = RegimeKey::new(1, DispersionClass::Bursty);
        lib.solve(profile(), &quick_config(), key).unwrap();
        assert_eq!(lib.regimes(), vec![key]);
        // Solving again is a no-op.
        lib.solve(profile(), &quick_config(), key).unwrap();
        assert_eq!(lib.len(), 1);
        // The bursty set is solved against the NB process at the bin's
        // design rate.
        assert_eq!(lib.get(key).unwrap().loads(), vec![280.0]);
    }

    #[test]
    fn bursty_policies_are_more_conservative() {
        // At the same design load, over-dispersed arrivals mean a
        // higher expected violation rate (the solver anticipates
        // bursts) — the guarantee must not improve with burstiness.
        let cfg = quick_config();
        let poisson = PolicySet::generate_poisson(profile(), &[240.0], &cfg).unwrap();
        let bursty = PolicySet::generate_negative_binomial(profile(), &[240.0], 4.0, &cfg).unwrap();
        let gp = poisson.policies()[0].guarantees();
        let gb = bursty.policies()[0].guarantees();
        assert!(
            gb.expected_violation_rate >= gp.expected_violation_rate - 1e-9,
            "bursty {} vs poisson {}",
            gb.expected_violation_rate,
            gp.expected_violation_rate
        );
    }

    #[test]
    fn out_of_grid_solve_is_rejected() {
        let mut lib = PolicyLibrary::empty(grid(), 4.0).unwrap();
        let err = lib.solve(
            profile(),
            &quick_config(),
            RegimeKey::new(2, DispersionClass::Poisson),
        );
        assert!(err.is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn rejects_bad_dispersion() {
        assert!(PolicyLibrary::empty(grid(), 1.0).is_err());
        assert!(PolicyLibrary::empty(grid(), f64::NAN).is_err());
        assert!(
            PolicySet::generate_negative_binomial(profile(), &[100.0], 0.5, &quick_config())
                .is_err()
        );
    }

    #[test]
    fn shed_policy_round_trips_serde() {
        for shed in [
            ShedPolicy::Never,
            ShedPolicy::Hopeless,
            ShedPolicy::QueueDepth(32),
        ] {
            let json = serde_json::to_string(&shed).unwrap();
            assert_eq!(serde_json::from_str::<ShedPolicy>(&json).unwrap(), shed);
        }
        assert_eq!(ShedPolicy::default(), ShedPolicy::Never);
    }

    #[test]
    fn library_round_trips_serde() {
        let lib = PolicyLibrary::generate(
            profile(),
            grid(),
            4.0,
            &quick_config(),
            &[RegimeKey::new(0, DispersionClass::Poisson)],
        )
        .unwrap();
        let json = serde_json::to_string(&lib).unwrap();
        let back: PolicyLibrary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lib);
    }
}
