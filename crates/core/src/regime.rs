//! Regime-keyed policy libraries and the load-shedding configuration of
//! the adaptive runtime.
//!
//! The drift detector (`ramsis_workload::drift`) classifies observed
//! traffic into regimes — (rate bin, dispersion class) over a
//! [`RegimeGrid`]. The [`PolicyLibrary`] holds one pre-solved
//! [`PolicySet`] per regime the operator chose to pay for offline:
//! Poisson regimes solve against [`ramsis_stats::PoissonProcess`] at the
//! bin's design rate (its upper edge, so the policy covers every load in
//! the bin), bursty regimes against
//! [`ramsis_stats::NegativeBinomialProcess`] at a configured count
//! dispersion. Regimes left out of the library can be solved lazily
//! online ([`PolicyLibrary::solve`]) under a budget the serving scheme
//! enforces; the out-of-grid bin has no design rate and is never
//! solvable — schemes degrade to their [`crate::FallbackPolicy`] there.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;
use ramsis_workload::drift::{DispersionClass, RegimeGrid, RegimeKey};

use crate::config::PolicyConfig;
use crate::error::CoreError;
use crate::policy_set::PolicySet;

/// Deadline-aware admission control: when may the scheme shed a query
/// instead of serving it late?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Never shed — every query is served, however late (the paper's
    /// default serve-everything semantics).
    #[default]
    Never,
    /// Shed queries that are already *hopeless*: their remaining slack
    /// is below the fastest Pareto model's batch-1 latency, so no
    /// serving decision can meet the SLO. Shedding them stops a burst
    /// from poisoning the tail of subsequent traffic.
    Hopeless,
    /// [`Self::Hopeless`], plus cap the visible queue at `n` queries by
    /// shedding the overflow (oldest first — they carry the earliest,
    /// most-endangered deadlines).
    QueueDepth(u32),
}

/// A library of pre-solved policy sets, one per traffic regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyLibrary {
    grid: RegimeGrid,
    /// Count dispersion bursty regimes are solved against.
    bursty_dispersion: f64,
    /// `(regime, set)`, sorted by regime key.
    entries: Vec<(RegimeKey, PolicySet)>,
}

impl PolicyLibrary {
    /// The default count dispersion bursty regimes solve against.
    pub const DEFAULT_BURSTY_DISPERSION: f64 = 4.0;

    /// Creates an empty library over `grid`; populate it with
    /// [`Self::solve`] or pre-solve via [`Self::generate`].
    ///
    /// # Errors
    ///
    /// Rejects `bursty_dispersion <= 1` (the negative binomial requires
    /// over-dispersion).
    pub fn empty(grid: RegimeGrid, bursty_dispersion: f64) -> Result<Self, CoreError> {
        if !(bursty_dispersion > 1.0 && bursty_dispersion.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "bursty dispersion must be finite and > 1, got {bursty_dispersion}"
            )));
        }
        Ok(Self {
            grid,
            bursty_dispersion,
            entries: Vec::new(),
        })
    }

    /// Pre-solves the given regimes (deduplicated). Use
    /// `grid.all_keys()` for full coverage, or a subset to leave rare
    /// regimes to lazy solving.
    ///
    /// # Errors
    ///
    /// Rejects out-of-grid regimes and a degenerate dispersion, and
    /// propagates the first generation failure.
    pub fn generate(
        profile: &WorkerProfile,
        grid: RegimeGrid,
        bursty_dispersion: f64,
        config: &PolicyConfig,
        regimes: &[RegimeKey],
    ) -> Result<Self, CoreError> {
        let mut library = Self::empty(grid, bursty_dispersion)?;
        for &key in regimes {
            if !library.contains(key) {
                library.solve(profile, config, key)?;
            }
        }
        Ok(library)
    }

    /// Pre-solves every in-grid Poisson regime (the common case: bursty
    /// regimes are rarer and can be solved lazily on first detection).
    ///
    /// # Errors
    ///
    /// As [`Self::generate`].
    pub fn generate_poisson_bins(
        profile: &WorkerProfile,
        grid: RegimeGrid,
        bursty_dispersion: f64,
        config: &PolicyConfig,
    ) -> Result<Self, CoreError> {
        let keys: Vec<RegimeKey> = (0..grid.n_bins())
            .map(|bin| RegimeKey::new(bin, DispersionClass::Poisson))
            .collect();
        Self::generate(profile, grid, bursty_dispersion, config, &keys)
    }

    /// The grid the library is keyed over.
    pub fn grid(&self) -> &RegimeGrid {
        &self.grid
    }

    /// The count dispersion bursty regimes solve against.
    pub fn bursty_dispersion(&self) -> f64 {
        self.bursty_dispersion
    }

    /// Number of solved regimes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no regime has been solved yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The solved regimes, sorted.
    pub fn regimes(&self) -> Vec<RegimeKey> {
        self.entries.iter().map(|&(k, _)| k).collect()
    }

    /// Whether `key`'s regime has a solved set.
    pub fn contains(&self, key: RegimeKey) -> bool {
        self.entries.binary_search_by(|(k, _)| k.cmp(&key)).is_ok()
    }

    /// The policy set for `key`'s regime, if solved.
    pub fn get(&self, key: RegimeKey) -> Option<&PolicySet> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Solves the policy set for an in-grid regime and inserts it:
    /// Poisson or negative binomial (at the library's dispersion) at the
    /// bin's design rate. No-op if already solved.
    ///
    /// # Errors
    ///
    /// Rejects the out-of-grid bin (it has no design rate — that is
    /// what fallback policies are for) and propagates generation
    /// failures.
    pub fn solve(
        &mut self,
        profile: &WorkerProfile,
        config: &PolicyConfig,
        key: RegimeKey,
    ) -> Result<(), CoreError> {
        if self.contains(key) {
            return Ok(());
        }
        let Some(design) = self.grid.design_rate_qps(key.rate_bin) else {
            return Err(CoreError::InvalidConfig(format!(
                "regime bin {} is outside the {}-bin grid",
                key.rate_bin,
                self.grid.n_bins()
            )));
        };
        let set = match key.dispersion {
            DispersionClass::Poisson => PolicySet::generate_poisson(profile, &[design], config)?,
            DispersionClass::Bursty => PolicySet::generate_negative_binomial(
                profile,
                &[design],
                self.bursty_dispersion,
                config,
            )?,
        };
        let at = self.entries.partition_point(|&(k, _)| k < key);
        self.entries.insert(at, (key, set));
        Ok(())
    }
}

/// A [`PolicyLibrary`] per live-worker count, for elastic pools.
///
/// Autoscaling changes the worker count `K` behind the balancer, and the
/// MDP transitions depend on `K` (each worker sees every `K`-th
/// arrival). A policy solved for the nominal pool is too optimistic the
/// moment the pool shrinks, and wastefully conservative when it grows.
/// The elastic library keys solved sets on `(live_workers, regime)`:
/// each worker count gets its own [`PolicyLibrary`] over the shared
/// [`RegimeGrid`], solved lazily as the autoscaler first visits that
/// pool size, so membership changes switch policies without a solver in
/// the critical path after the first visit.
///
/// Lookups degrade safely: [`Self::get_conservative`] falls back to the
/// largest solved pool *at most* the live count — a set solved for
/// fewer workers assumes each worker carries a larger share of the
/// load, so serving with it is conservative, never optimistic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticPolicyLibrary {
    grid: RegimeGrid,
    /// Count dispersion bursty regimes are solved against.
    bursty_dispersion: f64,
    /// `(worker count, library)`, ascending by worker count.
    pools: Vec<(usize, PolicyLibrary)>,
}

impl ElasticPolicyLibrary {
    /// Creates an empty elastic library over `grid`; populate it with
    /// [`Self::solve`].
    ///
    /// # Errors
    ///
    /// Rejects `bursty_dispersion <= 1` (as [`PolicyLibrary::empty`]).
    pub fn empty(grid: RegimeGrid, bursty_dispersion: f64) -> Result<Self, CoreError> {
        // Validate the dispersion once, up front, with the same rule
        // every per-pool library will apply.
        PolicyLibrary::empty(grid.clone(), bursty_dispersion)?;
        Ok(Self {
            grid,
            bursty_dispersion,
            pools: Vec::new(),
        })
    }

    /// The grid the library is keyed over.
    pub fn grid(&self) -> &RegimeGrid {
        &self.grid
    }

    /// The worker counts with at least one solved regime, ascending.
    pub fn worker_counts(&self) -> Vec<usize> {
        self.pools.iter().map(|&(k, _)| k).collect()
    }

    /// Total number of solved `(workers, regime)` entries.
    pub fn len(&self) -> usize {
        self.pools.iter().map(|(_, lib)| lib.len()).sum()
    }

    /// Whether no entry has been solved yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `(workers, key)` has a solved set.
    pub fn contains(&self, workers: usize, key: RegimeKey) -> bool {
        self.get(workers, key).is_some()
    }

    /// The policy set solved for exactly `(workers, key)`, if any.
    pub fn get(&self, workers: usize, key: RegimeKey) -> Option<&PolicySet> {
        self.pools
            .binary_search_by(|&(k, _)| k.cmp(&workers))
            .ok()
            .and_then(|i| self.pools[i].1.get(key))
    }

    /// The policy set for `key` solved at the largest worker count
    /// `<= live` — the safe direction when the exact pool size has not
    /// been solved yet (the set assumes each worker carries at least
    /// its real share of the load). Returns the solved count alongside
    /// the set; `None` when nothing at or below `live` is solved.
    pub fn get_conservative(&self, live: usize, key: RegimeKey) -> Option<(usize, &PolicySet)> {
        self.pools
            .iter()
            .rev()
            .filter(|&&(k, _)| k <= live)
            .find_map(|&(k, ref lib)| lib.get(key).map(|set| (k, set)))
    }

    /// Solves the set for `(workers, key)` and inserts it, overriding
    /// `config.workers` with the requested pool size. No-op if already
    /// solved.
    ///
    /// # Errors
    ///
    /// Rejects `workers == 0`, the out-of-grid bin, and propagates
    /// generation failures.
    pub fn solve(
        &mut self,
        profile: &WorkerProfile,
        config: &PolicyConfig,
        workers: usize,
        key: RegimeKey,
    ) -> Result<(), CoreError> {
        if workers == 0 {
            return Err(CoreError::InvalidConfig(
                "cannot solve a policy for an empty pool".into(),
            ));
        }
        let at = match self.pools.binary_search_by(|&(k, _)| k.cmp(&workers)) {
            Ok(i) => i,
            Err(i) => {
                let lib = PolicyLibrary::empty(self.grid.clone(), self.bursty_dispersion)?;
                self.pools.insert(i, (workers, lib));
                i
            }
        };
        let mut cfg = config.clone();
        cfg.workers = workers;
        self.pools[at].1.solve(profile, &cfg, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn quick_config() -> PolicyConfig {
        PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(8))
            .build()
    }

    fn grid() -> RegimeGrid {
        RegimeGrid::new(vec![120.0, 280.0])
    }

    #[test]
    fn poisson_bins_cover_the_grid() {
        let lib =
            PolicyLibrary::generate_poisson_bins(profile(), grid(), 4.0, &quick_config()).unwrap();
        assert_eq!(lib.len(), 2);
        for bin in 0..2 {
            let key = RegimeKey::new(bin, DispersionClass::Poisson);
            assert!(lib.contains(key));
            let set = lib.get(key).unwrap();
            assert_eq!(set.loads(), vec![lib.grid().design_rate_qps(bin).unwrap()]);
        }
        assert!(!lib.contains(RegimeKey::new(0, DispersionClass::Bursty)));
    }

    #[test]
    fn lazy_solve_adds_bursty_regimes() {
        let mut lib = PolicyLibrary::empty(grid(), 4.0).unwrap();
        assert!(lib.is_empty());
        let key = RegimeKey::new(1, DispersionClass::Bursty);
        lib.solve(profile(), &quick_config(), key).unwrap();
        assert_eq!(lib.regimes(), vec![key]);
        // Solving again is a no-op.
        lib.solve(profile(), &quick_config(), key).unwrap();
        assert_eq!(lib.len(), 1);
        // The bursty set is solved against the NB process at the bin's
        // design rate.
        assert_eq!(lib.get(key).unwrap().loads(), vec![280.0]);
    }

    #[test]
    fn bursty_policies_are_more_conservative() {
        // At the same design load, over-dispersed arrivals mean a
        // higher expected violation rate (the solver anticipates
        // bursts) — the guarantee must not improve with burstiness.
        let cfg = quick_config();
        let poisson = PolicySet::generate_poisson(profile(), &[240.0], &cfg).unwrap();
        let bursty = PolicySet::generate_negative_binomial(profile(), &[240.0], 4.0, &cfg).unwrap();
        let gp = poisson.policies()[0].guarantees();
        let gb = bursty.policies()[0].guarantees();
        assert!(
            gb.expected_violation_rate >= gp.expected_violation_rate - 1e-9,
            "bursty {} vs poisson {}",
            gb.expected_violation_rate,
            gp.expected_violation_rate
        );
    }

    #[test]
    fn out_of_grid_solve_is_rejected() {
        let mut lib = PolicyLibrary::empty(grid(), 4.0).unwrap();
        let err = lib.solve(
            profile(),
            &quick_config(),
            RegimeKey::new(2, DispersionClass::Poisson),
        );
        assert!(err.is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn rejects_bad_dispersion() {
        assert!(PolicyLibrary::empty(grid(), 1.0).is_err());
        assert!(PolicyLibrary::empty(grid(), f64::NAN).is_err());
        assert!(
            PolicySet::generate_negative_binomial(profile(), &[100.0], 0.5, &quick_config())
                .is_err()
        );
    }

    #[test]
    fn shed_policy_round_trips_serde() {
        for shed in [
            ShedPolicy::Never,
            ShedPolicy::Hopeless,
            ShedPolicy::QueueDepth(32),
        ] {
            let json = serde_json::to_string(&shed).unwrap();
            assert_eq!(serde_json::from_str::<ShedPolicy>(&json).unwrap(), shed);
        }
        assert_eq!(ShedPolicy::default(), ShedPolicy::Never);
    }

    #[test]
    fn elastic_library_keys_on_workers_and_regime() {
        let mut lib = ElasticPolicyLibrary::empty(grid(), 4.0).unwrap();
        assert!(lib.is_empty());
        let key = RegimeKey::new(0, DispersionClass::Poisson);
        lib.solve(profile(), &quick_config(), 2, key).unwrap();
        lib.solve(profile(), &quick_config(), 4, key).unwrap();
        // Re-solving an existing entry is a no-op.
        lib.solve(profile(), &quick_config(), 4, key).unwrap();
        assert_eq!(lib.len(), 2);
        assert_eq!(lib.worker_counts(), vec![2, 4]);
        assert!(lib.contains(2, key));
        assert!(!lib.contains(3, key));
        // Exact lookup misses unsolved pool sizes; the conservative
        // lookup degrades to the largest solved count at most `live`.
        assert!(lib.get(3, key).is_none());
        let (k, _) = lib.get_conservative(3, key).unwrap();
        assert_eq!(k, 2);
        let (k, _) = lib.get_conservative(9, key).unwrap();
        assert_eq!(k, 4);
        assert!(lib.get_conservative(1, key).is_none());
        // Sets are genuinely solved per worker count: the pool size in
        // the policy's config differs.
        let two = lib.get(2, key).unwrap().policies()[0].clone();
        let four = lib.get(4, key).unwrap().policies()[0].clone();
        assert_ne!(two, four);
    }

    #[test]
    fn elastic_library_rejects_bad_shapes() {
        assert!(ElasticPolicyLibrary::empty(grid(), 1.0).is_err());
        let mut lib = ElasticPolicyLibrary::empty(grid(), 4.0).unwrap();
        let key = RegimeKey::new(0, DispersionClass::Poisson);
        assert!(lib.solve(profile(), &quick_config(), 0, key).is_err());
        assert!(lib
            .solve(
                profile(),
                &quick_config(),
                2,
                RegimeKey::new(9, DispersionClass::Poisson)
            )
            .is_err());
        assert!(lib.is_empty());
    }

    #[test]
    fn elastic_library_round_trips_serde() {
        let mut lib = ElasticPolicyLibrary::empty(grid(), 4.0).unwrap();
        lib.solve(
            profile(),
            &quick_config(),
            2,
            RegimeKey::new(0, DispersionClass::Poisson),
        )
        .unwrap();
        let json = serde_json::to_string(&lib).unwrap();
        let back: ElasticPolicyLibrary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn library_round_trips_serde() {
        let lib = PolicyLibrary::generate(
            profile(),
            grid(),
            4.0,
            &quick_config(),
            &[RegimeKey::new(0, DispersionClass::Poisson)],
        )
        .unwrap();
        let json = serde_json::to_string(&lib).unwrap();
        let back: PolicyLibrary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lib);
    }
}
