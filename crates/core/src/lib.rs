//! RAMSIS core: the paper's MDP formulation of per-worker model
//! selection, offline policy generation, and probabilistic guarantees.
//!
//! The pipeline mirrors the paper's offline phase (§3.1):
//!
//! 1. **Inputs** — a latency/accuracy [`ramsis_profiles::WorkerProfile`],
//!    an arrival distribution (`PF(k, T)`,
//!    [`ramsis_stats::ArrivalProcess`]), a response-latency SLO, and the
//!    worker count `K` served by the round-robin load balancer
//!    ([`config::PolicyConfig`]).
//! 2. **State space** — worker-queue states `(n, T_j)` over a discrete
//!    slack grid ([`discretize`], §4.2), plus the empty-queue state and
//!    the full-queue state `(φ, ∅)` ([`state`], §4.2.3–4.3.4).
//! 3. **Actions** — `(model, batch)` pairs constrained by latency, batch
//!    strategy, and Pareto pruning ([`action`], §4.3).
//! 4. **Transitions** — the interval-counting derivation of §4.4 for
//!    round-robin balancing ([`transitions`]) or the conditional-Poisson
//!    approximation of appendix §I for shortest-queue-first ([`sqf`]).
//! 5. **Solution** — value iteration over the assembled sparse MDP
//!    ([`generator`], §4.1), yielding a [`policy::WorkerPolicy`].
//! 6. **Guarantees** — expected accuracy and expected SLO violation rate
//!    from the stationary distribution ([`guarantees`], §5.1).
//! 7. **Deployment set** — per-load policy sets with the 1% adjacent-
//!    accuracy refinement rule and lowest-satisfying-load selection
//!    ([`policy_set`], §3.2.2 and §6).

pub mod action;
pub mod config;
pub mod discretize;
pub mod error;
pub mod fallback;
pub mod generator;
pub mod guarantees;
pub mod policy;
pub mod policy_set;
pub mod regime;
pub mod sqf;
pub mod state;
pub mod transitions;

pub use action::{Action, Batching};
pub use config::{
    Balancing, MissPolicy, PolicyConfig, PolicyConfigBuilder, RewardKind, SolverKind,
};
pub use discretize::{Discretization, TimeGrid};
pub use error::CoreError;
pub use fallback::FallbackPolicy;
pub use generator::{
    assemble_mdp as assemble_mdp_for_bench, generate_policy, generate_policy_traced, mdp_dimensions,
};
pub use guarantees::{AccuracyDistribution, Guarantees};
pub use policy::{Decision, WorkerPolicy};
pub use policy_set::{DegradablePolicySet, PolicySet};
pub use ramsis_mdp::{ConvergenceTrace, SweepRecord};
pub use regime::{ElasticPolicyLibrary, PolicyLibrary, ShedPolicy};
pub use state::{State, StateSpace};

/// The Poisson arrival process (re-exported for API convenience; the
/// paper's experiments all assume Poisson arrivals, §3.1.1).
pub use ramsis_stats::PoissonProcess as PoissonArrivals;
