//! Deployable worker-level model-selection policies.
//!
//! A [`WorkerPolicy`] is the offline output of RAMSIS (paper §3.1.3):
//! the optimal action for every worker-queue state, plus the metadata
//! needed to map a *runtime* queue observation (`n` queued queries,
//! earliest-deadline slack) onto a state. Policies serialize to JSON,
//! mirroring the paper artifact's
//! `policy_gen/METHOD_NUMWORKERS_SLO/LOAD.json` files ("a dictionary
//! mapping states of the MDP to actions" — see
//! [`WorkerPolicy::artifact_map`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use ramsis_profiles::WorkerProfile;

use crate::action::Action;
use crate::config::PolicyConfig;
use crate::discretize::TimeGrid;
use crate::guarantees::{AccuracyDistribution, Guarantees};
use crate::state::{State, StateSpace};

/// A runtime model-selection decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The queue is empty: idle until the next arrival (the arrival
    /// action `â`).
    Wait,
    /// Serve the `batch` earliest-deadline queries on `model`.
    Serve {
        /// Catalog index of the selected model.
        model: usize,
        /// Number of queries to batch.
        batch: u32,
    },
    /// Shed `count` queries whose deadlines cannot be met
    /// ([`crate::config::MissPolicy::Drop`]).
    Drop {
        /// Number of queries to discard.
        count: u32,
    },
}

/// An offline-generated per-worker model-selection policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerPolicy {
    /// The configuration the policy was generated under.
    pub config: PolicyConfig,
    /// The central-queue load (QPS) the policy is specialized for.
    pub design_load_qps: f64,
    /// Name of the arrival process (`"poisson"`, ...).
    pub process_name: String,
    /// Number of value/policy-iteration sweeps the solver used.
    pub solve_iterations: usize,
    /// Wall-clock policy-generation time in seconds.
    pub generation_seconds: f64,
    grid: TimeGrid,
    space: StateSpace,
    actions: Vec<Action>,
    guarantees: Guarantees,
    /// Stationary probability per state under this policy (§5.1).
    stationary: Vec<f64>,
}

impl WorkerPolicy {
    /// Assembles a policy (used by the generator; not public API).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: PolicyConfig,
        design_load_qps: f64,
        process_name: String,
        grid: TimeGrid,
        space: StateSpace,
        actions: Vec<Action>,
        guarantees: Guarantees,
        stationary: Vec<f64>,
        solve_iterations: usize,
        generation_seconds: f64,
    ) -> Self {
        assert_eq!(actions.len(), space.len(), "one action per state");
        assert_eq!(stationary.len(), space.len(), "one probability per state");
        Self {
            config,
            design_load_qps,
            process_name,
            solve_iterations,
            generation_seconds,
            grid,
            space,
            actions,
            guarantees,
            stationary,
        }
    }

    /// The §5.1 guarantees computed at generation time.
    pub fn guarantees(&self) -> &Guarantees {
        &self.guarantees
    }

    /// The stationary probability of each state under this policy.
    pub fn stationary(&self) -> &[f64] {
        &self.stationary
    }

    /// The per-query accuracy distribution (§5.1's summary statistics
    /// beyond the expectation): e.g.
    /// `policy.accuracy_distribution(&profile).quantile(0.5)` is the
    /// median accuracy a satisfied query receives.
    pub fn accuracy_distribution(&self, profile: &WorkerProfile) -> AccuracyDistribution {
        AccuracyDistribution::compute(
            profile,
            &self.grid,
            &self.space,
            &self.actions,
            &self.stationary,
        )
    }

    /// The slack grid `T_w` (§4.2).
    pub fn grid(&self) -> &TimeGrid {
        &self.grid
    }

    /// The state space.
    pub fn space(&self) -> &StateSpace {
        &self.space
    }

    /// The stored action for a symbolic state.
    pub fn action_at(&self, state: State) -> Action {
        self.actions[self.space.index(state)]
    }

    /// Maps a runtime queue observation to a decision (§3.2.2): `n`
    /// queued queries whose earliest deadline has `slack_s` seconds
    /// remaining (negative when already blown).
    ///
    /// Queue lengths beyond `N_w` hit the `(φ, ∅)` state's forced action
    /// and serve the entire queue (the evaluation never drops queries,
    /// §7 "Baseline MS&S Policies").
    pub fn decide(&self, n: usize, slack_s: f64) -> Decision {
        if n == 0 {
            return Decision::Wait;
        }
        let nw = self.space.max_queue() as usize;
        let state = if n > nw {
            State::Full
        } else {
            State::Queued {
                n: n as u32,
                slack: self.grid.floor_index(slack_s) as u32,
            }
        };
        match self.action_at(state) {
            Action::Arrival => Decision::Wait,
            Action::Shed => Decision::Drop { count: n as u32 },
            Action::Serve { model, batch } => Decision::Serve {
                model: model as usize,
                // The overflow state's stored batch is N_w; serve the
                // real queue in full.
                batch: if n > nw { n as u32 } else { batch },
            },
        }
    }

    /// Serializes the policy to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("policy serialization is infallible")
    }

    /// Deserializes a policy from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// The artifact-style state→action dictionary: keys are
    /// `"(n, T_j_ms)"`, values are `"(model_name, batch)"` (or
    /// `"wait"`); useful for eyeballing and diffing policies.
    pub fn artifact_map(&self, profile: &WorkerProfile) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        for (i, st) in self.space.iter() {
            let key = match st {
                State::Empty => "(0, -)".to_owned(),
                State::Queued { n, slack } => {
                    format!("({n}, {:.1}ms)", self.grid.value(slack as usize) * 1e3)
                }
                State::Full => "(full, 0ms)".to_owned(),
            };
            let value = match self.actions[i] {
                Action::Arrival => "wait".to_owned(),
                Action::Shed => "drop".to_owned(),
                Action::Serve { model, batch } => {
                    format!("({}, {batch})", profile.models[model as usize].name)
                }
            };
            map.insert(key, value);
        }
        map
    }

    /// Catalog indices of every model the policy ever selects.
    pub fn models_used(&self) -> Vec<usize> {
        let mut used: Vec<usize> = self
            .actions
            .iter()
            .filter_map(|a| match a {
                Action::Serve { model, .. } => Some(*model as usize),
                Action::Arrival | Action::Shed => None,
            })
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyConfig;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    /// Hand-built tiny policy: fast model everywhere, batch = n.
    fn tiny_policy() -> WorkerPolicy {
        let p = profile();
        let grid = TimeGrid::build(p, 0.15, Discretization::fixed_length(10));
        let space = StateSpace::new(4, grid.len() as u32);
        let fast = p.fastest_model() as u32;
        let actions: Vec<Action> = space
            .iter()
            .map(|(_, st)| match st {
                State::Empty => Action::Arrival,
                State::Queued { n, .. } => Action::Serve {
                    model: fast,
                    batch: n,
                },
                State::Full => Action::Serve {
                    model: fast,
                    batch: space.max_queue(),
                },
            })
            .collect();
        let g = Guarantees {
            expected_accuracy: p.accuracy(fast as usize),
            expected_violation_rate: 0.0,
            epoch_accuracy: p.accuracy(fast as usize),
            epoch_violation_rate: 0.0,
            full_state_probability: 0.0,
            empty_state_probability: 0.5,
        };
        let stationary = vec![1.0 / space.len() as f64; space.len()];
        WorkerPolicy::new(
            PolicyConfig::builder(Duration::from_millis(150)).build(),
            400.0,
            "poisson".into(),
            grid,
            space,
            actions,
            g,
            stationary,
            10,
            0.5,
        )
    }

    #[test]
    fn decide_empty_queue_waits() {
        let p = tiny_policy();
        assert_eq!(p.decide(0, 0.15), Decision::Wait);
    }

    #[test]
    fn decide_serves_batch_n() {
        let p = tiny_policy();
        let fast = profile().fastest_model();
        assert_eq!(
            p.decide(3, 0.15),
            Decision::Serve {
                model: fast,
                batch: 3
            }
        );
    }

    #[test]
    fn decide_overflow_serves_everything() {
        let p = tiny_policy();
        let fast = profile().fastest_model();
        // N_w = 4; a queue of 9 hits the Full state but serves all 9.
        assert_eq!(
            p.decide(9, -0.01),
            Decision::Serve {
                model: fast,
                batch: 9
            }
        );
    }

    #[test]
    fn decide_clamps_negative_slack() {
        let p = tiny_policy();
        // Negative slack maps to the exhausted bin, not a panic.
        assert!(matches!(p.decide(2, -1.0), Decision::Serve { .. }));
    }

    #[test]
    fn json_round_trip() {
        let p = tiny_policy();
        let json = p.to_json();
        let back = WorkerPolicy::from_json(&json).unwrap();
        assert_eq!(p, back);
        assert!(WorkerPolicy::from_json("{not json").is_err());
    }

    #[test]
    fn artifact_map_is_readable() {
        let p = tiny_policy();
        let map = p.artifact_map(profile());
        assert_eq!(map.len(), p.space().len());
        assert_eq!(map.get("(0, -)").map(String::as_str), Some("wait"));
        let any_serve = map.values().any(|v| v.contains("shufflenet"));
        assert!(any_serve);
    }

    #[test]
    fn models_used_deduplicates() {
        let p = tiny_policy();
        assert_eq!(p.models_used(), vec![profile().fastest_model()]);
    }
}
