//! Probabilistic accuracy and latency guarantees (paper §5.1).
//!
//! Given a policy `π_w`, the stationary distribution `P_π(s)` of the
//! induced chain (power iteration, [`ramsis_mdp::stationary_distribution`])
//! yields closed-form expectations over the state space:
//!
//! - expected latency-SLO violation rate (an *upper bound* on the
//!   observed rate: the discretized slack underestimates the real slack,
//!   and a missed earliest deadline conservatively counts the whole
//!   batch as missed),
//! - expected inference accuracy (a *lower bound* on the observed
//!   accuracy per satisfied query, for the same reasons).
//!
//! The paper's formulas are per decision *epoch*. The online metrics of
//! §7 are per *query*, so we also compute batch-size-weighted variants:
//! an epoch serving 8 queries contributes 8 queries' worth of accuracy
//! and violations. Both are exposed; Fig. 7 compares the per-query
//! variants against simulation and implementation measurements.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;

use crate::action::{slo_satisfied, Action};
use crate::discretize::TimeGrid;
use crate::state::{State, StateSpace};

/// Offline expectations for a generated policy (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Guarantees {
    /// Expected accuracy per *satisfied query* (batch-weighted), percent.
    pub expected_accuracy: f64,
    /// Expected fraction of *queries* whose deadline is missed.
    pub expected_violation_rate: f64,
    /// The paper's per-epoch accuracy expectation (conditioned on
    /// satisfied serving epochs), percent.
    pub epoch_accuracy: f64,
    /// The paper's per-epoch violation expectation (conditioned on
    /// serving epochs).
    pub epoch_violation_rate: f64,
    /// Stationary probability of the `(φ, ∅)` overflow state — an
    /// indicator that the resources cannot sustain the load (§4.2.3).
    pub full_state_probability: f64,
    /// Stationary probability of the empty-queue state — an indicator of
    /// arrival lulls the policy can exploit.
    pub empty_state_probability: f64,
}

/// Computes the §5.1 expectations for a policy.
///
/// `actions[i]` is the policy's choice in state index `i`;
/// `stationary[i]` is the chain's stationary probability.
///
/// # Panics
///
/// Panics if the vector lengths disagree with the state space.
pub fn compute_guarantees(
    profile: &WorkerProfile,
    grid: &TimeGrid,
    space: &StateSpace,
    actions: &[Action],
    stationary: &[f64],
) -> Guarantees {
    assert_eq!(actions.len(), space.len(), "one action per state");
    assert_eq!(stationary.len(), space.len(), "one probability per state");

    // Per-epoch accumulators.
    let mut serving_mass = 0.0;
    let mut satisfied_mass = 0.0;
    let mut epoch_acc_mass = 0.0;
    // Per-query accumulators (weighted by batch size).
    let mut query_mass = 0.0;
    let mut satisfied_query_mass = 0.0;
    let mut query_acc_mass = 0.0;

    for (i, st) in space.iter() {
        let p = stationary[i];
        let action = actions[i];
        if let Action::Shed = action {
            // Shedding discards the whole queue: those queries count
            // against the violation rate but never earn accuracy.
            let (n, _) = space
                .effective_queue(st)
                .expect("shed only occurs in queue states");
            serving_mass += p;
            query_mass += p * n as f64;
            continue;
        }
        let Action::Serve { model, batch } = action else {
            continue;
        };
        let (_, slack) = space
            .effective_queue(st)
            .expect("serve actions only occur in queue states");
        let sat = slo_satisfied(profile, grid, slack as usize, action);
        let acc = profile.accuracy(model as usize);
        let b = batch as f64;

        serving_mass += p;
        query_mass += p * b;
        if sat {
            satisfied_mass += p;
            epoch_acc_mass += p * acc;
            satisfied_query_mass += p * b;
            query_acc_mass += p * b * acc;
        }
    }

    let safe_div = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    Guarantees {
        expected_accuracy: safe_div(query_acc_mass, satisfied_query_mass),
        expected_violation_rate: safe_div(query_mass - satisfied_query_mass, query_mass),
        epoch_accuracy: safe_div(epoch_acc_mass, satisfied_mass),
        epoch_violation_rate: safe_div(serving_mass - satisfied_mass, serving_mass),
        full_state_probability: stationary[space.index(State::Full)],
        empty_state_probability: stationary[space.index(State::Empty)],
    }
}

/// The per-query accuracy distribution induced by a policy — the §5.1
/// "summary statistics (e.g., expectation, median, 99th percentile)"
/// beyond the expectation.
///
/// The distribution is over the accuracy a random *satisfied* query
/// receives under the stationary distribution: each satisfied serving
/// state contributes its batch-weighted stationary mass at the selected
/// model's accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyDistribution {
    /// `(accuracy, probability)` atoms, ascending accuracy, summing
    /// to 1 (empty when the policy never satisfies a deadline).
    atoms: Vec<(f64, f64)>,
}

impl AccuracyDistribution {
    /// Builds the distribution for a policy.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree with the state space (see
    /// [`compute_guarantees`]).
    pub fn compute(
        profile: &WorkerProfile,
        grid: &TimeGrid,
        space: &StateSpace,
        actions: &[Action],
        stationary: &[f64],
    ) -> Self {
        assert_eq!(actions.len(), space.len(), "one action per state");
        assert_eq!(stationary.len(), space.len(), "one probability per state");
        let mut mass_by_accuracy: Vec<(f64, f64)> = Vec::new();
        for (i, _) in space.iter() {
            let action = actions[i];
            let Action::Serve { model, batch } = action else {
                continue;
            };
            let (_, slack) = space
                .effective_queue(space.state(i))
                .expect("serve actions only occur in queue states");
            if !slo_satisfied(profile, grid, slack as usize, action) {
                continue;
            }
            let acc = profile.accuracy(model as usize);
            let w = stationary[i] * batch as f64;
            if w <= 0.0 {
                continue;
            }
            match mass_by_accuracy
                .iter_mut()
                .find(|(a, _)| (*a - acc).abs() < 1e-12)
            {
                Some((_, m)) => *m += w,
                None => mass_by_accuracy.push((acc, w)),
            }
        }
        mass_by_accuracy.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("accuracies are finite"));
        let total: f64 = mass_by_accuracy.iter().map(|&(_, m)| m).sum();
        if total > 0.0 {
            for (_, m) in &mut mass_by_accuracy {
                *m /= total;
            }
        }
        Self {
            atoms: mass_by_accuracy,
        }
    }

    /// The `(accuracy, probability)` atoms, ascending accuracy.
    pub fn atoms(&self) -> &[(f64, f64)] {
        &self.atoms
    }

    /// Whether the policy never satisfies a deadline.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Mean accuracy (equals [`Guarantees::expected_accuracy`]).
    pub fn mean(&self) -> f64 {
        self.atoms.iter().map(|&(a, p)| a * p).sum()
    }

    /// The `q`-quantile of per-query accuracy, `q ∈ [0, 1]` — e.g.
    /// `quantile(0.5)` is the median, `quantile(0.01)` the accuracy the
    /// unluckiest 1% of queries at least receive (the paper's "99th
    /// percentile" read as a tail guarantee). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0, 1], got {q}"
        );
        if self.atoms.is_empty() {
            return None;
        }
        let mut cum = 0.0;
        for &(a, p) in &self.atoms {
            cum += p;
            if cum >= q - 1e-12 {
                return Some(a);
            }
        }
        Some(self.atoms.last().expect("non-empty").0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn fixture() -> (&'static WorkerProfile, TimeGrid, StateSpace) {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        let profile = PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        });
        let grid = TimeGrid::build(profile, 0.15, Discretization::fixed_length(10));
        let space = StateSpace::new(4, grid.len() as u32);
        (profile, grid, space)
    }

    /// A uniform stationary distribution and a fixed action everywhere.
    fn uniform_setup(
        _profile: &WorkerProfile,
        _grid: &TimeGrid,
        space: &StateSpace,
        model: u32,
    ) -> (Vec<Action>, Vec<f64>) {
        let actions: Vec<Action> = space
            .iter()
            .map(|(_, st)| match st {
                State::Empty => Action::Arrival,
                State::Queued { n, .. } => Action::Serve { model, batch: n },
                State::Full => Action::Serve {
                    model,
                    batch: space.max_queue(),
                },
            })
            .collect();
        let stationary = vec![1.0 / space.len() as f64; space.len()];
        (actions, stationary)
    }

    #[test]
    fn all_satisfied_when_fast_and_slack_full() {
        let (profile, grid, space) = fixture();
        let fast = profile.fastest_model() as u32;
        let actions: Vec<Action> = space
            .iter()
            .map(|(_, st)| match st {
                State::Empty => Action::Arrival,
                _ => Action::Serve {
                    model: fast,
                    batch: 1,
                },
            })
            .collect();
        // All stationary mass on the freshest single-query state.
        let mut stationary = vec![0.0; space.len()];
        let fresh = space.index(State::Queued {
            n: 1,
            slack: grid.top() as u32,
        });
        stationary[fresh] = 1.0;
        let g = compute_guarantees(profile, &grid, &space, &actions, &stationary);
        assert_eq!(g.expected_violation_rate, 0.0);
        assert!((g.expected_accuracy - profile.accuracy(fast as usize)).abs() < 1e-12);
        assert_eq!(g.full_state_probability, 0.0);
    }

    #[test]
    fn zero_slack_states_violate() {
        let (profile, grid, space) = fixture();
        let fast = profile.fastest_model() as u32;
        let (actions, _) = uniform_setup(profile, &grid, &space, fast);
        // All mass on a zero-slack state: the deadline is already
        // unsatisfiable, so everything violates.
        let mut stationary = vec![0.0; space.len()];
        stationary[space.index(State::Queued { n: 2, slack: 0 })] = 1.0;
        let g = compute_guarantees(profile, &grid, &space, &actions, &stationary);
        assert_eq!(g.expected_violation_rate, 1.0);
        assert_eq!(g.epoch_violation_rate, 1.0);
        // No satisfied query mass: accuracy conditional is empty.
        assert_eq!(g.expected_accuracy, 0.0);
    }

    #[test]
    fn empty_state_mass_is_reported_not_counted() {
        let (profile, grid, space) = fixture();
        let fast = profile.fastest_model() as u32;
        let (actions, _) = uniform_setup(profile, &grid, &space, fast);
        let mut stationary = vec![0.0; space.len()];
        stationary[space.index(State::Empty)] = 0.5;
        stationary[space.index(State::Queued {
            n: 1,
            slack: grid.top() as u32,
        })] = 0.5;
        let g = compute_guarantees(profile, &grid, &space, &actions, &stationary);
        // Serving metrics are conditioned on serving epochs: the empty
        // state's mass does not dilute accuracy.
        assert!((g.expected_accuracy - profile.accuracy(fast as usize)).abs() < 1e-12);
        assert_eq!(g.expected_violation_rate, 0.0);
        assert_eq!(g.empty_state_probability, 0.5);
    }

    #[test]
    fn batch_weighting_differs_from_epoch_weighting() {
        let (profile, grid, space) = fixture();
        let pareto = profile.pareto_models();
        let fast = pareto[0] as u32;
        let accurate = pareto[2] as u32;
        // Two states: a batch-1 epoch on the accurate model and a
        // batch-4 epoch on the fast model, equal epoch probability, both
        // satisfied (top slack).
        let top = grid.top() as u32;
        let mut actions: Vec<Action> = space
            .iter()
            .map(|(_, st)| match st {
                State::Empty => Action::Arrival,
                State::Queued { n, .. } => Action::Serve {
                    model: fast,
                    batch: n,
                },
                State::Full => Action::Serve {
                    model: fast,
                    batch: space.max_queue(),
                },
            })
            .collect();
        let s1 = space.index(State::Queued { n: 1, slack: top });
        let s4 = space.index(State::Queued { n: 4, slack: top });
        actions[s1] = Action::Serve {
            model: accurate,
            batch: 1,
        };
        let mut stationary = vec![0.0; space.len()];
        stationary[s1] = 0.5;
        stationary[s4] = 0.5;
        let g = compute_guarantees(profile, &grid, &space, &actions, &stationary);
        let acc_fast = profile.accuracy(fast as usize);
        let acc_acc = profile.accuracy(accurate as usize);
        // Epoch accuracy: plain average of the two models.
        assert!((g.epoch_accuracy - 0.5 * (acc_fast + acc_acc)).abs() < 1e-9);
        // Query accuracy: 1 accurate query vs 4 fast queries.
        let expect = (acc_acc + 4.0 * acc_fast) / 5.0;
        assert!((g.expected_accuracy - expect).abs() < 1e-9);
        assert!(g.epoch_accuracy > g.expected_accuracy);
    }

    #[test]
    fn accuracy_distribution_quantiles() {
        let (profile, grid, space) = fixture();
        let pareto = profile.pareto_models();
        let fast = pareto[0] as u32;
        let accurate = pareto[2] as u32;
        let top = grid.top() as u32;
        // Two satisfied states: 30% of query mass on the accurate model
        // (batch 1), 70% on the fast model (batch 1).
        let mut actions: Vec<Action> = space
            .iter()
            .map(|(_, st)| match st {
                State::Empty => Action::Arrival,
                State::Queued { n, .. } => Action::Serve {
                    model: fast,
                    batch: n,
                },
                State::Full => Action::Serve {
                    model: fast,
                    batch: space.max_queue(),
                },
            })
            .collect();
        let s_acc = space.index(State::Queued { n: 1, slack: top });
        let s_fast = space.index(State::Queued {
            n: 1,
            slack: top - 1,
        });
        actions[s_acc] = Action::Serve {
            model: accurate,
            batch: 1,
        };
        let mut stationary = vec![0.0; space.len()];
        stationary[s_acc] = 0.3;
        stationary[s_fast] = 0.7;
        let d = AccuracyDistribution::compute(profile, &grid, &space, &actions, &stationary);
        assert!(!d.is_empty());
        assert_eq!(d.atoms().len(), 2);
        let acc_fast = profile.accuracy(fast as usize);
        let acc_acc = profile.accuracy(accurate as usize);
        assert!((d.mean() - (0.3 * acc_acc + 0.7 * acc_fast)).abs() < 1e-9);
        // Quantiles: the bottom 70% of queries get the fast model's
        // accuracy; above that, the accurate model's.
        assert_eq!(d.quantile(0.0), Some(acc_fast));
        assert_eq!(d.quantile(0.5), Some(acc_fast));
        assert_eq!(d.quantile(0.7), Some(acc_fast));
        assert_eq!(d.quantile(0.9), Some(acc_acc));
        assert_eq!(d.quantile(1.0), Some(acc_acc));
    }

    #[test]
    fn accuracy_distribution_empty_when_all_violate() {
        let (profile, grid, space) = fixture();
        let fast = profile.fastest_model() as u32;
        let (actions, _) = uniform_setup(profile, &grid, &space, fast);
        // All mass on a zero-slack (violating) state.
        let mut stationary = vec![0.0; space.len()];
        stationary[space.index(State::Queued { n: 1, slack: 0 })] = 1.0;
        let d = AccuracyDistribution::compute(profile, &grid, &space, &actions, &stationary);
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn accuracy_distribution_rejects_bad_quantile() {
        let (profile, grid, space) = fixture();
        let fast = profile.fastest_model() as u32;
        let (actions, stationary) = uniform_setup(profile, &grid, &space, fast);
        let d = AccuracyDistribution::compute(profile, &grid, &space, &actions, &stationary);
        let _ = d.quantile(1.5);
    }

    #[test]
    fn serde_round_trip() {
        let g = Guarantees {
            expected_accuracy: 80.0,
            expected_violation_rate: 0.01,
            epoch_accuracy: 81.0,
            epoch_violation_rate: 0.02,
            full_state_probability: 1e-9,
            empty_state_probability: 0.3,
        };
        let json = serde_json::to_string(&g).unwrap();
        assert_eq!(serde_json::from_str::<Guarantees>(&json).unwrap(), g);
    }
}
