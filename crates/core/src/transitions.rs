//! Worker-MDP transition probabilities for round-robin load balancing
//! (paper §4.4).
//!
//! Transition `(n, T_j) --(m, b)--> (n', T_{j'})` probabilities are
//! derived from the central-queue arrival distribution `PF(k, T)` and
//! the round-robin balancer: with `K` workers, a worker receives every
//! K-th central-queue arrival. The paper conditions on four
//! non-overlapping intervals (Fig. 4):
//!
//! - **A** (`T_A = SLO − T_j`): from the earliest queued query's arrival
//!   to the decision. The number of central arrivals `k_A` lies in
//!   `[(n−1)K, nK−1]` (exactly `n − 1` further worker deliveries), and
//!   the round-robin *phase* is `r = k_A mod K`.
//! - **B**: after the decision, before the next worker delivery window —
//!   zero worker arrivals.
//! - **C**: the window during which the first post-decision worker
//!   arrival must land for the next state's slack to fall in bin `j'`.
//! - **D**: the remainder of the service time `l_w(m, b)`, during which
//!   the other `n' − 1` worker arrivals accumulate.
//!
//! ## Implementation notes
//!
//! The quadruple sum of Eq. 2 is reorganized for tractability:
//!
//! 1. The `(r, k_B)` pair only matters through the *residual phase*
//!    `u = K − r − k_B` (central arrivals still needed for the next
//!    worker delivery at the start of interval C), giving weights
//!    `W(u) = Σ_r w(r) · PF(K − r − u, T_B)`.
//! 2. The interval-D mass depends on `(n', v)` only through
//!    `v = k_C − u`, so `H(v) = Σ_u W(u) · PF(u + v, T_C)` is shared by
//!    every `n'`, reducing the per-`(state, action, j')` cost to
//!    `O(c² + N_w · c)` where `c` is the truncated support of the
//!    interval-C count distribution.
//! 3. Slack bins partition the service interval: bin `j'`'s first-arrival
//!    window is `[max(0, L + T_{j'} − SLO), L + T_{j'+1} − SLO]` clamped
//!    to `[0, L]`, with bin 0's window extended to start at 0 so
//!    arrivals whose deadline is already blown (negative slack) land in
//!    the exhausted-slack bin rather than leaking probability mass.
//!    (This realizes the paper's "we set T_B = 0" clamping rule.)
//! 4. Poisson tables are memoized per interval length; the Full-state
//!    mass is the complement (Eq. 3).
//!
//! Variable batching (`b < n`, §4.3.2) is not derived in the paper
//! ("follows similar reasoning"); we model it as: the earliest remaining
//! query's slack is `T_j − l_w(m, b)` (conservative: the `b+1`-th
//! deadline can only be later), and worker arrivals during the service
//! time follow the same phase-conditioned counting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use ramsis_profiles::WorkerProfile;
use ramsis_stats::counts::{ArrivalProcess, CountTable};

use crate::action::Action;
use crate::discretize::TimeGrid;
use crate::state::{State, StateSpace};

/// Memoized truncated count tables keyed by interval length.
///
/// One cache instance must only ever be fed a single arrival process —
/// the cache key is the interval length alone.
#[derive(Default)]
pub struct TableCache {
    tail_eps: f64,
    tables: RefCell<HashMap<u64, Rc<CountTable>>>,
}

impl TableCache {
    /// Creates a cache with the given truncation tolerance.
    pub fn new(tail_eps: f64) -> Self {
        Self {
            tail_eps,
            tables: RefCell::new(HashMap::new()),
        }
    }

    /// Returns (building from `process` if necessary) the table for
    /// interval length `t`.
    ///
    /// The cache key is the exact bit pattern of `t`: the §4.4 interval
    /// lengths must tile the service interval *exactly* or transition
    /// rows drift off 1 (quantizing keys to nanoseconds was measurably
    /// wrong — ~1e-6 of row mass over a 160-window grid). Recurring
    /// interval values are bit-identical because they are derived from
    /// the same grid and latency floats, so the cache still deduplicates.
    pub fn table(&self, process: &dyn ArrivalProcess, t: f64) -> Rc<CountTable> {
        debug_assert!(t >= 0.0, "interval must be non-negative, got {t}");
        let key = t.to_bits();
        if let Some(hit) = self.tables.borrow().get(&key) {
            return Rc::clone(hit);
        }
        let table = Rc::new(process.table(t, self.tail_eps));
        self.tables.borrow_mut().insert(key, Rc::clone(&table));
        table
    }

    /// Number of distinct tables built so far.
    pub fn len(&self) -> usize {
        self.tables.borrow().len()
    }

    /// Whether no table has been built.
    pub fn is_empty(&self) -> bool {
        self.tables.borrow().is_empty()
    }
}

/// Builds transition rows of a worker MDP under round-robin balancing.
pub struct TransitionBuilder<'a> {
    profile: &'a WorkerProfile,
    grid: &'a TimeGrid,
    space: &'a StateSpace,
    process: &'a dyn ArrivalProcess,
    cache: TableCache,
    /// Number of workers `K` behind the balancer.
    workers: usize,
    slo: f64,
    prune_eps: f64,
}

impl<'a> TransitionBuilder<'a> {
    /// Creates a builder.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    // The eight parameters are the §4.4 problem inputs; bundling them
    // into a struct would only rename the call site.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        profile: &'a WorkerProfile,
        grid: &'a TimeGrid,
        space: &'a StateSpace,
        process: &'a dyn ArrivalProcess,
        workers: usize,
        slo: f64,
        tail_eps: f64,
        prune_eps: f64,
    ) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            profile,
            grid,
            space,
            process,
            cache: TableCache::new(tail_eps),
            workers,
            slo,
            prune_eps,
        }
    }

    /// The memoized table cache (exposed for diagnostics and benches).
    pub fn cache(&self) -> &TableCache {
        &self.cache
    }

    /// Round-robin phase weights `w(r) = PF((n−1)K + r, T_A)`,
    /// normalized over `r ∈ [0, K)` (the denominator of Eq. 2).
    ///
    /// Degenerate states whose interval-A constraint has (numerically)
    /// zero probability fall back to phase 0 — they are unreachable
    /// under the arrival process, but the MDP still needs well-formed
    /// rows for them.
    fn phase_weights(&self, n: u32, slack: usize) -> Vec<f64> {
        let k = self.workers;
        let t_a = (self.slo - self.grid.value(slack)).max(0.0);
        let table = self.cache.table(self.process, t_a);
        let base = (n as u64 - 1) * k as u64;
        let mut w: Vec<f64> = (0..k).map(|r| table.pmf(base + r as u64)).collect();
        let total: f64 = w.iter().sum();
        if total > 0.0 {
            for x in &mut w {
                *x /= total;
            }
        } else {
            w.iter_mut().for_each(|x| *x = 0.0);
            w[0] = 1.0;
        }
        w
    }

    /// Service latency of an action, extrapolating beyond the profiled
    /// batch range for forced overflow service.
    fn service_latency(&self, model: u32, batch: u32) -> f64 {
        self.profile.latency_extrapolated(model as usize, batch)
    }

    /// The transition row for `(state, action)`: `(target index,
    /// probability)` pairs summing to 1 (up to table truncation, which
    /// the MDP builder renormalizes).
    ///
    /// # Panics
    ///
    /// Panics on contradictory inputs (arrival action in a non-empty
    /// state, serve action in the empty state, or `batch > n`).
    pub fn row(&self, state: State, action: Action) -> Vec<(usize, f64)> {
        match (state, action) {
            (State::Empty, Action::Arrival) => {
                // Case 1 (§4.4.1): the next arrival has full slack.
                let next = State::Queued {
                    n: 1,
                    slack: self.grid.top() as u32,
                };
                vec![(self.space.index(next), 1.0)]
            }
            (State::Empty, a) => panic!("serve action {a:?} invalid in the empty state"),
            (_, Action::Arrival) => panic!("arrival action invalid in a non-empty state"),
            (_, Action::Shed) => {
                // Shedding takes no service time: zero arrivals occur
                // before the next decision epoch, so the queue empties
                // deterministically ("changes to the transition
                // probabilities", §4.3.1).
                vec![(self.space.index(State::Empty), 1.0)]
            }
            (s, Action::Serve { model, batch }) => {
                let (n, slack) = self
                    .space
                    .effective_queue(s)
                    .expect("non-empty state has a queue");
                assert!(
                    batch >= 1 && batch <= n,
                    "batch {batch} out of range for n={n}"
                );
                if batch == n {
                    self.row_full_batch(n, slack as usize, model)
                } else {
                    self.row_partial_batch(n, slack as usize, model, batch)
                }
            }
        }
    }

    /// Case 2/3 (§4.4.2–4.4.3) with `b = n` (maximal batching or a
    /// variable-batching full batch).
    // Index-based loops mirror the paper's summation indices (u, v);
    // iterator adapters would obscure the derivation.
    #[allow(clippy::needless_range_loop)]
    fn row_full_batch(&self, n: u32, slack: usize, model: u32) -> Vec<(usize, f64)> {
        let k = self.workers;
        let l = self.service_latency(model, n);
        let w = self.phase_weights(n, slack);
        let table_l = self.cache.table(self.process, l);
        let mut row = Vec::new();
        let mut accounted = 0.0;

        // n' = 0: no worker arrival during the whole service interval —
        // fewer than K − r central arrivals.
        let mut p_empty = 0.0;
        for (r, &wr) in w.iter().enumerate() {
            if wr == 0.0 {
                continue;
            }
            let budget = (k - r - 1) as u64;
            p_empty += wr * table_l.cdf(budget);
        }
        if p_empty > self.prune_eps {
            row.push((self.space.index(State::Empty), p_empty));
        }
        accounted += p_empty;

        // n' >= 1 targets, organized per slack bin j'.
        let nw = self.space.max_queue();
        for j_next in 0..self.grid.top() {
            // First-arrival window for bin j' (see module notes, item 3).
            let raw_lo = l + self.grid.value(j_next) - self.slo;
            let lo_edge = if j_next == 0 { 0.0 } else { raw_lo.max(0.0) };
            let hi_edge = (l + self.grid.upper_edge(j_next) - self.slo).clamp(0.0, l);
            if hi_edge <= lo_edge + 1e-15 {
                continue;
            }
            let t_b = lo_edge;
            let t_c = hi_edge - lo_edge;
            let t_d = l - hi_edge;
            let table_b = self.cache.table(self.process, t_b);
            let table_c = self.cache.table(self.process, t_c);
            let table_d = self.cache.table(self.process, t_d);

            let c_hi = table_c.max_count();
            // W(u): weight of needing exactly u more central arrivals
            // for the next worker delivery at the start of interval C.
            let u_cap = (c_hi + 1).min(k as u64) as usize;
            let mut big_w = vec![0.0f64; u_cap + 1];
            for (r, &wr) in w.iter().enumerate() {
                if wr == 0.0 {
                    continue;
                }
                // k_B = K − r − u ≥ 0 ⇔ u ≤ K − r.
                let u_max_r = (k - r).min(u_cap);
                for u in 1..=u_max_r {
                    let kb = (k - r - u) as u64;
                    let pb = table_b.pmf(kb);
                    if pb > 0.0 {
                        big_w[u] += wr * pb;
                    }
                }
            }

            // H(v) = Σ_u W(u) · PF_C(u + v).
            let v_cap = c_hi as usize;
            let mut h = vec![0.0f64; v_cap + 1];
            for u in 1..=u_cap {
                if big_w[u] == 0.0 {
                    continue;
                }
                let wu = big_w[u];
                for v in 0..=v_cap.saturating_sub(u) {
                    let pc = table_c.pmf((u + v) as u64);
                    if pc > 0.0 {
                        h[v] += wu * pc;
                    }
                }
            }

            // Per n': fold H against the interval-D range mass.
            for n_next in 1..=nw {
                let mut p = 0.0;
                let lo_base = (n_next as i64 - 1) * k as i64;
                let hi_base = n_next as i64 * k as i64 - 1;
                for (v, &hv) in h.iter().enumerate() {
                    if hv == 0.0 {
                        continue;
                    }
                    let lo = (lo_base - v as i64).max(0);
                    let hi = hi_base - v as i64;
                    if hi < 0 {
                        // More than n' worker arrivals already in C.
                        continue;
                    }
                    p += hv * table_d.mass_in(lo as u64, hi as u64);
                }
                accounted += p;
                if p > self.prune_eps {
                    let target = State::Queued {
                        n: n_next,
                        slack: j_next as u32,
                    };
                    row.push((self.space.index(target), p));
                }
            }
        }

        // Case 3 (§4.4.3): overflow beyond N_w is the complement.
        let p_full = (1.0 - accounted).max(0.0);
        if p_full > self.prune_eps {
            row.push((self.space.index(State::Full), p_full));
        }
        if row.is_empty() {
            // Pathological pruning (should not happen): park in Full.
            row.push((self.space.index(State::Full), 1.0));
        }
        row
    }

    /// Variable batching with `b < n`: `n − b` queries remain queued;
    /// the earliest remaining slack is `T_j − l_w(m, b)` (conservative),
    /// and `wA` new arrivals accumulate during the service time.
    fn row_partial_batch(&self, n: u32, slack: usize, model: u32, batch: u32) -> Vec<(usize, f64)> {
        let k = self.workers;
        let l = self.service_latency(model, batch);
        let w = self.phase_weights(n, slack);
        let table_l = self.cache.table(self.process, l);
        let leftover = n - batch;
        let j_next = self.grid.floor_index(self.grid.value(slack) - l) as u32;
        let nw = self.space.max_queue();

        let mut row = Vec::new();
        let mut accounted = 0.0;
        // Worker arrival counts wA = 0, 1, ... until the queue overflows.
        let max_wa = nw - leftover;
        for wa in 0..=max_wa {
            let mut p = 0.0;
            for (r, &wr) in w.iter().enumerate() {
                if wr == 0.0 {
                    continue;
                }
                let lo = (wa as i64 * k as i64 - r as i64).max(0) as u64;
                let hi = ((wa as i64 + 1) * k as i64 - 1 - r as i64).max(-1);
                if hi < 0 {
                    continue;
                }
                p += wr * table_l.mass_in(lo, hi as u64);
            }
            accounted += p;
            if p > self.prune_eps {
                let target = State::Queued {
                    n: leftover + wa,
                    slack: j_next,
                };
                row.push((self.space.index(target), p));
            }
        }
        let p_full = (1.0 - accounted).max(0.0);
        if p_full > self.prune_eps {
            row.push((self.space.index(State::Full), p_full));
        }
        if row.is_empty() {
            row.push((self.space.index(State::Full), 1.0));
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use ramsis_stats::PoissonProcess;
    use std::time::Duration;

    const SLO: f64 = 0.15;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    struct Fixture {
        grid: TimeGrid,
        space: StateSpace,
        process: PoissonProcess,
        workers: usize,
    }

    impl Fixture {
        fn new(qps: f64, workers: usize, d: u32) -> Self {
            let grid = TimeGrid::build(profile(), SLO, Discretization::fixed_length(d));
            let nw = profile().max_batch() + 3;
            let space = StateSpace::new(nw, grid.len() as u32);
            Self {
                grid,
                space,
                process: PoissonProcess::per_second(qps),
                workers,
            }
        }

        fn builder(&self) -> TransitionBuilder<'_> {
            TransitionBuilder::new(
                profile(),
                &self.grid,
                &self.space,
                &self.process,
                self.workers,
                SLO,
                1e-12,
                0.0,
            )
        }
    }

    fn row_sum(row: &[(usize, f64)]) -> f64 {
        row.iter().map(|&(_, p)| p).sum()
    }

    #[test]
    fn arrival_action_is_deterministic() {
        let f = Fixture::new(100.0, 4, 20);
        let b = f.builder();
        let row = b.row(State::Empty, Action::Arrival);
        assert_eq!(row.len(), 1);
        let (target, p) = row[0];
        assert_eq!(p, 1.0);
        assert_eq!(
            f.space.state(target),
            State::Queued {
                n: 1,
                slack: f.grid.top() as u32
            }
        );
    }

    #[test]
    fn rows_sum_to_one() {
        let f = Fixture::new(400.0, 4, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        for n in [1u32, 2, 5, f.space.max_queue()] {
            for slack in [0usize, 5, 10, f.grid.top()] {
                let row = b.row(
                    State::Queued {
                        n,
                        slack: slack as u32,
                    },
                    Action::Serve {
                        model: fast,
                        batch: n,
                    },
                );
                let s = row_sum(&row);
                assert!(
                    (s - 1.0).abs() < 1e-6,
                    "n={n} slack={slack}: row sums to {s}"
                );
            }
        }
    }

    #[test]
    fn rows_sum_to_one_for_slow_models() {
        let f = Fixture::new(800.0, 8, 20);
        let b = f.builder();
        // The most accurate Pareto model has a long latency.
        let slow = *profile().pareto_models().last().unwrap() as u32;
        let row = b.row(
            State::Queued {
                n: 1,
                slack: f.grid.top() as u32,
            },
            Action::Serve {
                model: slow,
                batch: 1,
            },
        );
        assert!((row_sum(&row) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn low_load_reaches_empty_often() {
        // 10 QPS over 4 workers: 2.5 QPS per worker; the fastest model
        // serves a single query in ~25 ms, so the queue almost always
        // drains.
        let f = Fixture::new(10.0, 4, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let row = b.row(
            State::Queued {
                n: 1,
                slack: f.grid.top() as u32,
            },
            Action::Serve {
                model: fast,
                batch: 1,
            },
        );
        let p_empty: f64 = row
            .iter()
            .filter(|&&(t, _)| f.space.state(t) == State::Empty)
            .map(|&(_, p)| p)
            .sum();
        assert!(p_empty > 0.95, "p_empty={p_empty}");
    }

    #[test]
    fn high_load_reaches_full() {
        // 50,000 QPS over 2 workers is far beyond capacity: serving all
        // 32 queued queries takes long enough that the queue refills
        // past N_w with near certainty.
        let f = Fixture::new(50_000.0, 2, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let nw = f.space.max_queue();
        let row = b.row(
            State::Queued { n: nw, slack: 0 },
            Action::Serve {
                model: fast,
                batch: nw,
            },
        );
        let p_full: f64 = row
            .iter()
            .filter(|&&(t, _)| f.space.state(t) == State::Full)
            .map(|&(_, p)| p)
            .sum();
        assert!(p_full > 0.99, "p_full={p_full}");
    }

    #[test]
    fn full_state_behaves_like_saturated_queue() {
        let f = Fixture::new(1_000.0, 4, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let nw = f.space.max_queue();
        let from_full = b.row(
            State::Full,
            Action::Serve {
                model: fast,
                batch: nw,
            },
        );
        let from_saturated = b.row(
            State::Queued { n: nw, slack: 0 },
            Action::Serve {
                model: fast,
                batch: nw,
            },
        );
        assert_eq!(from_full, from_saturated);
    }

    #[test]
    fn next_state_count_concentrates_near_mean() {
        // 800 QPS over 10 workers = 80 QPS per worker; serving n = 4 on
        // the fastest model takes ~70 ms, so ~5.6 arrivals are expected
        // at the worker during service — well below N_w, so truncation
        // does not bite.
        let f = Fixture::new(800.0, 10, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let l = profile().latency(fast as usize, 4).unwrap();
        let mean_arrivals = 800.0 / 10.0 * l;
        let row = b.row(
            State::Queued {
                n: 4,
                slack: f.grid.top() as u32,
            },
            Action::Serve {
                model: fast,
                batch: 4,
            },
        );
        let mut expect_n = 0.0;
        for &(t, p) in &row {
            if let State::Queued { n, .. } = f.space.state(t) {
                expect_n += n as f64 * p;
            }
        }
        assert!(
            (expect_n - mean_arrivals).abs() < 1.5,
            "E[n'] = {expect_n}, mean arrivals = {mean_arrivals}"
        );
    }

    #[test]
    fn fresh_query_phase_is_deterministic() {
        // State (1, SLO): the query just arrived, so T_A = 0 and the
        // round-robin phase is exactly 0; the first next worker arrival
        // needs a full K more central-queue arrivals.
        let f = Fixture::new(1_000.0, 4, 20);
        let b = f.builder();
        let w = b.phase_weights(1, f.grid.top());
        assert!((w[0] - 1.0).abs() < 1e-12);
        for &x in &w[1..] {
            assert_eq!(x, 0.0);
        }
    }

    #[test]
    fn partial_batch_keeps_leftover() {
        let f = Fixture::new(200.0, 4, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let row = b.row(
            State::Queued {
                n: 6,
                slack: f.grid.top() as u32,
            },
            Action::Serve {
                model: fast,
                batch: 2,
            },
        );
        assert!((row_sum(&row) - 1.0).abs() < 1e-6);
        // Every reachable next state keeps at least the 4 leftovers.
        for &(t, p) in &row {
            match f.space.state(t) {
                State::Queued { n, slack } => {
                    assert!(n >= 4, "n'={n} lost leftover queries (p={p})");
                    // Leftover slack: SLO − l(fast, 2), floored.
                    let l = profile().latency(fast as usize, 2).unwrap();
                    let expect = f.grid.floor_index(SLO - l) as u32;
                    assert_eq!(slack, expect);
                }
                State::Full => {}
                State::Empty => panic!("partial batch cannot empty the queue"),
            }
        }
    }

    #[test]
    fn single_worker_degenerates_to_plain_counting() {
        // K = 1: the worker sees every central arrival; P(n' = j) must
        // equal the plain Poisson pmf of j arrivals over the service
        // time (no phase uncertainty).
        let f = Fixture::new(300.0, 1, 20);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let l = profile().latency(fast as usize, 1).unwrap();
        let row = b.row(
            State::Queued {
                n: 1,
                slack: f.grid.top() as u32,
            },
            Action::Serve {
                model: fast,
                batch: 1,
            },
        );
        let table = f.process.table(l, 1e-12);
        // Aggregate row mass per n'.
        let mut by_n = std::collections::HashMap::new();
        for &(t, p) in &row {
            let key = match f.space.state(t) {
                State::Empty => 0u32,
                State::Queued { n, .. } => n,
                State::Full => u32::MAX,
            };
            *by_n.entry(key).or_insert(0.0) += p;
        }
        for j in 0..5u32 {
            let expect = table.pmf(j as u64);
            let got = by_n.get(&j).copied().unwrap_or(0.0);
            assert!(
                (got - expect).abs() < 1e-7,
                "n'={j}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn slack_distribution_shifts_with_latency() {
        // Serving with a slower model leaves later first-arrivals less
        // slack at the next epoch: expected next-slack must be smaller.
        let f = Fixture::new(2_000.0, 10, 50);
        let b = f.builder();
        let pareto = profile().pareto_models();
        let fast = pareto[0] as u32;
        let slower = pareto[3] as u32;
        let expected_slack = |model: u32| {
            let row = b.row(
                State::Queued {
                    n: 1,
                    slack: f.grid.top() as u32,
                },
                Action::Serve { model, batch: 1 },
            );
            let mut num = 0.0;
            let mut den = 0.0;
            for &(t, p) in &row {
                if let State::Queued { slack, .. } = f.space.state(t) {
                    num += f.grid.value(slack as usize) * p;
                    den += p;
                }
            }
            num / den
        };
        let s_fast = expected_slack(fast);
        let s_slow = expected_slack(slower);
        assert!(
            s_fast > s_slow,
            "fast model should leave more slack: {s_fast} vs {s_slow}"
        );
    }

    #[test]
    fn table_cache_deduplicates() {
        let f = Fixture::new(500.0, 4, 10);
        let b = f.builder();
        let fast = profile().fastest_model() as u32;
        let _ = b.row(
            State::Queued { n: 1, slack: 5 },
            Action::Serve {
                model: fast,
                batch: 1,
            },
        );
        let count_once = b.cache().len();
        let _ = b.row(
            State::Queued { n: 1, slack: 5 },
            Action::Serve {
                model: fast,
                batch: 1,
            },
        );
        assert_eq!(
            b.cache().len(),
            count_once,
            "repeat rows must hit the cache"
        );
        assert!(!b.cache().is_empty());
    }

    #[test]
    fn shed_action_empties_the_queue() {
        let f = Fixture::new(500.0, 4, 10);
        let b = f.builder();
        let row = b.row(State::Queued { n: 5, slack: 0 }, Action::Shed);
        assert_eq!(row, vec![(f.space.index(State::Empty), 1.0)]);
        // From the overflow state too.
        let row = b.row(State::Full, Action::Shed);
        assert_eq!(row, vec![(f.space.index(State::Empty), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "invalid in the empty state")]
    fn serve_in_empty_state_panics() {
        let f = Fixture::new(100.0, 2, 10);
        let b = f.builder();
        let _ = b.row(State::Empty, Action::Serve { model: 0, batch: 1 });
    }

    #[test]
    #[should_panic(expected = "arrival action invalid")]
    fn arrival_in_queued_state_panics() {
        let f = Fixture::new(100.0, 2, 10);
        let b = f.builder();
        let _ = b.row(State::Queued { n: 1, slack: 0 }, Action::Arrival);
    }
}
