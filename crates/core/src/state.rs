//! The worker MDP state space (paper §4.2).
//!
//! `S = {Empty} ∪ {(n, T_j) | 1 ≤ n ≤ N_w, T_j ∈ T_w} ∪ {(φ, ∅)}`.
//!
//! The paper's `(0, T_j)` family (empty queue, unconstrained slack) is
//! collapsed into a single `Empty` state: all of them admit only the
//! arrival action and transition identically (§4.3.4), so they are
//! bisimilar. The full state `(φ, ∅)` models queue lengths beyond `N_w`
//! (§4.2.3) and behaves like `(N_w, 0)` for transition purposes.

use serde::{Deserialize, Serialize};

/// A symbolic worker-queue state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum State {
    /// Empty worker queue; the worker idles until the next arrival.
    Empty,
    /// `n ≥ 1` queued queries; the earliest deadline has discretized
    /// slack `T_j = grid[slack]`.
    Queued {
        /// Number of queued queries (`1 ..= N_w`).
        n: u32,
        /// Grid index of the earliest deadline's slack.
        slack: u32,
    },
    /// The `(φ, ∅)` overflow state: more than `N_w` queries accumulated.
    Full,
}

/// Dense indexing of the state space for a given `N_w` and grid size.
///
/// Layout: index 0 is `Empty`; indices `1 ..= N_w · |T_w|` are the
/// queued states in `(n, slack)` row-major order; the last index is
/// `Full`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSpace {
    max_queue: u32,
    grid_len: u32,
}

impl StateSpace {
    /// Creates the indexing for `N_w = max_queue` and a slack grid of
    /// `grid_len` values.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(max_queue: u32, grid_len: u32) -> Self {
        assert!(max_queue > 0, "max queue must be positive");
        assert!(grid_len > 0, "grid must be non-empty");
        Self {
            max_queue,
            grid_len,
        }
    }

    /// `N_w`.
    pub fn max_queue(&self) -> u32 {
        self.max_queue
    }

    /// `|T_w|`.
    pub fn grid_len(&self) -> u32 {
        self.grid_len
    }

    /// Total number of states (`1 + N_w · |T_w| + 1`).
    pub fn len(&self) -> usize {
        2 + (self.max_queue as usize) * (self.grid_len as usize)
    }

    /// Always false (the space has at least `Empty` and `Full`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dense index of a symbolic state.
    ///
    /// # Panics
    ///
    /// Panics if a queued state is out of range (`n == 0`, `n > N_w`, or
    /// `slack ≥ |T_w|`).
    pub fn index(&self, state: State) -> usize {
        match state {
            State::Empty => 0,
            State::Queued { n, slack } => {
                assert!(
                    n >= 1 && n <= self.max_queue,
                    "queued n must be in 1..={}, got {n}",
                    self.max_queue
                );
                assert!(
                    slack < self.grid_len,
                    "slack index must be < {}, got {slack}",
                    self.grid_len
                );
                1 + ((n - 1) * self.grid_len + slack) as usize
            }
            State::Full => self.len() - 1,
        }
    }

    /// Symbolic state of a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn state(&self, index: usize) -> State {
        assert!(index < self.len(), "state index {index} out of range");
        if index == 0 {
            State::Empty
        } else if index == self.len() - 1 {
            State::Full
        } else {
            let i = (index - 1) as u32;
            State::Queued {
                n: i / self.grid_len + 1,
                slack: i % self.grid_len,
            }
        }
    }

    /// Iterates over all dense indices with their symbolic states.
    pub fn iter(&self) -> impl Iterator<Item = (usize, State)> + '_ {
        (0..self.len()).map(|i| (i, self.state(i)))
    }

    /// The `(n, slack)` pair a state behaves as for transition purposes:
    /// `Full ≡ (N_w, 0)` (§4.2.3); `Empty` has no effective queue.
    pub fn effective_queue(&self, state: State) -> Option<(u32, u32)> {
        match state {
            State::Empty => None,
            State::Queued { n, slack } => Some((n, slack)),
            State::Full => Some((self.max_queue, 0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_matches_paper_size() {
        // N_w = 32, |T_w| = 101 (FLD D = 100): 2 + 32·101 states.
        let s = StateSpace::new(32, 101);
        assert_eq!(s.len(), 2 + 32 * 101);
        assert_eq!(s.index(State::Empty), 0);
        assert_eq!(s.index(State::Full), s.len() - 1);
        assert_eq!(s.index(State::Queued { n: 1, slack: 0 }), 1);
        assert_eq!(s.index(State::Queued { n: 1, slack: 100 }), 101);
        assert_eq!(s.index(State::Queued { n: 2, slack: 0 }), 102);
    }

    #[test]
    fn round_trip_all_states() {
        let s = StateSpace::new(5, 7);
        for (i, st) in s.iter() {
            assert_eq!(s.index(st), i);
        }
        assert_eq!(s.iter().count(), s.len());
    }

    #[test]
    fn effective_queue() {
        let s = StateSpace::new(8, 3);
        assert_eq!(s.effective_queue(State::Empty), None);
        assert_eq!(
            s.effective_queue(State::Queued { n: 3, slack: 2 }),
            Some((3, 2))
        );
        assert_eq!(s.effective_queue(State::Full), Some((8, 0)));
    }

    #[test]
    #[should_panic(expected = "queued n must be in")]
    fn rejects_zero_n() {
        let s = StateSpace::new(4, 4);
        let _ = s.index(State::Queued { n: 0, slack: 0 });
    }

    #[test]
    #[should_panic(expected = "slack index must be")]
    fn rejects_big_slack() {
        let s = StateSpace::new(4, 4);
        let _ = s.index(State::Queued { n: 1, slack: 4 });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_big_index() {
        let s = StateSpace::new(4, 4);
        let _ = s.state(s.len());
    }

    proptest! {
        #[test]
        fn index_is_a_bijection(nw in 1u32..40, gl in 1u32..120) {
            let s = StateSpace::new(nw, gl);
            let mut seen = std::collections::HashSet::new();
            for (i, st) in s.iter() {
                prop_assert!(seen.insert(i));
                prop_assert_eq!(s.index(st), i);
            }
            prop_assert_eq!(seen.len(), s.len());
        }
    }
}
