//! Last-resort serving when no generated policy applies.
//!
//! Graceful degradation (DESIGN.md "Fault model & graceful degradation"):
//! when crashes shrink the cluster below every pre-solved worker count,
//! or the anticipated load exceeds the highest design load, RAMSIS must
//! still answer every decision request. The [`FallbackPolicy`] is the
//! simplest sound answer: serve the Pareto-minimum-latency model at the
//! largest batch that still fits the SLO, shedding accuracy (never
//! availability) under stress. It needs no MDP solve, so it is always
//! constructible — even for a single surviving worker.

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;

use crate::error::CoreError;

/// A degenerate "policy": always the fastest Pareto model, batched as
/// large as the SLO allows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FallbackPolicy {
    model: usize,
    max_batch: u32,
}

impl FallbackPolicy {
    /// Builds the fallback from a profile: the Pareto-minimum-latency
    /// model, with the largest profiled batch whose p95 latency fits
    /// inside the SLO (at least 1 — if even batch 1 blows the SLO the
    /// fallback still serves, it just cannot save those queries).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a profile with no
    /// models.
    pub fn fastest(profile: &WorkerProfile) -> Result<Self, CoreError> {
        if profile.n_models() == 0 {
            return Err(CoreError::InvalidConfig(
                "fallback needs a profile with at least one model".into(),
            ));
        }
        let model = profile.fastest_model();
        let max_batch = profile
            .max_batch_within(model, profile.slo())
            .unwrap_or(1)
            .max(1);
        Ok(Self { model, max_batch })
    }

    /// The model the fallback always serves.
    pub fn model(&self) -> usize {
        self.model
    }

    /// The largest batch the fallback will form.
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// The decision for a queue of `queued` queries: `(model, batch)`
    /// with `batch = min(queued, max_batch)`.
    pub fn decide(&self, queued: usize) -> (usize, u32) {
        (self.model, (queued as u32).min(self.max_batch).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    #[test]
    fn fallback_serves_fastest_within_slo() {
        let profile = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        );
        let fb = FallbackPolicy::fastest(&profile).unwrap();
        assert_eq!(fb.model(), profile.fastest_model());
        assert!(fb.max_batch() >= 1);
        // The chosen batch fits the SLO.
        let lat = profile.latency(fb.model(), fb.max_batch()).unwrap();
        assert!(lat <= profile.slo() + 1e-9, "latency {lat}");
        // Decisions clamp to the queue and to max_batch.
        assert_eq!(fb.decide(1), (fb.model(), 1));
        let (_, b) = fb.decide(10_000);
        assert_eq!(b, fb.max_batch());
    }

    #[test]
    fn serde_round_trip() {
        let profile = WorkerProfile::build(
            &ModelCatalog::torchvision_image(),
            Duration::from_millis(150),
            ProfilerConfig::default(),
        );
        let fb = FallbackPolicy::fastest(&profile).unwrap();
        let json = serde_json::to_string(&fb).unwrap();
        let back: FallbackPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fb);
    }
}
