//! Error type for policy generation.

use ramsis_mdp::MdpError;

/// Errors produced while generating a RAMSIS policy.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was out of range or inconsistent.
    InvalidConfig(String),
    /// The profile cannot serve the configured SLO at all (no model
    /// meets the latency target even at batch size 1).
    Infeasible(String),
    /// The assembled MDP failed validation.
    Mdp(MdpError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Infeasible(msg) => write!(f, "infeasible problem: {msg}"),
            CoreError::Mdp(e) => write!(f, "MDP construction failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mdp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MdpError> for CoreError {
    fn from(e: MdpError) -> Self {
        CoreError::Mdp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::InvalidConfig("workers must be positive".into());
        assert!(e.to_string().contains("workers must be positive"));
        let e = CoreError::Infeasible("SLO too tight".into());
        assert!(e.to_string().contains("SLO too tight"));
    }

    #[test]
    fn mdp_errors_chain() {
        use std::error::Error;
        let e = CoreError::from(MdpError::Empty);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("MDP"));
    }
}
