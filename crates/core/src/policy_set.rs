//! Load-indexed policy sets (paper §3.1.3, §3.2.2, §6).
//!
//! RAMSIS pre-computes a *set* of policies, one per query load, because
//! each MS policy is specialized to an arrival distribution. Online, the
//! worker-level selector uses "the lowest-load MS policy that meets the
//! anticipated query load". The paper's implementation picks the load
//! grid adaptively: "we generate policies for differing query load such
//! that the largest difference between the expected accuracies among all
//! pairs of adjacent policies is below a threshold — 1% in our
//! experiments" (§6).

use serde::{Deserialize, Serialize};

use ramsis_profiles::WorkerProfile;
use ramsis_stats::{NegativeBinomialProcess, PoissonProcess};

use crate::config::PolicyConfig;
use crate::error::CoreError;
use crate::generator::generate_policy;
use crate::policy::WorkerPolicy;

/// A set of policies specialized per query load, sorted ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySet {
    policies: Vec<WorkerPolicy>,
}

impl PolicySet {
    /// The paper's adjacent-accuracy refinement threshold (1%).
    pub const DEFAULT_ACCURACY_GAP: f64 = 1.0;

    /// Generates one policy per load in `loads_qps` (Poisson arrivals).
    ///
    /// # Errors
    ///
    /// Propagates the first generation failure; also fails on an empty
    /// or non-positive load list.
    pub fn generate_poisson(
        profile: &WorkerProfile,
        loads_qps: &[f64],
        config: &PolicyConfig,
    ) -> Result<Self, CoreError> {
        if loads_qps.is_empty() {
            return Err(CoreError::InvalidConfig("load list is empty".into()));
        }
        let mut policies = Vec::with_capacity(loads_qps.len());
        for &qps in loads_qps {
            if !(qps > 0.0 && qps.is_finite()) {
                return Err(CoreError::InvalidConfig(format!(
                    "loads must be positive, got {qps}"
                )));
            }
            policies.push(generate_policy(
                profile,
                &PoissonProcess::per_second(qps),
                config,
            )?);
        }
        policies.sort_by(|a, b| {
            a.design_load_qps
                .partial_cmp(&b.design_load_qps)
                .expect("loads are finite")
        });
        Ok(Self { policies })
    }

    /// Generates one policy per load in `loads_qps` against the
    /// negative-binomial Lévy process with the given count dispersion
    /// (variance-to-mean ratio of the window counts, `> 1`) — the
    /// over-dispersed arrival model the drift detector fits bursty
    /// traffic to.
    ///
    /// # Errors
    ///
    /// Rejects an empty or non-positive load list and `dispersion <= 1`
    /// (use [`Self::generate_poisson`] at dispersion 1), and propagates
    /// the first generation failure.
    pub fn generate_negative_binomial(
        profile: &WorkerProfile,
        loads_qps: &[f64],
        dispersion: f64,
        config: &PolicyConfig,
    ) -> Result<Self, CoreError> {
        if loads_qps.is_empty() {
            return Err(CoreError::InvalidConfig("load list is empty".into()));
        }
        if !(dispersion > 1.0 && dispersion.is_finite()) {
            return Err(CoreError::InvalidConfig(format!(
                "negative-binomial dispersion must be finite and > 1, got {dispersion}"
            )));
        }
        let mut policies = Vec::with_capacity(loads_qps.len());
        for &qps in loads_qps {
            if !(qps > 0.0 && qps.is_finite()) {
                return Err(CoreError::InvalidConfig(format!(
                    "loads must be positive, got {qps}"
                )));
            }
            policies.push(generate_policy(
                profile,
                &NegativeBinomialProcess::new(qps, dispersion),
                config,
            )?);
        }
        policies.sort_by(|a, b| {
            a.design_load_qps
                .partial_cmp(&b.design_load_qps)
                .expect("loads are finite")
        });
        Ok(Self { policies })
    }

    /// Generates an adaptively refined Poisson policy set over
    /// `[min_qps, max_qps]`: starting from the endpoints, the largest-
    /// accuracy-gap adjacent pair is bisected until every gap is below
    /// `max_accuracy_gap` percentage points or `max_policies` have been
    /// generated (§6's 1% rule).
    ///
    /// # Errors
    ///
    /// Propagates generation failures and rejects inverted or
    /// non-positive ranges.
    pub fn generate_poisson_adaptive(
        profile: &WorkerProfile,
        min_qps: f64,
        max_qps: f64,
        config: &PolicyConfig,
        max_accuracy_gap: f64,
        max_policies: usize,
    ) -> Result<Self, CoreError> {
        if !(min_qps > 0.0 && max_qps > min_qps) {
            return Err(CoreError::InvalidConfig(format!(
                "need 0 < min < max, got [{min_qps}, {max_qps}]"
            )));
        }
        if max_policies < 2 {
            return Err(CoreError::InvalidConfig(
                "adaptive generation needs room for at least 2 policies".into(),
            ));
        }
        let gen = |qps: f64| -> Result<WorkerPolicy, CoreError> {
            generate_policy(profile, &PoissonProcess::per_second(qps), config)
        };
        let mut policies = vec![gen(min_qps)?, gen(max_qps)?];
        loop {
            if policies.len() >= max_policies {
                break;
            }
            // Find the adjacent pair with the largest accuracy gap.
            let mut worst: Option<(usize, f64)> = None;
            for i in 0..policies.len() - 1 {
                let gap = (policies[i].guarantees().expected_accuracy
                    - policies[i + 1].guarantees().expected_accuracy)
                    .abs();
                let span = policies[i + 1].design_load_qps - policies[i].design_load_qps;
                // Do not split ranges below 1 QPS — accuracy is flat
                // there and splitting cannot help.
                if span < 1.0 {
                    continue;
                }
                if gap > max_accuracy_gap && worst.is_none_or(|(_, g)| gap > g) {
                    worst = Some((i, gap));
                }
            }
            let Some((i, _)) = worst else {
                break;
            };
            let mid = 0.5 * (policies[i].design_load_qps + policies[i + 1].design_load_qps);
            let p = gen(mid)?;
            policies.insert(i + 1, p);
        }
        Ok(Self { policies })
    }

    /// Wraps pre-generated policies (sorted by design load).
    pub fn from_policies(mut policies: Vec<WorkerPolicy>) -> Result<Self, CoreError> {
        if policies.is_empty() {
            return Err(CoreError::InvalidConfig("policy set is empty".into()));
        }
        policies.sort_by(|a, b| {
            a.design_load_qps
                .partial_cmp(&b.design_load_qps)
                .expect("loads are finite")
        });
        Ok(Self { policies })
    }

    /// Number of policies in the set.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// The design loads, ascending.
    pub fn loads(&self) -> Vec<f64> {
        self.policies.iter().map(|p| p.design_load_qps).collect()
    }

    /// The policies, ascending by design load.
    pub fn policies(&self) -> &[WorkerPolicy] {
        &self.policies
    }

    /// Selects "the lowest-load MS policy that meets the anticipated
    /// query load" (§3.2.2); anticipated loads beyond every design load
    /// fall back to the highest-load policy (the paper would generate a
    /// new one — callers that can afford generation latency should check
    /// [`Self::covers`] and extend the set instead).
    pub fn select(&self, anticipated_qps: f64) -> &WorkerPolicy {
        self.policies
            .iter()
            .find(|p| p.design_load_qps >= anticipated_qps - 1e-9)
            .unwrap_or_else(|| self.policies.last().expect("set is never empty"))
    }

    /// Whether some policy's design load covers the anticipated load.
    pub fn covers(&self, anticipated_qps: f64) -> bool {
        self.policies
            .last()
            .expect("set is never empty")
            .design_load_qps
            >= anticipated_qps - 1e-9
    }

    /// Extends the set with a policy for a new load (e.g. after
    /// [`Self::covers`] returned false — §3.2.2's "a new one is
    /// generated").
    pub fn extend_poisson(
        &mut self,
        profile: &WorkerProfile,
        qps: f64,
        config: &PolicyConfig,
    ) -> Result<(), CoreError> {
        let p = generate_policy(profile, &PoissonProcess::per_second(qps), config)?;
        let at = self
            .policies
            .partition_point(|x| x.design_load_qps < p.design_load_qps);
        self.policies.insert(at, p);
        Ok(())
    }
}

/// Policy sets pre-solved for a range of live-worker counts, for
/// graceful degradation under worker crashes.
///
/// The MDP transitions (§4.4) depend on the worker count `K` behind the
/// round-robin balancer: with `K` workers each one sees every `K`-th
/// arrival. When a worker crashes, a policy solved for `K` workers
/// underestimates each survivor's share of the load, so its batching is
/// too optimistic. The degradable set pre-solves the *same* load grid
/// once per worker count in `[min_workers, workers]`; online, the
/// scheme switches to the set matching the current live count the
/// moment membership changes, with no solver in the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradablePolicySet {
    /// `(worker count, set)`, ascending by worker count.
    sets: Vec<(usize, PolicySet)>,
}

impl DegradablePolicySet {
    /// Generates one [`PolicySet`] per worker count from
    /// `config.workers` down to `min_workers` (inclusive), all over the
    /// same `loads_qps` grid. `config.workers` is the nominal cluster
    /// size; each solve clones the config with its own count.
    ///
    /// # Errors
    ///
    /// Rejects `min_workers == 0` or `min_workers > config.workers`, and
    /// propagates the first generation failure.
    pub fn generate_poisson(
        profile: &WorkerProfile,
        loads_qps: &[f64],
        config: &PolicyConfig,
        min_workers: usize,
    ) -> Result<Self, CoreError> {
        if min_workers == 0 || min_workers > config.workers {
            return Err(CoreError::InvalidConfig(format!(
                "need 1 <= min_workers <= workers, got {min_workers} of {}",
                config.workers
            )));
        }
        let mut sets = Vec::with_capacity(config.workers - min_workers + 1);
        for k in min_workers..=config.workers {
            let mut cfg = config.clone();
            cfg.workers = k;
            sets.push((k, PolicySet::generate_poisson(profile, loads_qps, &cfg)?));
        }
        Ok(Self { sets })
    }

    /// The worker counts with a pre-solved set, ascending.
    pub fn worker_counts(&self) -> Vec<usize> {
        self.sets.iter().map(|&(k, _)| k).collect()
    }

    /// The set solved for the nominal (largest) cluster size.
    pub fn full(&self) -> &PolicySet {
        &self.sets.last().expect("never constructed empty").1
    }

    /// The set for `live` workers: the one solved for the largest
    /// worker count `<= live` (a set solved for fewer workers than are
    /// live is conservative — each worker assumes a larger share of the
    /// load than it gets). `None` when `live` is below the smallest
    /// pre-solved count — callers degrade to a fallback policy.
    pub fn for_workers(&self, live: usize) -> Option<&PolicySet> {
        self.sets
            .iter()
            .rev()
            .find(|&&(k, _)| k <= live)
            .map(|(_, set)| set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discretize::Discretization;
    use ramsis_profiles::{ModelCatalog, ProfilerConfig};
    use std::time::Duration;

    fn profile() -> &'static WorkerProfile {
        use std::sync::OnceLock;
        static PROFILE: OnceLock<WorkerProfile> = OnceLock::new();
        PROFILE.get_or_init(|| {
            WorkerProfile::build(
                &ModelCatalog::torchvision_image(),
                Duration::from_millis(150),
                ProfilerConfig::default(),
            )
        })
    }

    fn quick_config() -> PolicyConfig {
        PolicyConfig::builder(Duration::from_millis(150))
            .workers(4)
            .discretization(Discretization::fixed_length(8))
            .build()
    }

    #[test]
    fn generate_and_select() {
        let set = PolicySet::generate_poisson(profile(), &[100.0, 400.0, 800.0], &quick_config())
            .unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.loads(), vec![100.0, 400.0, 800.0]);
        // Lowest design load >= anticipated.
        assert_eq!(set.select(50.0).design_load_qps, 100.0);
        assert_eq!(set.select(100.0).design_load_qps, 100.0);
        assert_eq!(set.select(150.0).design_load_qps, 400.0);
        assert_eq!(set.select(401.0).design_load_qps, 800.0);
        // Beyond coverage: highest-load fallback.
        assert_eq!(set.select(5_000.0).design_load_qps, 800.0);
        assert!(set.covers(800.0));
        assert!(!set.covers(900.0));
    }

    #[test]
    fn accuracy_decreases_with_design_load() {
        // All three loads are satisfiable by 4 workers (capacity is
        // ~270 QPS with the fastest model); monotonicity only holds in
        // the satisfiable regime.
        let set =
            PolicySet::generate_poisson(profile(), &[50.0, 150.0, 240.0], &quick_config()).unwrap();
        let accs: Vec<f64> = set
            .policies()
            .iter()
            .map(|p| p.guarantees().expected_accuracy)
            .collect();
        assert!(
            accs[0] >= accs[1] - 0.5 && accs[1] >= accs[2] - 0.5,
            "accuracies should be non-increasing in load: {accs:?}"
        );
    }

    #[test]
    fn adaptive_refinement_closes_gaps() {
        let set = PolicySet::generate_poisson_adaptive(
            profile(),
            50.0,
            1_200.0,
            &quick_config(),
            2.0, // a loose 2% threshold keeps the test fast
            12,
        )
        .unwrap();
        assert!(set.len() >= 2);
        if set.len() < 12 {
            // Converged: every adjacent gap is within the threshold.
            for w in set.policies().windows(2) {
                let gap = (w[0].guarantees().expected_accuracy
                    - w[1].guarantees().expected_accuracy)
                    .abs();
                assert!(gap <= 2.0 + 1e-9, "gap {gap}");
            }
        }
        // Sorted by load.
        for w in set.policies().windows(2) {
            assert!(w[0].design_load_qps < w[1].design_load_qps);
        }
    }

    #[test]
    fn extend_inserts_sorted() {
        let mut set =
            PolicySet::generate_poisson(profile(), &[100.0, 800.0], &quick_config()).unwrap();
        set.extend_poisson(profile(), 400.0, &quick_config())
            .unwrap();
        assert_eq!(set.loads(), vec![100.0, 400.0, 800.0]);
    }

    #[test]
    fn degradable_set_switches_on_membership() {
        let set = DegradablePolicySet::generate_poisson(
            profile(),
            &[100.0, 240.0],
            &quick_config(), // 4 workers
            2,
        )
        .unwrap();
        assert_eq!(set.worker_counts(), vec![2, 3, 4]);
        assert_eq!(set.full().len(), 2);
        // Exact and in-between live counts resolve to the largest
        // pre-solved count at or below them.
        assert!(set.for_workers(4).is_some());
        assert!(set.for_workers(3).is_some());
        assert!(set.for_workers(2).is_some());
        assert!(set.for_workers(9).is_some()); // more live than nominal: full set
        assert!(set.for_workers(1).is_none()); // below min: caller falls back
    }

    #[test]
    fn degradable_set_rejects_bad_ranges() {
        let cfg = quick_config();
        assert!(DegradablePolicySet::generate_poisson(profile(), &[100.0], &cfg, 0).is_err());
        assert!(DegradablePolicySet::generate_poisson(profile(), &[100.0], &cfg, 5).is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(PolicySet::generate_poisson(profile(), &[], &quick_config()).is_err());
        assert!(PolicySet::generate_poisson(profile(), &[-5.0], &quick_config()).is_err());
        assert!(PolicySet::generate_poisson_adaptive(
            profile(),
            100.0,
            50.0,
            &quick_config(),
            1.0,
            8
        )
        .is_err());
        assert!(PolicySet::from_policies(vec![]).is_err());
    }
}
