//! Policy-generation configuration (the offline inputs of paper §3.1.1).

use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::action::Batching;
use crate::discretize::Discretization;
use crate::error::CoreError;

/// The query load balancing strategy the per-worker MDP is conditioned
/// on (§3.2.1 and appendix §I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Balancing {
    /// Round-robin: each worker receives every K-th central-queue
    /// arrival (the paper's default; §4.4 transition probabilities).
    RoundRobin,
    /// Shortest-queue-first / join-the-shortest-queue, modelled by the
    /// conditional-Poisson approximation of appendix §I.
    ShortestQueueFirst,
}

/// The reward shaping of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardKind {
    /// The paper's reward: `Accuracy(a) · SLOSatisfied(s, a)` per
    /// decision epoch, regardless of batch size.
    PerBatch,
    /// Batch-weighted ablation: `b · Accuracy(a) · SLOSatisfied(s, a)`,
    /// aligning the objective with the online accuracy-per-query metric.
    PerQuery,
}

/// What happens to queries whose deadline can no longer be met
/// (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MissPolicy {
    /// The paper's default: "queries are better served late than never"
    /// — the forced action serves everything on the fastest model.
    ServeLate,
    /// The Nexus/Clockwork-style alternative the paper sketches:
    /// "RAMSIS can be re-formulated in a straightforward manner to drop
    /// queries whose deadlines cannot be satisfied [15, 43] via changes
    /// to the transition probabilities." Unservable batches are shed
    /// instantly, freeing the worker for fresh arrivals.
    Drop,
}

/// Which exact solver generates the policy (§4.1: value iteration by
/// default; "other exact solution methods, like policy iteration, may be
/// used").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverKind {
    /// Discounted value iteration (default).
    ValueIteration,
    /// Gauss–Seidel value iteration (same fixed point, ~2x fewer
    /// sweeps).
    GaussSeidelValueIteration,
    /// Policy iteration with iterative evaluation.
    PolicyIteration,
    /// Relative value iteration (average-reward criterion).
    RelativeValueIteration,
}

/// All offline inputs other than the profile and arrival distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Response-latency SLO in seconds (§3.1.1).
    pub slo_s: f64,
    /// Number of workers `K` behind the load balancer.
    pub workers: usize,
    /// Maximum worker-queue size `N_w` (§4.2.3); `None` derives
    /// `B_w + 3` from the profile (the paper uses `N_w = 32` for
    /// `B_w = 29`).
    pub max_queue: Option<u32>,
    /// Slack-time discretization strategy (§4.2.1–4.2.2).
    pub discretization: Discretization,
    /// Batching strategy (§4.3.2); maximal is the paper's default.
    pub batching: Batching,
    /// Load-balancing model for the transition probabilities.
    pub balancing: Balancing,
    /// Reward shaping.
    pub reward: RewardKind,
    /// Unsatisfiable-deadline handling (§4.3.1).
    pub on_miss: MissPolicy,
    /// Solver choice.
    pub solver: SolverKind,
    /// Discount factor for the discounted criteria.
    pub discount: f64,
    /// Truncation tolerance for arrival-count tables.
    pub tail_eps: f64,
    /// Transition probabilities below this are pruned from the MDP.
    pub prune_eps: f64,
}

impl PolicyConfig {
    /// Starts a builder for the given SLO.
    pub fn builder(slo: Duration) -> PolicyConfigBuilder {
        PolicyConfigBuilder::new(slo)
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] describing the first problem.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.slo_s.is_finite() && self.slo_s > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "SLO must be positive, got {}",
                self.slo_s
            )));
        }
        if self.workers == 0 {
            return Err(CoreError::InvalidConfig("workers must be positive".into()));
        }
        if let Some(n) = self.max_queue {
            if n == 0 {
                return Err(CoreError::InvalidConfig(
                    "max queue must be positive".into(),
                ));
            }
        }
        if !(self.discount > 0.0 && self.discount < 1.0) {
            return Err(CoreError::InvalidConfig(format!(
                "discount must lie in (0, 1), got {}",
                self.discount
            )));
        }
        if !(self.tail_eps > 0.0 && self.tail_eps < 0.5) {
            return Err(CoreError::InvalidConfig(format!(
                "tail_eps must lie in (0, 0.5), got {}",
                self.tail_eps
            )));
        }
        if !(self.prune_eps >= 0.0 && self.prune_eps < 1e-3) {
            return Err(CoreError::InvalidConfig(format!(
                "prune_eps must lie in [0, 1e-3), got {}",
                self.prune_eps
            )));
        }
        self.discretization.validate()?;
        Ok(())
    }
}

/// Builder for [`PolicyConfig`] with the paper's defaults: one worker,
/// FLD with `D = 100`, maximal batching, round-robin balancing,
/// per-batch reward, value iteration at `γ = 0.99`.
#[derive(Debug, Clone)]
pub struct PolicyConfigBuilder {
    config: PolicyConfig,
}

impl PolicyConfigBuilder {
    /// Creates the builder with paper defaults for the given SLO.
    pub fn new(slo: Duration) -> Self {
        Self {
            config: PolicyConfig {
                slo_s: slo.as_secs_f64(),
                workers: 1,
                max_queue: None,
                discretization: Discretization::fixed_length(100),
                batching: Batching::Maximal,
                balancing: Balancing::RoundRobin,
                reward: RewardKind::PerBatch,
                on_miss: MissPolicy::ServeLate,
                solver: SolverKind::ValueIteration,
                discount: 0.99,
                tail_eps: 1e-12,
                prune_eps: 1e-12,
            },
        }
    }

    /// Sets the number of workers `K`.
    pub fn workers(mut self, k: usize) -> Self {
        self.config.workers = k;
        self
    }

    /// Overrides the maximum worker-queue size `N_w`.
    pub fn max_queue(mut self, n: u32) -> Self {
        self.config.max_queue = Some(n);
        self
    }

    /// Sets the slack discretization strategy.
    pub fn discretization(mut self, d: Discretization) -> Self {
        self.config.discretization = d;
        self
    }

    /// Sets the batching strategy.
    pub fn batching(mut self, b: Batching) -> Self {
        self.config.batching = b;
        self
    }

    /// Sets the load-balancing model.
    pub fn balancing(mut self, b: Balancing) -> Self {
        self.config.balancing = b;
        self
    }

    /// Sets the reward shaping.
    pub fn reward(mut self, r: RewardKind) -> Self {
        self.config.reward = r;
        self
    }

    /// Sets the unsatisfiable-deadline handling.
    pub fn on_miss(mut self, m: MissPolicy) -> Self {
        self.config.on_miss = m;
        self
    }

    /// Sets the solver.
    pub fn solver(mut self, s: SolverKind) -> Self {
        self.config.solver = s;
        self
    }

    /// Sets the discount factor.
    pub fn discount(mut self, gamma: f64) -> Self {
        self.config.discount = gamma;
        self
    }

    /// Finalizes the configuration (unvalidated; [`PolicyConfig::validate`]
    /// runs at generation time).
    pub fn build(self) -> PolicyConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PolicyConfig {
        PolicyConfig::builder(Duration::from_millis(150)).build()
    }

    #[test]
    fn defaults_match_paper() {
        let c = base();
        assert_eq!(c.batching, Batching::Maximal);
        assert_eq!(c.balancing, Balancing::RoundRobin);
        assert_eq!(c.reward, RewardKind::PerBatch);
        assert_eq!(c.on_miss, MissPolicy::ServeLate);
        assert_eq!(c.solver, SolverKind::ValueIteration);
        assert_eq!(c.discretization, Discretization::fixed_length(100));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_setters() {
        let c = PolicyConfig::builder(Duration::from_millis(300))
            .workers(60)
            .max_queue(32)
            .batching(Batching::Variable)
            .balancing(Balancing::ShortestQueueFirst)
            .reward(RewardKind::PerQuery)
            .solver(SolverKind::PolicyIteration)
            .discount(0.95)
            .build();
        assert_eq!(c.workers, 60);
        assert_eq!(c.max_queue, Some(32));
        assert_eq!(c.batching, Batching::Variable);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = base();
        c.workers = 0;
        assert!(matches!(c.validate(), Err(CoreError::InvalidConfig(_))));

        let mut c = base();
        c.discount = 1.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.slo_s = -1.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.max_queue = Some(0);
        assert!(c.validate().is_err());

        let mut c = base();
        c.tail_eps = 0.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.prune_eps = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = base();
        let json = serde_json::to_string(&c).unwrap();
        let back: PolicyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
